"""ATPG driver details: fill, dropping, compare_modes protocol."""

import random

import pytest

from repro.circuit import figure1, s27
from repro.core import learn
from repro.atpg import collapse_faults, compare_modes, run_atpg
from repro.atpg.driver import _fill_sequence
from repro.sim import fault_simulate


def test_fill_sequence_completes_dont_cares():
    rng = random.Random(0)
    filled = _fill_sequence([{"a": 1}, {}], ["a", "b"], rng)
    assert filled[0]["a"] == 1
    assert filled[0]["b"] in (0, 1)
    assert set(filled[1]) == {"a", "b"}


def test_fill_preserves_assigned_values():
    rng = random.Random(0)
    for _ in range(10):
        filled = _fill_sequence([{"a": 0, "b": 1}], ["a", "b", "c"], rng)
        assert filled[0]["a"] == 0 and filled[0]["b"] == 1


def test_generated_sequences_detect_their_faults():
    """Driver-level cross-check: stored sequences detect something."""
    c = s27()
    faults = collapse_faults(c)
    stats = run_atpg(c, backtrack_limit=1000, max_frames=10)
    for sequence in stats.sequences:
        assert fault_simulate(c, sequence, faults), sequence


def test_compare_modes_protocol_order():
    c = figure1()
    learned = learn(c)
    rows = compare_modes(c, learned, backtrack_limits=(5,),
                         max_frames=4, max_faults=12)
    assert [r.mode for r in rows] == ["none", "forbidden", "known"]
    assert all(r.backtrack_limit == 5 for r in rows)
    assert all(r.total_faults == 12 for r in rows)


def test_explicit_fault_list_respected():
    c = s27()
    faults = collapse_faults(c)[:5]
    stats = run_atpg(c, faults=faults, backtrack_limit=100, max_frames=8)
    assert stats.total_faults == 5


def test_deterministic_given_seed():
    c = figure1()
    a = run_atpg(c, backtrack_limit=10, max_frames=4, fill_seed=3,
                 max_faults=15)
    b = run_atpg(c, backtrack_limit=10, max_frames=4, fill_seed=3,
                 max_faults=15)
    assert a.detected == b.detected
    assert a.untestable == b.untestable
    assert a.aborted == b.aborted
