"""Clock-domain classification details (paper section 3.3.2)."""

from repro.circuit import CircuitBuilder
from repro.circuit.gates import GateType
from repro.core import classify_ffs, is_single_domain, learning_passes, learn


def mixed_circuit():
    b = CircuitBuilder("mixed")
    b.inputs("a", "b")
    b.gate("g1", "and", "a", "b")
    b.gate("g2", "or", "a", "b")
    b.dff("f_clk0", "g1", clock="clk0")
    b.dff("f_clk0_b", "g2", clock="clk0")
    b.dff("f_gated", "g1", clock="clk0_gated")     # gated = distinct
    b.dff("f_phase1", "g2", clock="clk0", phase=1)  # other phase
    b.latch("l_clk0", "g1", clock="clk0")           # latch != dff
    b.gate("q", "and", "f_clk0", "l_clk0")
    b.output("q")
    return b.build()


def test_classification_keys():
    circuit = mixed_circuit()
    classes = classify_ffs(circuit)
    # clk0/dff (x2), clk0_gated/dff, clk0-phase1/dff, clk0/latch.
    assert len(classes) == 4
    key_dff = ("clk0", 0, "dff")
    assert len(classes[key_dff]) == 2
    assert ("clk0", 0, "latch") in classes
    assert ("clk0_gated", 0, "dff") in classes
    assert ("clk0", 1, "dff") in classes


def test_gated_clock_is_a_separate_clock():
    circuit = mixed_circuit()
    f = circuit.node("f_clk0")
    g = circuit.node("f_gated")
    assert f.domain_key() != g.domain_key()


def test_single_domain_predicate():
    circuit = mixed_circuit()
    assert not is_single_domain(circuit)
    from repro.circuit import s27

    assert is_single_domain(s27())


def test_passes_cover_all_ffs_disjointly():
    circuit = mixed_circuit()
    passes = learning_passes(circuit)
    seen = set()
    for _key, members in passes:
        assert not (seen & members)
        seen |= members
    assert seen == set(circuit.ffs)


def test_learning_on_mixed_domains_stays_in_class():
    circuit = mixed_circuit()
    result = learn(circuit)
    for relation in result.relations:
        a, b = circuit.nodes[relation.a], circuit.nodes[relation.b]
        if a.is_sequential and b.is_sequential:
            assert a.domain_key() == b.domain_key()
    assert result.validate(25, 8) == []


def test_combinational_circuit_learns_without_passes():
    b = CircuitBuilder("comb")
    b.inputs("a", "b")
    b.gate("t", "xor", "a", "a")
    b.gate("g", "or", "t", "b")
    b.output("g")
    circuit = b.build()
    result = learn(circuit)
    assert result.ties.names().get("t") == 0
