"""Golden-schema regression for the CLI's ``--json`` contract.

Downstream tooling parses ``repro ... --json`` output; a backend or
refactor must not silently change its *shape*.  These tests reduce the
payload of ``learn``, ``atpg`` and ``suite`` to a type skeleton (dict
keys and scalar type names, values dropped) and compare it against the
checked-in snapshot ``tests/data/cli_schema_golden.json``.

On an *intentional* contract change, regenerate the snapshot with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_cli_schema.py

and review the diff like any other API change.
"""

import json
import os

import pytest

from repro.cli import main

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "cli_schema_golden.json")

#: command name -> argv producing one JSON document on stdout.
COMMANDS = {
    "learn": ["learn", "figure1", "--json", "--max-frames", "5"],
    "atpg": ["atpg", "figure1", "--json", "--mode", "all",
             "--backtrack-limit", "5", "--window", "3",
             "--max-frames", "5"],
    "suite": ["suite", "figure1", "--json", "--backtrack-limit", "5",
              "--window", "3", "--max-frames", "5"],
}


def schema(value):
    """Reduce a JSON value to its key/type skeleton."""
    if isinstance(value, dict):
        return {key: schema(value[key]) for key in sorted(value)}
    if isinstance(value, list):
        return [schema(item) for item in value]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    raise AssertionError(f"non-JSON value {value!r}")


def _capture(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize("command", sorted(COMMANDS))
def test_json_schema_stable(command, capsys, golden):
    observed = schema(_capture(capsys, COMMANDS[command]))
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden[command] = observed
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(golden, handle, indent=1, sort_keys=True)
            handle.write("\n")
        pytest.skip("golden schema regenerated")
    assert command in golden, (
        f"no golden schema for {command!r}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1")
    assert observed == golden[command], (
        f"`repro {command} --json` changed shape; if intentional, "
        "regenerate tests/data/cli_schema_golden.json with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff")


def test_backend_knob_is_part_of_the_contract(capsys):
    """The config block must advertise which backend produced the run."""
    payload = _capture(capsys, COMMANDS["atpg"])
    assert payload["config"]["atpg"]["sim_backend"] == "compiled"
