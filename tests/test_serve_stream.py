"""The streamed event protocol + serve-tier HTTP behaviors.

Headline contract: an NDJSON stream's terminal envelope is
**byte-identical** to the ``POST /v1/execute`` body (and so to
``repro ... --json --canonical`` stdout) for the same request.  Around
it: SSE, request ids, explicit cancel, deadlines, 429 backpressure and
the cancellation counters those paths leave in ``/v1/metrics``.
"""

import http.client
import json
import re
import threading
import time
from contextlib import closing, contextmanager

from repro.api import ATPGRequest, ArtifactStore, execute, make_server
from repro.core import LearnConfig
from repro.flow import ATPGConfig, ReproConfig

#: A profile-sampled circuit big enough that its ATPG run takes whole
#: seconds -- long enough to cancel mid-flight, small enough for CI.
SLOW_SPEC = "like:s382@0.5"


def tiny_config() -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3))


@contextmanager
def running_server(**kwargs):
    kwargs.setdefault("store", ArtifactStore())
    server = make_server(port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def open_stream(server, body: bytes, path="/v1/stream", headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=120)
    conn.request("POST", path, body=body,
                 headers={"Content-Type": "application/json",
                          **(headers or {})})
    return conn, conn.getresponse()


def read_ndjson_stream(response):
    """Consume a stream: (event dicts, raw terminal envelope bytes)."""
    events = []
    while True:
        line = response.readline()
        assert line, "stream ended before the terminal frame"
        record = json.loads(line)
        if record.get("event") == "result" and "bytes" in record:
            remaining = record["bytes"]
            envelope = b""
            while remaining:
                chunk = response.read(remaining)
                assert chunk, "truncated terminal envelope"
                envelope += chunk
                remaining -= len(chunk)
            assert response.read() == b""  # nothing after the envelope
            return events, envelope
        events.append(record)


def post(server, body: bytes, path="/v1/execute", headers=None):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=120)) as conn:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json",
                              **(headers or {})})
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()


def get_json(server, path):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())


def settle(server, name, count=1, timeout=10):
    """Counters land in the handler's ``finally`` a beat after the
    response bytes; wait for them so metric scrapes are deterministic."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.metrics.counter_total(name) >= count:
            return
        time.sleep(0.01)
    raise AssertionError(f"{name} never reached {count}")


def test_ndjson_stream_terminal_envelope_byte_identical():
    request = ATPGRequest(spec="figure1", config=tiny_config(),
                          modes=("known",), canonical=True)
    reference = execute(request).to_json().encode()
    with running_server() as server:
        conn, response = open_stream(
            server, request.to_canonical_json().encode())
        with closing(conn):
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            events, envelope = read_ndjson_stream(response)
    assert envelope == reference
    kinds = {event["event"] for event in events}
    assert kinds == {"progress", "stage"}
    stages = [event["stage"] for event in events
              if event["event"] == "stage"]
    assert "atpg[known]" in stages
    statuses = {event["status"] for event in events
                if event["event"] == "progress"}
    assert {"start", "end"} <= statuses


def test_execute_endpoint_streams_on_accept_header():
    request = ATPGRequest(spec="figure1", config=tiny_config(),
                          modes=("known",), canonical=True)
    reference = execute(request).to_json().encode()
    with running_server() as server:
        conn, response = open_stream(
            server, request.to_canonical_json().encode(),
            path="/v1/execute",
            headers={"Accept": "application/x-ndjson"})
        with closing(conn):
            events, envelope = read_ndjson_stream(response)
    assert envelope == reference
    assert events  # the same request streamed, not one-shot


def test_sse_stream_carries_equal_envelope():
    request = ATPGRequest(spec="figure1", config=tiny_config(),
                          modes=("known",), canonical=True)
    reference = json.loads(execute(request).to_json())
    with running_server() as server:
        conn, response = open_stream(
            server, request.to_canonical_json().encode(),
            headers={"Accept": "text/event-stream"})
        with closing(conn):
            assert response.getheader("Content-Type") == \
                "text/event-stream"
            raw = response.read().decode()
    blocks = [block for block in raw.split("\n\n") if block]
    parsed = []
    for block in blocks:
        lines = dict(line.split(": ", 1) for line in block.splitlines())
        parsed.append((lines["event"], json.loads(lines["data"])))
    assert parsed[-1][0] == "result"
    # SSE re-serializes (line-oriented), so equality is canonical JSON
    # equality, not byte identity -- that guarantee is NDJSON-only.
    assert parsed[-1][1] == reference
    assert any(kind == "progress" for kind, _ in parsed[:-1])


def test_request_id_echoed_and_client_chosen():
    body = json.dumps({"kind": "list"}).encode()
    with running_server() as server:
        _, headers, _ = post(server, body)
        assert re.fullmatch(r"r-\d+", headers["X-Request-Id"])
        _, headers, _ = post(server, json.dumps(
            {"kind": "list", "request_id": "mine-42"}).encode())
        assert headers["X-Request-Id"] == "mine-42"


def test_cancel_endpoint_unknown_id_is_idempotent():
    with running_server() as server:
        status, _, body = post(server, json.dumps(
            {"request_id": "nope"}).encode(), path="/v1/cancel")
        assert status == 200
        payload = json.loads(body)
        assert payload["ok"] is True and payload["cancelled"] is False
        status, _, body = post(server, b"{}", path="/v1/cancel")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse"


def test_explicit_cancel_stops_stream_mid_atpg():
    body = json.dumps({"kind": "atpg", "spec": SLOW_SPEC,
                       "modes": ["known"], "canonical": True,
                       "request_id": "kill-me"}).encode()
    with running_server() as server:
        conn, response = open_stream(server, body)
        with closing(conn):
            # Wait until the run is demonstrably alive...
            first = json.loads(response.readline())
            assert first["event"] == "progress"
            started = time.perf_counter()
            # ...then cancel it by id from a second connection.
            status, _, cancel_body = post(
                server, json.dumps({"request_id": "kill-me"}).encode(),
                path="/v1/cancel")
            assert status == 200
            assert json.loads(cancel_body)["cancelled"] is True
            events, envelope = read_ndjson_stream(response)
            elapsed = time.perf_counter() - started
        payload = json.loads(envelope)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "cancelled"
        assert "explicit" in payload["error"]["message"]
        # A full run takes whole seconds; the cancel cut it short.
        assert elapsed < 5.0
        settle(server, "cancellations_total")
        metrics = get_json(server, "/v1/metrics")
        assert metrics["metrics"]["counters"][
            'cancellations_total{reason="explicit"}'] == 1
        # Slot returned: nothing active, nothing queued.
        assert metrics["admission"]["active"] == 0


def test_deadline_expires_one_shot_request():
    body = json.dumps({"kind": "atpg", "spec": SLOW_SPEC,
                       "modes": ["known"], "canonical": True,
                       "deadline_s": 0.6}).encode()
    with running_server() as server:
        started = time.perf_counter()
        status, _, raw = post(server, body)
        elapsed = time.perf_counter() - started
        assert status == 504
        payload = json.loads(raw)
        assert payload["error"]["code"] == "deadline"
        assert elapsed < 5.0
        settle(server, "cancellations_total")
        metrics = get_json(server, "/v1/metrics")
        assert metrics["metrics"]["counters"][
            'cancellations_total{reason="deadline"}'] == 1
        health = get_json(server, "/v1/health")
        assert health["requests_failed"] == 1


def test_server_deadline_cap_clamps_requests_naming_none():
    with running_server(deadline_cap=0.6) as server:
        body = json.dumps({"kind": "atpg", "spec": SLOW_SPEC,
                           "modes": ["known"],
                           "canonical": True}).encode()
        status, _, raw = post(server, body)
        assert status == 504
        assert json.loads(raw)["error"]["code"] == "deadline"


def test_overload_rejected_with_retry_after_header():
    with running_server(max_active=1, queue_depth=0) as server:
        server.admission.acquire("interactive")  # wedge the only slot
        try:
            status, headers, raw = post(
                server, json.dumps({"kind": "list"}).encode())
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            payload = json.loads(raw)
            assert payload["error"]["code"] == "overload"
            assert payload["error"]["stage"] == "admission"
            assert payload["error"]["retry_after_s"] >= 1
        finally:
            server.admission.release()
        status, _, _ = post(server,
                            json.dumps({"kind": "list"}).encode())
        assert status == 200
        settle(server, "requests_total", count=2)
        metrics = get_json(server, "/v1/metrics")
        assert metrics["metrics"]["counters"][
            'rejections_total{class="interactive"}'] == 1
        assert metrics["metrics"]["counters"][
            'requests_total{class="interactive",kind="list",'
            'outcome="rejected"}'] == 1


def test_invalid_priority_rejected_by_request_validation():
    with running_server() as server:
        status, _, raw = post(server, json.dumps(
            {"kind": "list", "priority": "vip"}).encode())
        assert status == 400
        payload = json.loads(raw)
        assert payload["ok"] is False
        assert "priority" in payload["error"]["message"]


def test_streaming_can_be_disabled():
    request = json.dumps({"kind": "list"}).encode()
    with running_server(allow_streaming=False) as server:
        status, _, raw = post(server, request, path="/v1/stream")
        assert status == 400
        assert "disabled" in json.loads(raw)["error"]["message"]
        # Accept headers are ignored too: one-shot JSON comes back.
        status, headers, raw = post(
            server, request,
            headers={"Accept": "application/x-ndjson"})
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(raw)["ok"] is True
        assert get_json(server, "/v1/health")["streaming"] is False


def test_health_exposes_serve_tier_cache_counters():
    with running_server() as server:
        health = get_json(server, "/v1/health")
        assert health["streaming"] is True
        assert health["admission"] == {"active": 0, "interactive": 0,
                                       "batch": 0}
        assert {"hits", "misses"} <= set(health["pattern_cache"])
        store_stats = health["artifact_store"]
        assert {"payload_hits", "payload_misses"} <= set(store_stats)
