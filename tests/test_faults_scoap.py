"""Fault universe, equivalence collapsing and SCOAP measures."""

import pytest

from repro.circuit import CircuitBuilder, figure1, s27
from repro.circuit.gates import ONE, ZERO
from repro.atpg.faults import (
    Fault,
    collapse_faults,
    collapse_with_classes,
    fault_site_source,
    full_fault_list,
)
from repro.atpg.scoap import compute_testability


def test_full_fault_list_counts():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.output("g")
    c = b.build()
    faults = full_fault_list(c)
    # a, b, g outputs: 3 nodes x 2 values; no branch faults (fanouts = 1).
    assert len(faults) == 6


def test_branch_faults_only_on_stems():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "not", "a")
    b.gate("g2", "buf", "a")
    b.output("g1", "g2")
    c = b.build()
    faults = full_fault_list(c)
    branch = [f for f in faults if f.pin is not None]
    assert len(branch) == 4  # both branches of stem a, 2 values each


def test_collapse_reduces_and_covers():
    c = s27()
    full = full_fault_list(c)
    collapsed, classes = collapse_with_classes(c)
    assert len(collapsed) < len(full)
    assert sum(len(m) for m in classes.values()) == len(full)
    assert set(collapsed) <= set(full)
    # s27's classic collapsed fault count is 32.
    assert len(collapsed) == 32


def test_collapse_inverter_chain():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "not", "a")
    b.gate("g2", "not", "g1")
    b.output("g2")
    c = b.build()
    collapsed = collapse_faults(c)
    # a-sa0 == g1-sa1 == g2-sa0 and dually: only 2 classes remain.
    assert len(collapsed) == 2


def test_collapse_and_gate():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.output("g")
    c = b.build()
    collapsed = collapse_faults(c)
    # {a0,b0,g0} merge; a1, b1, g1 remain distinct: 4 classes.
    assert len(collapsed) == 4


def test_collapse_representative_prefers_output_faults():
    c = figure1()
    collapsed = collapse_faults(c)
    # No representative should be a branch fault when its class holds an
    # output fault on the same gate.
    _reps, classes = collapse_with_classes(c)
    for rep, members in classes.items():
        if any(m.pin is None for m in members):
            assert rep.pin is None or rep not in members[1:]


def test_fault_site_source():
    c = s27()
    g8 = c.nid("G8")
    out_fault = Fault(g8, None, ZERO)
    assert fault_site_source(c, out_fault) == g8
    pin_fault = Fault(g8, 1, ZERO)
    assert fault_site_source(c, pin_fault) == c.node("G8").fanins[1]


def test_describe():
    c = s27()
    f = Fault(c.nid("G8"), None, ONE)
    assert f.describe(c) == "G8 s-a-1"
    fp = Fault(c.nid("G8"), 0, ZERO)
    assert "G8.in0(" in fp.describe(c)


# ---------------------------------------------------------------------------
# SCOAP
# ---------------------------------------------------------------------------

def test_scoap_pi_baseline():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.output("g")
    c = b.build()
    t = compute_testability(c)
    a = c.nid("a")
    assert t.cc0[a] == 1 and t.cc1[a] == 1
    g = c.nid("g")
    assert t.cc1[g] == 3   # both inputs at 1: 1+1+1
    assert t.cc0[g] == 2   # cheapest single 0: 1+1
    assert t.co[g] == 0    # primary output


def test_scoap_observability_side_inputs():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.output("g")
    c = b.build()
    t = compute_testability(c)
    # Observing `a` through the AND needs b=1: co = 0 + cc1(b) + 1.
    assert t.co[c.nid("a")] == 2


def test_scoap_sequential_depth_penalty():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("d", "buf", "a")
    b.dff("f", "d")
    b.gate("q", "buf", "f")
    b.output("q")
    c = b.build()
    t = compute_testability(c)
    assert t.cc1[c.nid("f")] > t.cc1[c.nid("a")]
    assert t.co[c.nid("a")] > t.co[c.nid("q")]


def test_scoap_xor():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "xor", "a", "b")
    b.output("g")
    c = b.build()
    t = compute_testability(c)
    g = c.nid("g")
    assert t.cc0[g] == 3 and t.cc1[g] == 3


def test_scoap_all_finite_on_real_circuit():
    c = s27()
    t = compute_testability(c)
    for node in c.nodes:
        assert t.cc0[node.nid] < 10 ** 6, node.name
        assert t.cc1[node.nid] < 10 ** 6, node.name
