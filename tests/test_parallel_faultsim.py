"""Bit-parallel pattern simulation and the parallel fault simulator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import CircuitBuilder, figure2, random_circuit, s27
from repro.circuit.gates import ONE, X, ZERO
from repro.atpg.faults import Fault, full_fault_list
from repro.sim import (
    FaultSimulator,
    exhaustive_masks,
    fault_coverage,
    fault_simulate,
    pack_patterns,
    signatures,
    simulate_patterns,
    simulate_sequence,
)


def test_signatures_match_scalar_simulation():
    c = s27()
    rng = random.Random(3)
    width = 32
    vectors = []
    for _ in range(width):
        vec = {c.nodes[i].name: rng.randint(0, 1) for i in c.inputs}
        vec.update({c.nodes[f].name: rng.randint(0, 1) for f in c.ffs})
        vectors.append(vec)
    masks = simulate_patterns(c, pack_patterns(c, vectors), width)
    for i, vec in enumerate(vectors):
        frame = simulate_sequence(c, [vec], init_state={
            k: v for k, v in vec.items() if k.startswith("G") and
            c.node(k).is_sequential})[0]
        for node in c.nodes:
            if not node.is_combinational:
                continue
            expected = frame[node.name]
            got = (masks[node.nid] >> i) & 1
            assert got == expected, (node.name, i)


def test_exhaustive_masks_enumerate_minterms():
    masks = exhaustive_masks([10, 20], 4)
    assert masks[10] == 0b1010  # bit i set iff (i >> 0) & 1
    assert masks[20] == 0b1100


def test_signatures_deterministic():
    c = s27()
    assert signatures(c, 64, random.Random(1)) == \
        signatures(c, 64, random.Random(1))


# ---------------------------------------------------------------------------
# fault simulation
# ---------------------------------------------------------------------------

def _buf_chain():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "buf", "a")
    b.gate("g2", "not", "g1")
    b.output("g2")
    return b.build()


def test_output_fault_detected():
    c = _buf_chain()
    faults = [Fault(c.nid("g1"), None, ZERO)]
    hit = fault_simulate(c, [{"a": 1}], faults)
    assert hit == {0}
    # a=0 cannot excite s-a-0
    assert fault_simulate(c, [{"a": 0}], faults) == set()


def test_x_inputs_block_detection():
    c = _buf_chain()
    faults = [Fault(c.nid("g1"), None, ZERO)]
    assert fault_simulate(c, [{}], faults) == set()


def test_branch_fault_vs_stem_fault():
    """A branch fault only affects its own gate, the stem fault both."""
    b = CircuitBuilder()
    b.inputs("a", "s")
    b.gate("stem", "buf", "a")
    b.gate("g1", "and", "stem", "s")
    b.gate("g2", "or", "stem", "s")
    b.output("g1", "g2")
    c = b.build()
    branch_g1 = Fault(c.nid("g1"), 0, ZERO)
    stem = Fault(c.nid("stem"), None, ZERO)
    vec = [{"a": 1, "s": 1}]
    hits = fault_simulate(c, vec, [branch_g1, stem])
    assert hits == {0, 1}
    # With s=0, g1's output is 0 anyway: only the stem fault shows (at g2).
    vec2 = [{"a": 1, "s": 0}]
    hits2 = fault_simulate(c, vec2, [branch_g1, stem])
    assert hits2 == {1}


def test_sequential_fault_needs_frames():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("d", "buf", "a")
    b.dff("f", "d")
    b.gate("q", "not", "f")
    b.output("q")
    c = b.build()
    fault = Fault(c.nid("d"), None, ZERO)
    # One frame: effect sits in the FF, not yet at the output.
    assert fault_simulate(c, [{"a": 1}], [fault]) == set()
    # Two frames: effect reaches the PO.
    assert fault_simulate(c, [{"a": 1}, {"a": 0}], [fault]) == {0}


def test_ff_input_pin_fault():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("stem", "and", "a", "b")
    b.dff("f", "stem")
    b.gate("g", "buf", "stem")
    b.gate("q", "buf", "f")
    b.output("q", "g")
    c = b.build()
    pin_fault = Fault(c.nid("f"), 0, ZERO)
    seq = [{"a": 1, "b": 1}, {"a": 0, "b": 0}]
    assert fault_simulate(c, seq, [pin_fault]) == {0}


def test_fault_coverage_accumulates():
    c = s27()
    faults = full_fault_list(c)
    rng = random.Random(0)
    inputs = [c.nodes[i].name for i in c.inputs]
    seqs = [[{n: rng.randint(0, 1) for n in inputs} for _ in range(12)]
            for _ in range(20)]
    cov = fault_coverage(c, seqs, faults)
    assert 0.5 < cov <= 1.0


def _serial_reference(circuit, sequence, fault):
    """Oracle: simulate an explicitly mutated faulty circuit."""
    from repro.circuit.gates import GateType, eval_gate

    state = {}
    outs = []
    for vector in sequence:
        values = {}
        for pid in circuit.inputs:
            values[pid] = vector.get(circuit.nodes[pid].name, X)
        for fid in circuit.ffs:
            values[fid] = state.get(fid, X)
        if fault.pin is None and (circuit.nodes[fault.node].is_input or
                                  circuit.nodes[fault.node].is_sequential):
            values[fault.node] = fault.value
        for nid in circuit.topo_order:
            node = circuit.nodes[nid]
            fanins = []
            for pin, f in enumerate(node.fanins):
                if fault.pin == pin and fault.node == nid:
                    fanins.append(fault.value)
                else:
                    fanins.append(values.get(f, X))
            out = eval_gate(node.gate_type, fanins)
            if fault.pin is None and fault.node == nid:
                out = fault.value
            values[nid] = out
        outs.append({circuit.nodes[o].name: values[o]
                     for o in circuit.outputs})
        state = {}
        for fid in circuit.ffs:
            node = circuit.nodes[fid]
            if fault.pin == 0 and fault.node == fid:
                state[fid] = fault.value
            else:
                data = values.get(node.fanins[0], X)
                state[fid] = fault.value \
                    if (fault.pin is None and fault.node == fid) else data
        if fault.pin is None and fault.node in circuit.ffs:
            state[fault.node] = fault.value
    return outs


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(0, 10_000))
def test_parallel_fault_sim_matches_serial(circuit_seed, stim_seed):
    """Property: the packed simulator equals a per-fault serial oracle."""
    circuit = random_circuit("prop", n_inputs=3, n_outputs=2, n_ffs=3,
                             n_gates=14, seed=circuit_seed)
    rng = random.Random(stim_seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    sequence = [{n: rng.randint(0, 1) for n in inputs} for _ in range(5)]
    faults = full_fault_list(circuit)[:24]
    hits = fault_simulate(circuit, sequence, faults, width=8)
    good = simulate_sequence(circuit, sequence)
    for i, fault in enumerate(faults):
        faulty_outs = _serial_reference(circuit, sequence, fault)
        serial_detects = any(
            good[t][name] != X and faulty_outs[t][name] != X and
            good[t][name] != faulty_outs[t][name]
            for t in range(len(sequence)) for name in faulty_outs[t])
        assert serial_detects == (i in hits), fault
