"""Batched compiled injections vs per-stem event simulation.

``run_single_node`` packs the 0/1 injections of many stems into
compiled two-plane runs (one bit column per injection) whenever the
simulator carries no coupled knowledge.  The contract is identical
:class:`~repro.core.single_node.SingleNodeData` -- same runs (frames,
key order, stop flags), same justification map -- including the
clock-domain-restricted passes of multi-domain circuits and the
conflict fallback for stems whose value is derivable from tie
constants.
"""

import pytest

from repro.circuit import (
    CircuitBuilder,
    figure1,
    figure2,
    industrial_like,
    random_circuit,
    retime_circuit,
    s27,
)
from repro.circuit.gates import ONE, ZERO
from repro.core import learn
from repro.core.clock_domains import learning_passes
from repro.core.single_node import run_single_node
from repro.core.ties import TieSet, ties_from_single_node
from repro.sim.eventsim import FrameSimulator

_SIZES = (
    dict(n_inputs=3, n_outputs=2, n_ffs=2, n_gates=10),
    dict(n_inputs=5, n_outputs=4, n_ffs=6, n_gates=40),
    dict(n_inputs=6, n_outputs=4, n_ffs=8, n_gates=64),
)

CASES = ([("builtin", i) for i in range(3)]
         + [("random", seed) for seed in range(10)]
         + [("retimed", seed) for seed in range(6)]
         + [("industrial", seed) for seed in range(10)])


def _build(kind, seed):
    if kind == "builtin":
        return (figure1, figure2, s27)[seed]()
    if kind == "random":
        return random_circuit(f"sb_r{seed}", seed=seed,
                              **_SIZES[seed % 3])
    if kind == "retimed":
        base = random_circuit(f"sb_b{seed}", seed=seed,
                              **_SIZES[seed % 3])
        return retime_circuit(base, moves=1 + seed % 3,
                              name=f"sb_rt{seed}")
    return industrial_like(f"sb_i{seed}", n_domains=2 + seed % 3,
                           n_ffs=8 + (seed % 4) * 4,
                           n_gates=50 + (seed % 3) * 20, seed=seed)


def _assert_same_data(batched, reference):
    assert batched.skipped_stems == reference.skipped_stems
    assert list(batched.runs) == list(reference.runs)
    for key in reference.runs:
        fast, slow = batched.runs[key], reference.runs[key]
        assert fast.frames == slow.frames, key
        # Key order inside every frame dict is part of the contract:
        # downstream extraction iterates it.
        assert [list(f) for f in fast.frames] == \
            [list(f) for f in slow.frames], key
        assert fast.injected == slow.injected
        assert (fast.conflict is None) == (slow.conflict is None)
        assert fast.repeated == slow.repeated
    assert batched.justifications == reference.justifications
    assert list(batched.justifications) == list(reference.justifications)


@pytest.mark.parametrize("kind,seed", CASES)
def test_batched_single_node_identical(kind, seed):
    """Every clock-domain pass produces identical SingleNodeData."""
    circuit = _build(kind, seed)
    passes = learning_passes(circuit) or [(("comb", 0, "none"), set())]
    for _key, active in passes:
        fast = run_single_node(
            FrameSimulator(circuit, active_ffs=active or None),
            max_frames=20, batched=True)
        slow = run_single_node(
            FrameSimulator(circuit, active_ffs=active or None),
            max_frames=20, batched=False)
        _assert_same_data(fast, slow)


@pytest.mark.parametrize("kind,seed",
                         [("builtin", i) for i in range(3)]
                         + [("random", s) for s in range(6)]
                         + [("industrial", s) for s in range(6)])
def test_array_plane_eval_identical(kind, seed):
    """The array-backend plane evaluator (grouped word-matrix kernels)
    produces the same SingleNodeData as the compiled kernels and the
    reference path -- including at an odd batch width that splits the
    injection pairs across many partial batches."""
    circuit = _build(kind, seed)
    passes = learning_passes(circuit) or [(("comb", 0, "none"), set())]
    for _key, active in passes:
        slow = run_single_node(
            FrameSimulator(circuit, active_ffs=active or None),
            max_frames=20, backend="reference")
        for batch_width in (None, 7):
            fast = run_single_node(
                FrameSimulator(circuit, active_ffs=active or None),
                max_frames=20, backend="array",
                batch_width=batch_width)
            _assert_same_data(fast, slow)


def test_single_node_rejects_unknown_backend():
    with pytest.raises(ValueError):
        run_single_node(FrameSimulator(figure1()), backend="verilog")


def _tie_fed_stem_circuit():
    """A stem whose value is derivable from a tie constant.

    Injecting the opposite value conflicts mid-propagation in the event
    simulator -- the one case the packed evaluator cannot represent and
    must delegate to the reference path.
    """
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("t", "tie1")
    b.gate("stem", "or", "t", "a")      # always 1: conflicting target
    b.gate("g1", "and", "stem", "b")
    b.gate("g2", "nand", "stem", "a")
    b.dff("f", "g1")
    b.gate("q", "or", "g2", "f")
    b.output("q")
    return b.build()


def test_conflicting_stem_falls_back_to_reference():
    circuit = _tie_fed_stem_circuit()
    stem = circuit.nid("stem")
    fast = run_single_node(FrameSimulator(circuit), max_frames=10,
                           batched=True)
    slow = run_single_node(FrameSimulator(circuit), max_frames=10,
                           batched=False)
    _assert_same_data(fast, slow)
    # The stem is tied to 1, so the s-a-0 injection must conflict --
    # proving the tie -- on both paths.
    assert fast.runs[(stem, ZERO)].conflict is not None
    assert fast.runs[(stem, ONE)].conflict is None
    ties = ties_from_single_node(fast, circuit, TieSet(circuit))
    assert ties.value_of(stem) == ONE


def test_coupled_simulator_uses_reference_path():
    """Ties/equivalences from earlier phases disable packing."""
    circuit = figure1()
    learned = learn(circuit)
    from repro.core.equivalence import coupling_from

    coupling = coupling_from(learned.ties, learned.equivalences)
    if not (coupling.ties or coupling.equiv):
        pytest.skip("figure1 learned no coupled knowledge")
    coupled = FrameSimulator(circuit, coupling)
    fast = run_single_node(coupled, max_frames=10, batched=True)
    slow = run_single_node(
        FrameSimulator(circuit, coupling), max_frames=10, batched=False)
    _assert_same_data(fast, slow)


def test_learn_results_independent_of_batching(monkeypatch):
    """End-to-end learning is identical with packing forced off."""
    import repro.core.engine as core_engine
    from repro.core.single_node import run_single_node as real

    circuit = industrial_like("sb_e2e", n_domains=2, n_ffs=10,
                              n_gates=60, seed=99)
    learned_fast = learn(circuit)

    def forced_off(simulator, stems=None, max_frames=50, **kwargs):
        return real(simulator, stems, max_frames, batched=False)

    monkeypatch.setattr(core_engine, "run_single_node", forced_off)
    learned_slow = learn(circuit)
    assert learned_fast.relations.dump() == learned_slow.relations.dump()
    assert sorted((t.nid, t.value, t.warmup)
                  for t in learned_fast.ties.all()) == \
        sorted((t.nid, t.value, t.warmup)
               for t in learned_slow.ties.all())
    assert learned_fast.counts() == learned_slow.counts()
