"""Request objects: round-trip, digests, strict parsing, API surface.

Two golden contracts live here:

* ``tests/data/api_schema_golden.json`` -- the key/type skeleton of
  every request kind's ``to_dict()`` form (regenerate intentionally
  with ``REPRO_UPDATE_GOLDEN=1``, review the diff);
* ``tests/data/api_manifest.json`` -- the public surface
  ``repro.api.__all__``; additions/removals must update the manifest
  in the same change.
"""

import json
import os

import pytest

import repro.api as api
from repro.api import (
    SCHEMA_VERSION,
    ATPGRequest,
    AnalyzeRequest,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    ListRequest,
    REQUEST_KINDS,
    RequestError,
    ShardRequest,
    StatsRequest,
    SuiteRequest,
    UntestableRequest,
    learn_digest,
    request_from_dict,
)
from repro.core import LearnConfig
from repro.flow import ATPGConfig, ConfigError, ReproConfig
from repro.flow.session import resolve_circuit

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
SCHEMA_GOLDEN = os.path.join(DATA_DIR, "api_schema_golden.json")
MANIFEST = os.path.join(DATA_DIR, "api_manifest.json")

#: One representative (non-default where it matters) of each kind.
EXAMPLES = {
    "learn": LearnRequest(spec="figure1", validate_sequences=5,
                          save="art.json", details=True),
    "untestable": UntestableRequest(spec="figure1"),
    "atpg": ATPGRequest(spec="s27", modes=("none", "known"),
                        learned="art.json", canonical=True),
    "faultsim": FaultSimRequest(spec="s27", modes=("known",)),
    "suite": SuiteRequest(specs=("figure1", "s27"), modes=("known",),
                          out="suite.json", canonical=True),
    "shard": ShardRequest(spec="s27", mode="known", shard_index=1,
                          n_shards=4, learned_digest="0" * 64),
    "compare": CompareRequest(spec="figure1",
                              backtrack_limits=(5, 10)),
    "stats": StatsRequest(spec="figure1"),
    "analyze": AnalyzeRequest(spec="figure1", max_ffs=8),
    "list": ListRequest(),
}


# ----------------------------------------------------------------------
# round-trip + canonical JSON
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(EXAMPLES))
def test_round_trip_through_canonical_json(kind):
    request = EXAMPLES[kind]
    rebuilt = request_from_dict(json.loads(request.to_canonical_json()))
    assert type(rebuilt) is type(request)
    assert rebuilt == request
    # Canonical form is a fixpoint: round-tripping changes nothing.
    assert rebuilt.to_canonical_json() == request.to_canonical_json()


def test_every_kind_is_registered():
    assert sorted(REQUEST_KINDS) == sorted(EXAMPLES)
    for kind, cls in REQUEST_KINDS.items():
        assert cls.KIND == kind


def test_to_dict_carries_kind_and_version():
    payload = EXAMPLES["atpg"].to_dict()
    assert payload["kind"] == "atpg"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["modes"] == ["none", "known"]  # tuples -> lists
    assert isinstance(payload["config"], dict)


# ----------------------------------------------------------------------
# strict parsing
# ----------------------------------------------------------------------
def test_unknown_kind_rejected():
    with pytest.raises(RequestError, match="unknown request kind"):
        request_from_dict({"kind": "frobnicate"})


def test_missing_kind_rejected():
    with pytest.raises(RequestError, match="missing 'kind'"):
        request_from_dict({"spec": "figure1"})


def test_unknown_field_rejected():
    with pytest.raises(RequestError, match="unknown LearnRequest"):
        request_from_dict({"kind": "learn", "spec": "figure1",
                           "tpyo": 1})


def test_wrong_schema_version_rejected():
    with pytest.raises(RequestError, match="schema_version"):
        request_from_dict({"kind": "learn", "spec": "figure1",
                           "schema_version": SCHEMA_VERSION + 1})


def test_bad_config_value_is_config_error():
    with pytest.raises(ConfigError, match="sim_backend"):
        request_from_dict({"kind": "atpg", "spec": "s27",
                           "config": {"atpg": {"sim_backend": "gpu"}}})


def test_bad_mode_rejected():
    with pytest.raises(ConfigError, match="mode"):
        ATPGRequest(spec="s27", modes=("bogus",)).validate()


def test_empty_suite_rejected():
    with pytest.raises(RequestError, match="non-empty"):
        SuiteRequest(specs=()).validate()


def test_non_dict_rejected():
    with pytest.raises(RequestError, match="JSON object"):
        request_from_dict(["kind", "learn"])


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
#: Pinned digest of the all-defaults ReproConfig.  If this assertion
#: fires, the canonical config form changed -- every cross-run cache
#: key changes with it.  That can be a deliberate, reviewed event
#: (update the pin); it must never be a drive-by.
PINNED_DEFAULT_CONFIG_DIGEST = (
    "95020b7b7cac6bf746d35923ebcffb77b6ebd3b214dfac871637852d63916421")


def test_default_config_digest_is_pinned():
    assert ReproConfig().config_digest() == PINNED_DEFAULT_CONFIG_DIGEST


def test_canonical_config_json_sorted_and_materialized():
    payload = json.loads(ReproConfig().to_canonical_json())
    assert list(payload) == sorted(payload)
    # Defaults are materialized: every ATPGConfig field is present.
    assert payload["atpg"]["fill_seed"] == 12345
    assert json.loads(ATPGConfig().to_canonical_json())[
        "backtrack_limit"] == 30


def test_config_digest_ignores_jobs():
    assert (ReproConfig(jobs=1).config_digest()
            == ReproConfig(jobs=8).config_digest())
    assert (ReproConfig().config_digest()
            != ReproConfig(retime=1).config_digest())


def test_request_digest_binds_circuit_kind_and_config():
    figure1 = resolve_circuit("figure1")
    s27 = resolve_circuit("s27")
    base = ATPGRequest(spec="figure1")
    assert base.config_digest(figure1) == base.config_digest(figure1)
    assert base.config_digest(figure1) != base.config_digest(s27)
    assert (base.config_digest(figure1)
            != LearnRequest(spec="figure1").config_digest(figure1))
    tweaked = ATPGRequest(spec="figure1", config=ReproConfig(
        atpg=ATPGConfig(backtrack_limit=7)))
    assert base.config_digest(figure1) != tweaked.config_digest(figure1)
    # Result-affecting request fields are part of the digest ...
    assert (ATPGRequest(spec="figure1", modes=("none",))
            .config_digest(figure1)
            != ATPGRequest(spec="figure1", modes=("known",))
            .config_digest(figure1))
    assert (CompareRequest(spec="figure1", backtrack_limits=(3,))
            .config_digest(figure1)
            != CompareRequest(spec="figure1", backtrack_limits=(5,))
            .config_digest(figure1))
    # ... but output paths and presentation toggles are not.
    assert (base.config_digest(figure1)
            == ATPGRequest(spec="figure1",
                           canonical=True).config_digest(figure1))


def test_learn_digest_keys_on_learning_config_not_backend():
    circuit = resolve_circuit("figure1")
    a = learn_digest(circuit, LearnConfig())
    assert a == learn_digest(circuit, LearnConfig())
    assert a != learn_digest(circuit, LearnConfig(max_frames=5))
    assert a != learn_digest(resolve_circuit("s27"), LearnConfig())


# ----------------------------------------------------------------------
# golden schemas + public surface manifest
# ----------------------------------------------------------------------
def _schema(value):
    if isinstance(value, dict):
        return {key: _schema(value[key]) for key in sorted(value)}
    if isinstance(value, list):
        return [_schema(item) for item in value]
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    raise AssertionError(f"non-JSON value {value!r}")


def test_request_schemas_match_golden():
    observed = {kind: _schema(request.to_dict())
                for kind, request in EXAMPLES.items()}
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        with open(SCHEMA_GOLDEN, "w") as handle:
            json.dump(observed, handle, indent=1, sort_keys=True)
            handle.write("\n")
        pytest.skip("api request golden schema regenerated")
    with open(SCHEMA_GOLDEN) as handle:
        golden = json.load(handle)
    assert observed == golden, (
        "request wire schema changed; if intentional, regenerate "
        "tests/data/api_schema_golden.json with REPRO_UPDATE_GOLDEN=1, "
        "review the diff, and consider bumping SCHEMA_VERSION")


def test_public_api_surface_matches_manifest():
    observed = sorted(set(api.__all__))
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        with open(MANIFEST, "w") as handle:
            json.dump(observed, handle, indent=1)
            handle.write("\n")
        pytest.skip("api manifest regenerated")
    with open(MANIFEST) as handle:
        manifest = json.load(handle)
    assert observed == manifest, (
        "repro.api.__all__ changed; update tests/data/api_manifest.json "
        "in the same change (REPRO_UPDATE_GOLDEN=1) and review it as an "
        "API surface change")
    for name in observed:
        assert getattr(api, name, None) is not None, (
            f"__all__ names {name!r} but repro.api does not provide it")


def test_string_for_list_field_rejected_not_exploded():
    # tuple("s27") would silently become ('s', '2', '7').
    with pytest.raises(RequestError, match="must be a list"):
        request_from_dict({"kind": "suite", "specs": "s27"})
    with pytest.raises(RequestError, match="must be a list"):
        ATPGRequest(spec="s27", modes="known")
