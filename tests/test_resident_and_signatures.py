"""Wide learning signatures + resident fault dropping (PR 9).

Two contracts under test:

* **Signatures are backend- and substrate-invariant at any width.**
  :func:`repro.sim.parallel.signatures` must produce byte-identical
  node masks through the reference interpreters, the compiled
  straight-line kernels and the array backend (numpy and bigint
  substrates, grouped and compiled-routed paths) at both the historical
  256-bit width and the 4096-bit array word width.

* **Resident dropping never changes a detection outcome.**  The
  :mod:`repro.sim.resident` droppers freeze fault batches and compact
  dropped columns in place; a dropped fault must never be reported
  again (no resurrection), and the cumulative hit sets must match the
  historical per-call subset slicing on every backend, with repacking
  forced and without.
"""

import os
import random
import subprocess
import sys

import pytest

import repro
from repro.atpg.faults import collapse_faults
from repro.circuit import industrial_like, random_circuit, s27
from repro.sim.array_backend import (
    HAVE_NUMPY,
    clear_pattern_cache,
    pattern_cache_stats,
    pattern_engine,
    simulate_patterns_array,
)
from repro.sim.parallel import random_source_masks, signatures
from repro.sim.resident import (
    ArrayResidentDropper,
    SubsetResidentDropper,
    make_resident_dropper,
)

#: The two signature widths the learning engine runs at: the paper's
#: historical 256 and the array backend's 4096-bit word width.
SIGNATURE_WIDTHS = (256, 4096)


def _circuits():
    return [
        random_circuit("sig_r0", n_inputs=5, n_outputs=4, n_ffs=6,
                       n_gates=40, seed=3),
        industrial_like("sig_i0", n_domains=2, n_ffs=10, n_gates=60,
                        seed=11),
        s27(),
    ]


# ----------------------------------------------------------------------
# learning signatures across backends x widths x substrates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("width", SIGNATURE_WIDTHS)
def test_signatures_identical_across_backends(width):
    for circuit in _circuits():
        ref = signatures(circuit, width=width,
                         rng=random.Random(99), backend="reference")
        for backend in ("compiled", "array"):
            assert signatures(circuit, width=width,
                              rng=random.Random(99),
                              backend=backend) == ref


@pytest.mark.parametrize("width", SIGNATURE_WIDTHS)
def test_pattern_masks_identical_on_both_substrates(width):
    """Both array substrates and both array evaluation paths (the
    compiled-routed default and the grouped word-matrix kernels) must
    reproduce the reference masks bit for bit."""
    from repro.sim.parallel import simulate_patterns

    for circuit in _circuits():
        rng = random.Random(width)
        source = random_source_masks(circuit, width, rng)
        masks = simulate_patterns(circuit, source, width)
        assert simulate_patterns_array(circuit, source, width) == masks
        assert simulate_patterns_array(circuit, source, width,
                                       use_numpy=False) == masks
        if HAVE_NUMPY:
            assert simulate_patterns_array(circuit, source, width,
                                           grouped=True) == masks


def test_signatures_bigint_substrate_subprocess():
    """The numpy-absent leg: a fresh interpreter under
    ``REPRO_ARRAY_DISABLE_NUMPY`` must produce the same signatures at
    both widths through the array backend's bigint substrate."""
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    code = (
        "import random\n"
        "from repro.sim.array_backend import HAVE_NUMPY\n"
        "from repro.sim.parallel import signatures\n"
        "from repro.circuit import random_circuit\n"
        "assert not HAVE_NUMPY\n"
        "c = random_circuit('sig_r0', n_inputs=5, n_outputs=4,\n"
        "                   n_ffs=6, n_gates=40, seed=3)\n"
        "for width in (256, 4096):\n"
        "    ref = signatures(c, width=width, rng=random.Random(99),\n"
        "                     backend='reference')\n"
        "    arr = signatures(c, width=width, rng=random.Random(99),\n"
        "                     backend='array')\n"
        "    assert arr == ref, width\n"
        "print('ok')\n"
    )
    env = dict(os.environ,
               REPRO_ARRAY_DISABLE_NUMPY="1",
               PYTHONPATH=src_root)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy substrate only")
def test_pattern_engine_cache_hits():
    """`simulate_patterns_array` memoizes the resident pattern engine
    by circuit fingerprint: repeated calls must stop re-lowering."""
    clear_pattern_cache()
    circuit = _circuits()[0]
    rng = random.Random(5)
    source = random_source_masks(circuit, 256, rng)
    simulate_patterns_array(circuit, source, 256)
    first = pattern_cache_stats()
    assert first["misses"] == 1 and first["entries"] == 1
    for _ in range(3):
        simulate_patterns_array(circuit, source, 256)
    stats = pattern_cache_stats()
    assert stats["misses"] == 1
    assert stats["hits"] >= 3
    assert pattern_engine(circuit) is pattern_engine(circuit)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy substrate only")
def test_grouped_path_rejected_on_bigint_substrate():
    circuit = _circuits()[0]
    source = random_source_masks(circuit, 64, random.Random(1))
    with pytest.raises(ValueError):
        simulate_patterns_array(circuit, source, 64, use_numpy=False,
                                grouped=True)


# ----------------------------------------------------------------------
# resident dropping: compaction, no resurrection, repack
# ----------------------------------------------------------------------
def _drop_case(seed):
    circuit = industrial_like(f"drop_i{seed}", n_domains=2,
                              n_ffs=8 + 4 * (seed % 3),
                              n_gates=60 + 20 * (seed % 2), seed=seed)
    faults = collapse_faults(circuit)
    rng = random.Random(seed)
    names = [circuit.nodes[i].name for i in circuit.inputs]
    sequences = [[{n: rng.randint(0, 1) for n in names}
                  for _ in range(3 + rng.randrange(5))]
                 for _ in range(12)]
    return circuit, faults, sequences


@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("width", (None, 7))
def test_resident_dropper_matches_subset_slicing(seed, width):
    """Cumulative array-resident hits == historical subset slicing on
    the reference backend, sequence by sequence.  ``width=7`` forces
    many small batches (and repacks) on the same corpus."""
    circuit, faults, sequences = _drop_case(seed)
    live = list(range(len(faults)))
    resident = ArrayResidentDropper(circuit, faults, live, width=width)
    subset = SubsetResidentDropper(circuit, faults, live,
                                   backend="reference")
    for sequence in sequences:
        assert (sorted(resident.drop(sequence))
                == sorted(subset.drop(sequence)))
    assert resident.stats()["drop_hits"] == subset.stats()["drop_hits"]


@pytest.mark.parametrize("use_numpy", (
    pytest.param(True, marks=pytest.mark.skipif(
        not HAVE_NUMPY, reason="numpy substrate only")),
    False,
))
def test_dropped_fault_never_resurrects(use_numpy):
    """Column compaction: once a fault is dropped (by hit or discard)
    no later ``drop`` call may report it again -- even after repacking
    rebuilds every batch."""
    circuit, faults, sequences = _drop_case(1)
    live = list(range(len(faults)))
    dropper = ArrayResidentDropper(circuit, faults, live, width=5,
                                   use_numpy=use_numpy)
    retired = set()
    # Interleave external discards with drops so both retirement paths
    # (and the halving-rule repack) run against the same corpus.
    discard_iter = iter(sorted(live, reverse=True))
    for sequence in sequences * 3:
        hits = dropper.drop(sequence)
        assert not (set(hits) & retired), "resurrected dropped fault"
        assert len(set(hits)) == len(hits)
        retired.update(hits)
        for index in discard_iter:
            if index not in retired:
                dropper.discard(index)
                retired.add(index)
                break
    stats = dropper.stats()
    assert stats["live"] == len(faults) - len(retired)
    # Force the halving-rule repack by discarding past the threshold,
    # then prove compaction survives the rebuild: repacked batches must
    # still never report anything retired before the repack.
    for index in live:
        if dropper.stats()["live"] <= max(2, len(faults) // 3):
            break
        if index not in retired:
            dropper.discard(index)
            retired.add(index)
    assert dropper.stats()["repacks"] >= 1
    for sequence in sequences:
        hits = dropper.drop(sequence)
        assert not (set(hits) & retired), "resurrected after repack"
        retired.update(hits)
    # Everything retired: every further drop is a no-op.
    for index in list(live):
        dropper.discard(index)
    assert dropper.stats()["live"] == 0
    assert dropper.drop(sequences[0]) == []


def test_make_resident_dropper_dispatch():
    circuit, faults, _ = _drop_case(0)
    live = list(range(len(faults)))
    assert isinstance(
        make_resident_dropper(circuit, faults, live, backend="array"),
        ArrayResidentDropper)
    for backend in ("reference", "compiled"):
        dropper = make_resident_dropper(circuit, faults, live,
                                        backend=backend)
        assert isinstance(dropper, SubsetResidentDropper)
        assert dropper.stats()["backend"] == backend
    with pytest.raises(ValueError):
        make_resident_dropper(circuit, faults, live, backend="vhdl")
