"""Extra retiming + analysis coverage: attribute preservation, guards."""

import pytest

from repro.circuit import (
    CircuitBuilder,
    industrial_like,
    retimable_ffs,
    retime_backward,
    retime_circuit,
    s27,
)
from repro.circuit.netlist import CircuitError


def test_retime_preserves_seq_attributes():
    circuit = industrial_like(n_ffs=12, n_gates=80, seed=5)
    candidates = retimable_ffs(circuit)
    if not candidates:
        pytest.skip("no retimable FF in this seed")
    retimed = retime_backward(circuit, candidates[0])
    # Untouched FFs keep their clock/set/reset attributes.
    for fid in retimed.ffs:
        node = retimed.nodes[fid]
        if node.name in circuit and circuit.node(node.name).is_sequential:
            original = circuit.node(node.name)
            assert node.clock == original.clock
            assert node.set_kind == original.set_kind
            assert node.num_ports == original.num_ports


def test_retime_new_registers_inherit_clock():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.dff("f", "g", clock="clkZ", phase=1)
    b.gate("q", "buf", "f")
    b.output("q")
    circuit = b.build()
    retimed = retime_backward(circuit, "f")
    new_regs = [retimed.nodes[fid] for fid in retimed.ffs]
    assert all(reg.clock == "clkZ" and reg.phase == 1 for reg in new_regs)


def test_retime_shared_fanin_shares_register():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g", "xor", "a", "na")
    b.gate("na", "not", "a")
    b.dff("f", "g")
    b.gate("q", "buf", "f")
    b.output("q")
    circuit = b.build()
    retimed = retime_backward(circuit, "f")
    # Two distinct fanins -> two registers, replacing one.
    assert retimed.num_ffs == 2


def test_retime_rejects_self_loop_driver():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g", "or", "a", "f")
    b.dff("f", "g")
    b.output("g")
    circuit = b.build()
    with pytest.raises(ValueError):
        retime_backward(circuit, "f")


def test_retime_rejects_not_an_ff():
    with pytest.raises(ValueError):
        retime_backward(s27(), "G14")


def test_retime_circuit_name_and_seeded_shuffle():
    base = s27()
    a = retime_circuit(base, moves=2, seed=1, name="rtA")
    assert a.name == "rtA"
    b = retime_circuit(base, moves=2, seed=1)
    assert a.num_ffs == b.num_ffs


# ---------------------------------------------------------------------------
# analysis extras
# ---------------------------------------------------------------------------

def test_transition_matches_simulator():
    import random

    from repro.analysis.reachability import _transition
    from repro.sim import simulate_sequence

    circuit = s27()
    rng = random.Random(4)
    for _ in range(30):
        state = tuple(rng.randint(0, 1) for _ in circuit.ffs)
        vector = tuple(rng.randint(0, 1) for _ in circuit.inputs)
        nxt = _transition(circuit, state, vector)
        init = {circuit.nodes[f].name: v
                for f, v in zip(circuit.ffs, state)}
        vec = {circuit.nodes[i].name: v
               for i, v in zip(circuit.inputs, vector)}
        frames = simulate_sequence(circuit, [vec, {}], init_state=init)
        expected = tuple(frames[1][circuit.nodes[f].name]
                         for f in circuit.ffs)
        assert nxt == expected


def test_valid_states_closed_under_transition():
    from itertools import product

    from repro.analysis import analyze_state_space
    from repro.analysis.reachability import _transition

    circuit = s27()
    space = analyze_state_space(circuit)
    vectors = list(product((0, 1), repeat=len(circuit.inputs)))
    for state in space.valid_states:
        for vector in vectors:
            assert _transition(circuit, state, vector) in \
                space.valid_states
