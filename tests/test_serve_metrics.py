"""Metrics registry: counters, histograms, exports, and the endpoint.

The registry is plain data structures behind one lock; these tests pin
the le-bucket semantics, the deterministic exports (JSON + Prometheus
text), exactness under contention, and the ``GET /v1/metrics`` surface
of a live daemon.
"""

import http.client
import json
import threading
import time
from contextlib import closing, contextmanager

from repro.api import ListRequest, make_server
from repro.serve import Metrics, histogram_quantile
from repro.serve.metrics import DEPTH_BUCKETS, LATENCY_BUCKETS_S


def test_counter_series_and_totals():
    metrics = Metrics()
    metrics.inc("requests_total", {"kind": "atpg", "outcome": "ok"})
    metrics.inc("requests_total", {"kind": "atpg", "outcome": "ok"})
    metrics.inc("requests_total", {"outcome": "ok", "kind": "learn"})
    metrics.inc("rejections_total", value=5)
    assert metrics.counter_value(
        "requests_total", {"kind": "atpg", "outcome": "ok"}) == 2
    # Label order is irrelevant to series identity.
    assert metrics.counter_value(
        "requests_total", {"outcome": "ok", "kind": "atpg"}) == 2
    assert metrics.counter_total("requests_total") == 3
    assert metrics.counter_value("rejections_total") == 5
    assert metrics.counter_value("never_bumped_total") == 0


def test_histogram_le_bucket_semantics():
    metrics = Metrics()
    metrics.observe("depth", 0, buckets=(1, 2, 4))
    metrics.observe("depth", 1, buckets=(1, 2, 4))  # == bound -> le bucket
    metrics.observe("depth", 3)
    metrics.observe("depth", 100)  # beyond the last bound -> +Inf
    snapshot = metrics.histogram_snapshot("depth")
    assert snapshot["bounds"] == [1, 2, 4]
    assert snapshot["counts"] == [2, 0, 1, 1]
    assert snapshot["count"] == 4
    assert snapshot["sum"] == 104
    assert metrics.histogram_snapshot("never_observed") is None


def test_histogram_bounds_fixed_by_first_observation():
    metrics = Metrics()
    metrics.observe("wait", 0.5, {"class": "batch"}, buckets=(1, 10))
    # A different series of the same name reuses the first bounds even
    # when the call names different buckets.
    metrics.observe("wait", 5.0, {"class": "interactive"},
                    buckets=(2, 3, 4))
    snapshot = metrics.histogram_snapshot("wait",
                                          {"class": "interactive"})
    assert snapshot["bounds"] == [1, 10]
    assert snapshot["counts"] == [0, 1, 0]


def test_default_buckets_are_latency_flavoured():
    metrics = Metrics()
    metrics.observe("request_latency_s", 0.3)
    snapshot = metrics.histogram_snapshot("request_latency_s")
    assert snapshot["bounds"] == list(LATENCY_BUCKETS_S)


def test_to_dict_sorted_and_labelled():
    metrics = Metrics()
    metrics.inc("b_total", {"x": "2"})
    metrics.inc("a_total")
    metrics.observe("lat", 0.01, {"kind": "atpg"}, buckets=(0.1, 1.0))
    exported = metrics.to_dict()
    assert list(exported["counters"]) == ["a_total", 'b_total{x="2"}']
    histogram = exported["histograms"]['lat{kind="atpg"}']
    assert histogram["buckets"] == {"0.1": 1, "1": 0, "+Inf": 0}
    assert histogram["count"] == 1
    # Export is stable across calls (no hash-order leakage).
    assert json.dumps(exported, sort_keys=False) == \
        json.dumps(metrics.to_dict(), sort_keys=False)


def test_render_prometheus_cumulative_buckets_and_gauges():
    metrics = Metrics()
    metrics.inc("requests_total", {"kind": "atpg"})
    metrics.observe("lat", 0.05, buckets=(0.1, 1.0))
    metrics.observe("lat", 0.5, buckets=(0.1, 1.0))
    metrics.observe("lat", 30.0, buckets=(0.1, 1.0))
    text = metrics.render_prometheus(gauges={"active": 3})
    lines = text.splitlines()
    assert "# TYPE repro_requests_total counter" in lines
    assert 'repro_requests_total{kind="atpg"} 1' in lines
    assert "# TYPE repro_lat histogram" in lines
    # Buckets are cumulative at export: 1, then 1+1, then +Inf = all.
    assert 'repro_lat_bucket{le="0.1"} 1' in lines
    assert 'repro_lat_bucket{le="1"} 2' in lines
    assert 'repro_lat_bucket{le="+Inf"} 3' in lines
    assert "repro_lat_sum 30.55" in lines
    assert "repro_lat_count 3" in lines
    assert "# TYPE repro_active gauge" in lines
    assert "repro_active 3" in lines
    assert text.endswith("\n")


def test_histogram_quantile_conservative_upper_bound():
    bounds = (1, 2, 4)
    #          <=1 <=2 <=4 +Inf
    counts = (5, 3, 1, 1)
    assert histogram_quantile(bounds, counts, 0.5) == 1.0
    assert histogram_quantile(bounds, counts, 0.8) == 2.0
    assert histogram_quantile(bounds, counts, 0.9) == 4.0
    # Observations in +Inf report the largest finite bound.
    assert histogram_quantile(bounds, counts, 1.0) == 4.0
    assert histogram_quantile(bounds, (0, 0, 0, 0), 0.99) == 0.0


def test_exact_counts_under_contention():
    metrics = Metrics()
    per_thread = 500

    def hammer():
        for _ in range(per_thread):
            metrics.inc("hits_total")
            metrics.observe("lat", 0.01, buckets=(1.0,))

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert metrics.counter_value("hits_total") == 8 * per_thread
    assert metrics.histogram_snapshot("lat")["count"] == 8 * per_thread


# ----------------------------------------------------------------------
# the live endpoint
# ----------------------------------------------------------------------
@contextmanager
def running_server():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def fetch(server, path, headers=None):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        return response.status, response.getheader("Content-Type"), \
            response.read()


def settle(server, name="requests_total", timeout=10):
    """Metrics land in the handler's ``finally`` a beat after the
    response bytes; wait for the counter so scrapes are deterministic."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.metrics.counter_total(name) > 0:
            return
        time.sleep(0.01)
    raise AssertionError(f"{name} never recorded")


def test_metrics_endpoint_json_and_prometheus():
    with running_server() as server:
        host, port = server.server_address[:2]
        body = json.dumps(ListRequest().to_dict()).encode()
        with closing(http.client.HTTPConnection(host, port,
                                                timeout=60)) as conn:
            conn.request("POST", "/v1/execute", body=body)
            assert conn.getresponse().read()
        settle(server)

        status, content_type, body = fetch(server, "/v1/metrics")
        assert status == 200 and "application/json" in content_type
        payload = json.loads(body)
        counters = payload["metrics"]["counters"]
        assert any(key.startswith("requests_total") for key in counters)
        assert {"caches", "admission"} <= set(payload)
        assert "pattern_cache" in payload["caches"]
        assert payload["admission"]["active"] == 0

        for path, headers in (
                ("/v1/metrics?format=prometheus", None),
                ("/v1/metrics", {"Accept": "text/plain"})):
            status, content_type, body = fetch(server, path,
                                               headers=headers)
            assert status == 200
            assert content_type == "text/plain; version=0.0.4"
            text = body.decode()
            assert "# TYPE repro_requests_total counter" in text
            assert 'outcome="ok"' in text
            assert "# TYPE repro_requests_served gauge" in text
            assert "repro_kernel_cache_" in text


def test_queue_depth_histogram_uses_depth_buckets():
    with running_server() as server:
        host, port = server.server_address[:2]
        body = json.dumps(ListRequest().to_dict()).encode()
        with closing(http.client.HTTPConnection(host, port,
                                                timeout=60)) as conn:
            conn.request("POST", "/v1/execute", body=body)
            conn.getresponse().read()
        settle(server)
        snapshot = server.metrics.histogram_snapshot(
            "queue_depth", {"class": "interactive"})
        assert snapshot is not None
        assert snapshot["bounds"] == list(DEPTH_BUCKETS)
