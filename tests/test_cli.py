"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main, resolve_circuit


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure1" in out and "s27" in out


def test_stats(capsys):
    assert main(["stats", "figure1"]) == 0
    assert "'ffs': 6" in capsys.readouterr().out


def test_learn_verbose_validate(capsys):
    assert main(["learn", "figure1", "-v", "--validate", "10"]) == 0
    out = capsys.readouterr().out
    assert "G15" in out
    assert "0 violations" in out


def test_learn_flags(capsys):
    assert main(["learn", "figure1", "--no-multi", "--no-equiv"]) == 0
    out = capsys.readouterr().out
    assert "'ties': 2" in out  # G15 needs the multi phase


def test_analyze(capsys):
    assert main(["analyze", "figure1"]) == 0
    assert "density of encoding" in capsys.readouterr().out


def test_untestable(capsys):
    assert main(["untestable", "figure1"]) == 0
    assert "tie_gates" in capsys.readouterr().out


def test_atpg_small(capsys):
    assert main(["atpg", "s27", "--backtrack-limit", "100",
                 "--window", "8"]) == 0
    out = capsys.readouterr().out
    assert "mode=none" in out and "mode=known" in out


def test_resolve_like_profile():
    circuit = resolve_circuit("like:s382@0.5")
    assert circuit.num_ffs == 10


def test_resolve_retime():
    base = resolve_circuit("s27")
    retimed = resolve_circuit("s27", retime=2)
    assert retimed.num_ffs > base.num_ffs


def test_resolve_bench_file(tmp_path):
    from repro.circuit import bench_text, figure2

    path = tmp_path / "fig2.bench"
    path.write_text(bench_text(figure2()))
    circuit = resolve_circuit(str(path))
    assert circuit.num_ffs == 5


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
