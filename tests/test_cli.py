"""Command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main, resolve_circuit


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure1" in out and "s27" in out


def test_stats(capsys):
    assert main(["stats", "figure1"]) == 0
    assert "'ffs': 6" in capsys.readouterr().out


def test_learn_verbose_validate(capsys):
    assert main(["learn", "figure1", "-v", "--validate", "10"]) == 0
    out = capsys.readouterr().out
    assert "G15" in out
    assert "0 violations" in out


def test_learn_flags(capsys):
    assert main(["learn", "figure1", "--no-multi", "--no-equiv"]) == 0
    out = capsys.readouterr().out
    assert "'ties': 2" in out  # G15 needs the multi phase


def test_analyze(capsys):
    assert main(["analyze", "figure1"]) == 0
    assert "density of encoding" in capsys.readouterr().out


def test_untestable(capsys):
    assert main(["untestable", "figure1"]) == 0
    assert "tie_gates" in capsys.readouterr().out


def test_atpg_small(capsys):
    assert main(["atpg", "s27", "--backtrack-limit", "100",
                 "--window", "8"]) == 0
    out = capsys.readouterr().out
    assert "mode=none" in out and "mode=known" in out


def test_resolve_like_profile():
    circuit = resolve_circuit("like:s382@0.5")
    assert circuit.num_ffs == 10


def test_resolve_retime():
    base = resolve_circuit("s27")
    retimed = resolve_circuit("s27", retime=2)
    assert retimed.num_ffs > base.num_ffs


def test_resolve_bench_file(tmp_path):
    from repro.circuit import bench_text, figure2

    path = tmp_path / "fig2.bench"
    path.write_text(bench_text(figure2()))
    circuit = resolve_circuit(str(path))
    assert circuit.num_ffs == 5


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_resolve_missing_bench_path_clear_error():
    with pytest.raises(SystemExit, match="cannot read bench file"):
        main(["stats", "/no/such/path.bench"])


def test_resolve_unknown_profile_clear_error():
    with pytest.raises(SystemExit, match="unknown profile"):
        main(["stats", "like:not_a_real_profile"])


def test_list_and_stats_json(capsys):
    assert main(["list", "--json"]) == 0
    listed = json.loads(capsys.readouterr().out)
    assert "figure1" in listed["circuits"]

    assert main(["stats", "figure1", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["ffs"] == 6 and len(stats["fingerprint"]) == 64


def test_learn_json_output(capsys):
    assert main(["learn", "figure1", "--json", "--validate", "5"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["command"] == "learn"
    assert payload["learn"]["ties"] == 3
    assert payload["validation"]["violations"] == []


def test_learn_save_then_atpg_learned(tmp_path, capsys):
    artifact = str(tmp_path / "figure1.learn.json")
    assert main(["learn", "figure1", "--save", artifact]) == 0
    assert os.path.exists(artifact)
    capsys.readouterr()

    assert main(["atpg", "figure1", "--learned", artifact,
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["command"] == "atpg"
    assert payload["artifact"] == artifact
    # Learning was loaded from the artifact, not re-run.
    learn_stages = [s for s in payload["stages"]
                    if s["stage"] == "learn"]
    assert learn_stages[0]["artifact"] == artifact
    assert set(payload["atpg"]) == {"none", "forbidden", "known"}
    for row in payload["atpg"].values():
        assert row["total"] == row["det"] + row["untest"] + row["aborted"]


def test_atpg_learned_stale_artifact(tmp_path, capsys):
    artifact = str(tmp_path / "figure1.learn.json")
    assert main(["learn", "figure1", "--save", artifact]) == 0
    with pytest.raises(SystemExit, match="does not match"):
        main(["atpg", "s27", "--learned", artifact])


def test_atpg_single_mode(capsys):
    assert main(["atpg", "figure1", "--mode", "known", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["atpg"]) == {"known"}


def test_atpg_mode_none_skips_learning(capsys):
    assert main(["atpg", "figure1", "--mode", "none", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["atpg"]) == {"none"}
    assert all(s["stage"] != "learn" for s in payload["stages"])


def test_atpg_mode_none_still_validates_explicit_artifact(tmp_path):
    artifact = str(tmp_path / "figure1.learn.json")
    assert main(["learn", "figure1", "--save", artifact]) == 0
    # A stale artifact must fail loudly even for the no-learning baseline.
    with pytest.raises(SystemExit, match="does not match"):
        main(["atpg", "s27", "--learned", artifact, "--mode", "none"])


def test_suite_command(tmp_path, capsys):
    out = str(tmp_path / "suite.json")
    assert main(["suite", "figure1", "s27", "--mode", "known",
                 "--max-faults", "20", "--json", "--out", out]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["command"] == "suite"
    assert payload["circuits"] == 2 and payload["errors"] == []
    with open(out) as handle:
        saved = json.load(handle)
    assert saved["format"] == "repro/suite-report"
    assert {r["circuit"] for r in saved["reports"]} == {"figure1", "s27"}


def test_suite_jobs_report_identical_to_serial(capsys):
    argv = ["suite", "figure1", "s27", "--mode", "known",
            "--max-faults", "20", "--json", "--canonical"]
    assert main(argv + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial


def test_suite_bad_spec_exits_nonzero_and_keeps_going(capsys):
    assert main(["suite", "figure1", "like:nope", "--mode", "known",
                 "--max-faults", "10", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["circuits"] == 1
    assert payload["errors"][0]["stage"] == "resolve"
