"""Event-driven injection simulator: the learning engine's workhorse."""

import pytest

from repro.circuit import CircuitBuilder, figure1
from repro.circuit.gates import ONE, X, ZERO
from repro.sim import Coupling, FrameSimulator, simulate_sequence


def names(circuit, frame):
    return {circuit.nodes[n].name: v for n, v in frame.items()}


def test_figure1_stem_I1_both_values_tie_g3():
    c = figure1()
    sim = FrameSimulator(c)
    for value in (ZERO, ONE):
        r = sim.inject_single(c.nid("I1"), value)
        assert names(c, r.frames[0]).get("G3") == 0
        assert names(c, r.frames[0]).get("G8") == 0


def test_figure1_stem_F3_self_sustains():
    """Paper: injecting 1 on F3 repeats the state and stops early."""
    c = figure1()
    sim = FrameSimulator(c)
    r = sim.inject_single(c.nid("F3"), ONE)
    assert r.repeated
    # F3=1 regenerates itself through G11 from frame 1 on.
    for frame in range(1, r.num_frames()):
        assert names(c, r.frames[frame]).get("F3") == 1
        assert names(c, r.frames[frame]).get("F4") == 0


def test_figure1_stem_I2_paper_row():
    """The reconstructed I2=1 row matches the paper's Table 1 entries."""
    c = figure1()
    sim = FrameSimulator(c)
    r = sim.inject_single(c.nid("I2"), ONE)
    t0 = names(c, r.frames[0])
    assert t0.get("G9") == 1 and t0.get("G10") == 1
    assert t0.get("G11") == 1 and t0.get("G6") == 0
    t1 = names(c, r.frames[1])
    for signal, value in [("F1", 1), ("F2", 1), ("F3", 1), ("F4", 0),
                          ("G1", 1), ("G2", 1), ("G4", 1), ("G5", 1),
                          ("G6", 0), ("G9", 1), ("G11", 1), ("G14", 0),
                          ("G15", 0)]:
        assert t1.get(signal) == value, signal
    t3 = names(c, r.frames[3])
    assert t3.get("F3") == 1 and t3.get("F4") == 0
    assert "F1" not in t3  # paper: F1 no longer implied at T=3


def test_injection_marks_are_tracked():
    c = figure1()
    sim = FrameSimulator(c)
    nid = c.nid("I2")
    r = sim.inject_single(nid, ONE)
    assert (0, nid) in r.injected
    assert nid not in r.implied(0)


def test_conflict_detection_forward():
    """A later-implied value contradicting an injected one conflicts."""
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "not", "a")
    b.gate("g2", "buf", "g1")
    b.output("g2")
    c = b.build()
    sim = FrameSimulator(c)
    r = sim.run({0: [(c.nid("a"), ONE), (c.nid("g2"), ONE)]})
    assert r.conflict is not None
    assert r.conflict.frame == 0


def test_conflict_on_injection_vs_constant():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("t0", "tie0")
    b.gate("g", "or", "a", "t0")
    b.output("g")
    c = b.build()
    sim = FrameSimulator(c)
    r = sim.run({0: [(c.nid("t0"), ONE)]})
    assert r.conflict is not None


def test_stop_without_state_is_immediate():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g", "and", "a", "b")
    b.output("g")
    c = b.build()
    sim = FrameSimulator(c)
    r = sim.inject_single(c.nid("a"), ZERO, max_frames=50)
    assert r.num_frames() <= 2
    assert r.repeated


def test_max_frames_bound():
    c = figure1()
    sim = FrameSimulator(c)
    r = sim.run({0: [(c.nid("I2"), ONE)]}, max_frames=2,
                stop_on_repeat=False)
    assert r.num_frames() == 2


def test_tie_coupling_unlocks_propagation():
    """With G3 tied, G8 and then G10 become derivable from I2=0."""
    c = figure1()
    plain = FrameSimulator(c)
    r_plain = plain.inject_single(c.nid("I2"), ZERO)
    assert "F2" not in names(c, r_plain.frames[1])
    coupled = FrameSimulator(
        c, Coupling(ties={c.nid("G3"): ZERO, c.nid("G8"): ZERO}))
    r = coupled.inject_single(c.nid("I2"), ZERO)
    # G10 = OR(I2, G8) = 0 -> F2 = 0 at T=1, as in the paper's
    # multiple-node walkthrough.
    assert names(c, r.frames[1]).get("F2") == 0


def test_equivalence_coupling_copies_values():
    from repro.circuit import equivalence_demo

    c = equivalence_demo()
    ga, ge = c.nid("GAND"), c.nid("GEQ")
    plain = FrameSimulator(c)
    r0 = plain.inject_single(c.nid("F1"), ONE)
    assert names(c, r0.frames[0]).get("GAND") == 1
    assert "GEQ" not in names(c, r0.frames[0])  # 3V-blind
    coupling = Coupling(equiv={ga: (0, 0), ge: (0, 0)})
    sim = FrameSimulator(c, coupling)
    r = sim.inject_single(c.nid("F1"), ONE)
    frame0 = names(c, r.frames[0])
    assert frame0.get("GAND") == 1
    assert frame0.get("GEQ") == 1   # copied by equivalence
    assert names(c, r.frames[1]).get("F2") == 1


def test_equivalence_coupling_complement_polarity():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "buf", "a")
    b.gate("g2", "not", "a")
    b.output("g1", "g2")
    c = b.build()
    coupling = Coupling(equiv={c.nid("g1"): (0, 0), c.nid("g2"): (0, 1)})
    sim = FrameSimulator(c, coupling)
    r = sim.run({0: [(c.nid("g1"), ONE)]})
    assert names(c, r.frames[0]).get("g2") == 0


# ---------------------------------------------------------------------------
# section 3.3 rules
# ---------------------------------------------------------------------------

def _ff_circuit(**attrs):
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("d", "buf", "a")
    b.dff("f", "d", **attrs)
    b.gate("q", "buf", "f")
    b.output("q")
    return b.build()


def test_multiport_latch_blocks_propagation():
    from repro.circuit.gates import GateType

    c = _ff_circuit(gate_type=GateType.LATCH, num_ports=2)
    sim = FrameSimulator(c)
    r = sim.inject_single(c.nid("a"), ONE)
    assert all("f" not in names(c, f) for f in r.frames)


def test_both_set_reset_blocks_propagation():
    c = _ff_circuit(set_kind="unconstrained", reset_kind="unconstrained")
    sim = FrameSimulator(c)
    r = sim.inject_single(c.nid("a"), ONE)
    assert all("f" not in names(c, f) for f in r.frames)


@pytest.mark.parametrize("kind,allowed,blocked", [
    ("set_kind", ONE, ZERO),
    ("reset_kind", ZERO, ONE),
])
def test_partial_set_reset_allows_matching_value(kind, allowed, blocked):
    c = _ff_circuit(**{kind: "unconstrained"})
    sim = FrameSimulator(c)
    r_ok = sim.inject_single(c.nid("a"), allowed)
    assert names(c, r_ok.frames[1]).get("f") == allowed
    r_no = sim.inject_single(c.nid("a"), blocked)
    assert all("f" not in names(c, f) for f in r_no.frames)


def test_constrained_set_reset_propagates_both():
    c = _ff_circuit(set_kind="constrained", reset_kind="constrained")
    sim = FrameSimulator(c)
    for value in (ZERO, ONE):
        r = sim.inject_single(c.nid("a"), value)
        assert names(c, r.frames[1]).get("f") == value


def test_active_ffs_restricts_class():
    c = _ff_circuit()
    sim = FrameSimulator(c, active_ffs=set())  # no FF in the class
    r = sim.inject_single(c.nid("a"), ONE)
    assert all("f" not in names(c, f) for f in r.frames)


# ---------------------------------------------------------------------------
# oracle simulator
# ---------------------------------------------------------------------------

def test_simulate_sequence_x_initial_state():
    c = _ff_circuit()
    frames = simulate_sequence(c, [{"a": 1}, {}])
    assert frames[0]["f"] == X
    assert frames[1]["f"] == 1
    assert frames[1]["q"] == 1


def test_simulate_sequence_init_state():
    c = _ff_circuit()
    frames = simulate_sequence(c, [{}], init_state={"f": 1})
    assert frames[0]["q"] == 1


def test_injection_consistent_with_oracle():
    """Everything the injection simulator derives must match a real run
    agreeing with the injected values (abstraction soundness)."""
    import random

    c = figure1()
    sim = FrameSimulator(c)
    rng = random.Random(5)
    inputs = [c.nodes[i].name for i in c.inputs]
    r = sim.inject_single(c.nid("I2"), ONE, max_frames=4)
    for _ in range(40):
        seq = [{n: rng.randint(0, 1) for n in inputs} for _ in range(6)]
        seq[0]["I2"] = 1
        init = {c.nodes[f].name: rng.randint(0, 1) for f in c.ffs}
        oracle = simulate_sequence(c, seq, init_state=init)
        for t in range(min(len(r.frames), len(seq))):
            for nid, val in r.frames[t].items():
                if (t, nid) in r.injected:
                    continue
                real = oracle[t][c.nodes[nid].name]
                assert real == val, (t, c.nodes[nid].name)
