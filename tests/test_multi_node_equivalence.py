"""Multiple-node learning internals and gate-equivalence machinery."""

import random

import pytest

from repro.circuit import CircuitBuilder, equivalence_demo, figure1, s27
from repro.circuit.gates import ONE, ZERO
from repro.core import (
    RelationDB,
    TieSet,
    build_injections,
    coupling_from,
    find_equivalences,
    run_multi_node,
    run_single_node,
    ties_from_single_node,
    verify_pair,
)
from repro.core.equivalence import eval_cone
from repro.sim import FrameSimulator
from repro.sim.parallel import exhaustive_masks


def test_build_injections_places_contrapositives():
    # Node value justified by stem 5=1 at offsets 1 and 3, stem 7=0 at 2.
    justs = [(5, 1, 1), (5, 1, 3), (7, 0, 2)]
    injections, t_max = build_injections(justs, (9, 1), max_frames=50)
    assert t_max == 3
    # offset 1 -> frame 2; offset 3 -> frame 0; offset 2 -> frame 1.
    assert (5, 0) in injections[2]
    assert (5, 0) in injections[0]
    assert (7, 1) in injections[1]
    # target (9, inv(1)) at frame 3
    assert (9, 0) in injections[3]


def test_build_injections_same_stem_same_frame_dedup():
    justs = [(5, 1, 2), (5, 1, 2)]
    injections, t_max = build_injections(justs, (9, 0), max_frames=50)
    assert t_max == 2
    assert injections[0].count((5, 0)) == 1


def test_multi_node_g15_conflict_path():
    """Replicate the paper's G15 walkthrough explicitly."""
    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=50)
    ties = ties_from_single_node(data, circuit)
    from repro.core.ties import propagate_tie_constants

    propagate_tie_constants(circuit, ties)
    assert circuit.nid("G15") not in ties
    coupled = FrameSimulator(circuit, coupling_from(ties),
                             active_ffs=set(circuit.ffs))
    db = RelationDB(circuit)
    stats = run_multi_node(coupled, data, db, ties, max_frames=50)
    assert circuit.nid("G15") in ties
    assert ties.value_of(circuit.nid("G15")) == 0
    assert stats.ties_found >= 1
    assert stats.relations_added > 0


def test_multi_node_min_justifications_filter():
    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=50)
    ties = TieSet(circuit)
    db = RelationDB(circuit)
    stats = run_multi_node(simulator, data, db, ties, max_frames=50,
                           min_justifications=100)
    assert stats.targets_run == 0


# ---------------------------------------------------------------------------
# equivalence
# ---------------------------------------------------------------------------

def test_verify_pair_equal_and_complement():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g1", "and", "a", "b")
    b.gate("n1", "not", "a")
    b.gate("n2", "not", "b")
    b.gate("g2", "nor", "n1", "n2")   # De Morgan: == g1
    b.gate("g3", "nand", "a", "b")    # complement of g1
    b.output("g2", "g3")
    c = b.build()
    assert verify_pair(c, c.nid("g1"), c.nid("g2")) == 0
    assert verify_pair(c, c.nid("g1"), c.nid("g3")) == 1
    assert verify_pair(c, c.nid("g1"), c.nid("n1")) is None


def test_verify_pair_support_limit():
    b = CircuitBuilder()
    names = [f"i{k}" for k in range(6)]
    b.inputs(*names)
    b.gate("g1", "and", *names)
    b.gate("g2", "and", *names)
    b.output("g1", "g2")
    c = b.build()
    assert verify_pair(c, c.nid("g1"), c.nid("g2"), max_support=6) == 0
    assert verify_pair(c, c.nid("g1"), c.nid("g2"), max_support=5) is None


def test_find_equivalences_classes_and_polarity():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g1", "and", "a", "b")
    b.gate("n1", "not", "a")
    b.gate("n2", "not", "b")
    b.gate("g2", "nor", "n1", "n2")
    b.gate("g3", "nand", "a", "b")
    b.output("g2", "g3")
    c = b.build()
    equiv = find_equivalences(c)
    g1, g2, g3 = c.nid("g1"), c.nid("g2"), c.nid("g3")
    assert g1 in equiv and g2 in equiv and g3 in equiv
    cls = {equiv[g1][0], equiv[g2][0], equiv[g3][0]}
    assert len(cls) == 1
    assert equiv[g1][1] == equiv[g2][1]
    assert equiv[g3][1] != equiv[g1][1]   # complemented member


def test_find_equivalences_excludes_tied_gates():
    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=10)
    ties = ties_from_single_node(data, circuit)
    equiv = find_equivalences(circuit, ties)
    assert circuit.nid("G3") not in equiv
    assert circuit.nid("G8") not in equiv


def test_equivalence_demo_pair_found():
    circuit = equivalence_demo()
    equiv = find_equivalences(circuit)
    ga, ge = circuit.nid("GAND"), circuit.nid("GEQ")
    assert ga in equiv and ge in equiv
    assert equiv[ga][0] == equiv[ge][0]
    assert equiv[ga][1] == equiv[ge][1]


def test_eval_cone_partial_evaluation():
    circuit = s27()
    target = circuit.nid("G8")
    support = circuit.cone_support(target)
    width = 1 << len(support)
    masks = eval_cone(circuit, [target],
                      exhaustive_masks(sorted(support), width), width)
    assert target in masks
    # Nodes outside the cone are not evaluated.
    outside = circuit.nid("G13")
    assert outside not in masks


def test_coupling_from_bundles():
    circuit = figure1()
    ties = TieSet(circuit)
    ties.add(circuit.nid("G3"), 0, sequential=False, phase="single")
    coupling = coupling_from(ties, {circuit.nid("G4"): (0, 0),
                                    circuit.nid("G2"): (0, 0)})
    assert coupling.ties == {circuit.nid("G3"): 0}
    assert len(coupling.classmates(circuit.nid("G4"))) == 1
