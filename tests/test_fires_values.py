"""FIRES internals and the composite-value helpers."""

import pytest

from repro.circuit import CircuitBuilder, figure1
from repro.circuit.gates import ONE, X, ZERO
from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.fires import _StemCase, fires_untestable
from repro.sim import FrameSimulator
from repro.sim.values import (
    V0,
    V1,
    VD,
    VDBAR,
    VX,
    composite_name,
    is_fault_effect,
)


def test_composite_names():
    assert composite_name(V0) == "0"
    assert composite_name(V1) == "1"
    assert composite_name(VD) == "D"
    assert composite_name(VDBAR) == "D'"
    assert composite_name(VX) == "X"
    assert composite_name((ONE, X)) == "1/X"


def test_is_fault_effect():
    assert is_fault_effect(VD)
    assert is_fault_effect(VDBAR)
    assert not is_fault_effect(V0)
    assert not is_fault_effect(VX)
    assert not is_fault_effect((ONE, X))


# ---------------------------------------------------------------------------
# FIRES internals
# ---------------------------------------------------------------------------

def _tie_circuit():
    b = CircuitBuilder()
    b.inputs("a", "s")
    b.gate("t", "xor", "a", "a")       # tied 0 via stem a
    b.gate("g", "or", "t", "s")
    b.output("g")
    return b.build()


def test_excitation_blocked_detected():
    c = _tie_circuit()
    sim = FrameSimulator(c)
    case = _StemCase(c, sim.inject_single(c.nid("a"), ZERO, max_frames=10))
    fault = Fault(c.nid("t"), None, ZERO)
    assert case.excitation_blocked(fault, c.nid("t"))


def test_fires_on_tie_circuit():
    c = _tie_circuit()
    faults = collapse_faults(c)
    report = fires_untestable(c, faults)
    described = {f.describe(c) for f in report.untestable}
    assert any("s-a-0" in d and d.startswith("t") for d in described)
    assert report.stems_analysed >= 1


def test_propagation_blocking():
    """A side input held controlling by the stem blocks propagation."""
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("inv", "not", "a")
    b.gate("blocker", "or", "a", "inv")   # == 1 always (via stem a)
    b.gate("victim", "and", "b", "nb")
    b.gate("nb", "not", "b")              # victim == 0 always (stem b)
    b.gate("sink", "nor", "victim", "blocker")
    b.output("sink")
    c = b.build()
    faults = collapse_faults(c)
    report = fires_untestable(c, faults)
    # The victim cone is dead: excitation of its s-a-0 is blocked
    # (victim == 0 through stem b) -- the collapsed representative of
    # that class may be an equivalent nb/branch fault.
    described = {f.describe(c) for f in report.untestable}
    assert any("s-a-0" in d and ("victim" in d or "nb" in d)
               for d in described)
    # b's own faults cannot propagate through sink (blocker holds the
    # NOR's controlling side input under both values of stem a).
    assert any(d.startswith("b s-a-") for d in described)


def test_fires_observability_cache():
    c = figure1()
    sim = FrameSimulator(c)
    case = _StemCase(c, sim.inject_single(c.nid("I2"), ONE, max_frames=20))
    first = case.observable_from()
    assert case.observable_from() is first  # cached


def test_fires_open_run_makes_no_propagation_claims():
    c = figure1()
    sim = FrameSimulator(c)
    result = sim.run({0: [(c.nid("I2"), ONE)]}, max_frames=2,
                     stop_on_repeat=False)
    case = _StemCase(c, result)
    assert not case.closed
    assert not case.propagation_blocked(c.nid("G9"))
