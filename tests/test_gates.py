"""Three-valued gate evaluation semantics."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.circuit.gates import (
    CONTROLLED_RESPONSE,
    CONTROLLING_VALUE,
    GateType,
    ONE,
    X,
    ZERO,
    eval_gate,
    gate_function_table,
    inv,
    value_name,
)

BINARY_GATES = [GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                GateType.XOR, GateType.XNOR]


def test_inv():
    assert inv(ZERO) == ONE
    assert inv(ONE) == ZERO
    assert inv(X) == X


def test_value_names():
    assert value_name(ZERO) == "0"
    assert value_name(ONE) == "1"
    assert value_name(X) == "X"


@pytest.mark.parametrize("gate_type,table", [
    (GateType.AND, [0, 0, 0, 1]),
    (GateType.NAND, [1, 1, 1, 0]),
    (GateType.OR, [0, 1, 1, 1]),
    (GateType.NOR, [1, 0, 0, 0]),
    (GateType.XOR, [0, 1, 1, 0]),
    (GateType.XNOR, [1, 0, 0, 1]),
])
def test_binary_truth_tables(gate_type, table):
    for minterm in range(4):
        a, b = minterm & 1, (minterm >> 1) & 1
        assert eval_gate(gate_type, [a, b]) == table[minterm]


def test_not_buf():
    assert eval_gate(GateType.NOT, [ZERO]) == ONE
    assert eval_gate(GateType.NOT, [ONE]) == ZERO
    assert eval_gate(GateType.NOT, [X]) == X
    assert eval_gate(GateType.BUF, [ONE]) == ONE
    assert eval_gate(GateType.BUF, [X]) == X


def test_constants():
    assert eval_gate(GateType.TIE0, []) == ZERO
    assert eval_gate(GateType.TIE1, []) == ONE


def test_controlling_values_dominate_x():
    assert eval_gate(GateType.AND, [ZERO, X]) == ZERO
    assert eval_gate(GateType.NAND, [X, ZERO]) == ONE
    assert eval_gate(GateType.OR, [ONE, X]) == ONE
    assert eval_gate(GateType.NOR, [X, ONE]) == ZERO


def test_x_blocks_noncontrolling():
    assert eval_gate(GateType.AND, [ONE, X]) == X
    assert eval_gate(GateType.OR, [ZERO, X]) == X
    assert eval_gate(GateType.XOR, [ONE, X]) == X
    assert eval_gate(GateType.XNOR, [X, ZERO]) == X


def test_wide_gates():
    assert eval_gate(GateType.AND, [1, 1, 1, 1, 1]) == 1
    assert eval_gate(GateType.AND, [1, 1, 0, 1, 1]) == 0
    assert eval_gate(GateType.NOR, [0, 0, 0, 0]) == 1
    assert eval_gate(GateType.XOR, [1, 1, 1]) == 1
    assert eval_gate(GateType.XOR, [1, 1, 1, 1]) == 0


def test_eval_sequential_raises():
    with pytest.raises(ValueError):
        eval_gate(GateType.DFF, [ONE])


def test_controlling_tables_consistent():
    for gate_type, control in CONTROLLING_VALUE.items():
        response = CONTROLLED_RESPONSE[gate_type]
        assert eval_gate(gate_type, [control, X, X]) == response


def test_gate_function_table_matches_eval():
    for gate_type in BINARY_GATES:
        table = gate_function_table(gate_type, 3)
        for minterm in range(8):
            values = [(minterm >> i) & 1 for i in range(3)]
            assert table[minterm] == eval_gate(gate_type, values)


@given(st.sampled_from(BINARY_GATES),
       st.lists(st.sampled_from([ZERO, ONE, X]), min_size=2, max_size=5))
def test_x_is_conservative(gate_type, values):
    """An X output means some completion flips the result (monotonicity).

    Replacing every X with each constant must be consistent with the
    3-valued result: if the 3-valued output is known, every completion
    yields that value.
    """
    out = eval_gate(gate_type, values)
    x_positions = [i for i, v in enumerate(values) if v == X]
    completions = []
    for bits in itertools.product((ZERO, ONE), repeat=len(x_positions)):
        concrete = list(values)
        for pos, bit in zip(x_positions, bits):
            concrete[pos] = bit
        completions.append(eval_gate(gate_type, concrete))
    if out != X:
        assert all(c == out for c in completions)
    else:
        assert len(set(completions)) >= 1  # X is allowed to be imprecise


@given(st.lists(st.sampled_from([ZERO, ONE]), min_size=2, max_size=6))
def test_demorgan(values):
    left = eval_gate(GateType.NAND, values)
    right = eval_gate(GateType.OR, [inv(v) for v in values])
    assert left == right
