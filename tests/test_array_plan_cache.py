"""The injection-plan cache of the array backend (satellite of the
devtools PR): repeated ``detected()`` calls over the same fault list
must hit the cache and keep returning identical results, on both
substrates, with the LRU cap enforced."""

import random

import pytest

from repro.atpg.faults import collapse_faults
from repro.circuit import iscas_like
from repro.sim.array_backend import (
    HAVE_NUMPY,
    PLAN_CACHE_CAP,
    ArrayFaultSimulator,
)

SUBSTRATES = [False] + ([True] if HAVE_NUMPY else [])


def _sequences(circuit, n_seq, frames, seed):
    rng = random.Random(seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    return [[{name: rng.randint(0, 1) for name in inputs}
             for _ in range(frames)] for _ in range(n_seq)]


@pytest.mark.parametrize("use_numpy", SUBSTRATES)
def test_plan_cache_hits_and_identical_results(use_numpy):
    circuit = iscas_like("s953", scale=0.25)
    faults = collapse_faults(circuit)
    sim = ArrayFaultSimulator(circuit, use_numpy=use_numpy)
    sequences = _sequences(circuit, 4, 6, seed=7)

    first = [sim.detected(seq, faults) for seq in sequences]
    misses_after_first = sim.plan_cache_misses
    assert misses_after_first >= 1
    # Same fault list again: all plans come from the cache.
    second = [sim.detected(seq, faults) for seq in sequences]
    assert sim.plan_cache_misses == misses_after_first
    assert sim.plan_cache_hits >= misses_after_first
    assert first == second

    # A fresh simulator (cold cache) agrees bit-for-bit.
    cold = ArrayFaultSimulator(circuit, use_numpy=use_numpy)
    assert [cold.detected(seq, faults) for seq in sequences] == first


@pytest.mark.parametrize("use_numpy", SUBSTRATES)
def test_plan_cache_distinguishes_batches(use_numpy):
    circuit = iscas_like("s953", scale=0.25)
    faults = collapse_faults(circuit)
    sim = ArrayFaultSimulator(circuit, use_numpy=use_numpy)
    seq = _sequences(circuit, 1, 6, seed=11)[0]
    full = sim.detected(seq, faults)
    # A different slice of the same list is a different plan, and its
    # local indices must line up with the full run's verdicts.
    half = faults[: len(faults) // 2]
    part = sim.detected(seq, half)
    assert part == {i for i in full if i < len(half)}
    assert sim.plan_cache_misses >= 2


def test_plan_cache_cap_is_enforced():
    circuit = iscas_like("s386", scale=0.25)
    faults = collapse_faults(circuit)
    sim = ArrayFaultSimulator(circuit, use_numpy=False, width=4)
    seq = _sequences(circuit, 1, 4, seed=3)[0]
    # width=4 slices the list into many batches -> many plans.
    sim.detected(seq, faults)
    assert len(sim._plan_cache) <= PLAN_CACHE_CAP
