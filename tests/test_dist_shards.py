"""Fault-list sharding: the distributed tier's determinism bedrock.

The tentpole contract: for every shard count, sharded speculation plus
replay merge produces :class:`~repro.atpg.driver.ATPGStats` equal to a
serial :func:`~repro.atpg.driver.run_atpg` on every non-volatile field
-- including the generated vectors themselves.  Everything above this
layer (coordinator, workers, the wire) only moves these pieces around.
"""

import dataclasses

import pytest

from repro.atpg.driver import (
    prepare_fault_list,
    run_atpg,
    tie_untestable_indices,
)
from repro.atpg.faults import partition_fault_indices
from repro.core.engine import LearnConfig, learn
from repro.dist.shards import (
    FaultOutcome,
    MissingOutcomeError,
    make_fault_shards,
    merge_shard_outcomes,
    run_atpg_sharded,
    run_fault_shard,
)
from repro.flow.config import ATPG_MODES, ATPGConfig
from repro.flow.session import VOLATILE_KEYS, resolve_circuit


def canon(stats):
    """ATPGStats as a dict with the volatile wall-clock fields dropped."""
    payload = dataclasses.asdict(stats)
    return {key: value for key, value in payload.items()
            if key not in VOLATILE_KEYS}


@pytest.fixture(scope="module")
def circuits():
    out = {}
    for name in ("figure1", "s27"):
        circuit = resolve_circuit(name)
        out[name] = (circuit, learn(circuit, LearnConfig(max_frames=5)))
    return out


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def test_partition_is_exact_and_deterministic():
    for n_faults in (0, 1, 5, 32):
        for n_shards in (1, 2, 3, 7, 40):
            shards = partition_fault_indices(n_faults, n_shards)
            assert len(shards) == n_shards
            flat = sorted(index for shard in shards for index in shard)
            assert flat == list(range(n_faults))  # no loss, no overlap
            assert shards == partition_fault_indices(n_faults, n_shards)


def test_partition_rejects_bad_shard_count():
    with pytest.raises(ValueError, match="n_shards"):
        partition_fault_indices(10, 0)


def test_make_fault_shards_carries_identity():
    shards = make_fault_shards(10, 3)
    assert [shard.shard_index for shard in shards] == [0, 1, 2]
    assert all(shard.n_shards == 3 for shard in shards)
    # Round-robin: shard k owns indices congruent to k.
    assert shards[1].fault_indices == (1, 4, 7)


# ----------------------------------------------------------------------
# the differential contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["figure1", "s27"])
@pytest.mark.parametrize("mode", ATPG_MODES)
def test_sharded_equals_serial_across_shard_counts(circuits, name, mode):
    circuit, learned = circuits[name]
    config = ATPGConfig(mode=mode, backtrack_limit=10, max_frames=3)
    serial = run_atpg(circuit,
                      learned=learned if mode != "none" else None,
                      config=config)
    for n_shards in (1, 2, 3, 7):
        sharded = run_atpg_sharded(circuit, learned=learned,
                                   config=config, n_shards=n_shards,
                                   strict=True)
        assert canon(sharded) == canon(serial)


def test_sharded_equals_serial_with_kept_sequences(circuits):
    # The strongest form: the actual generated+filled vectors match,
    # not just the counters -- fill RNG replay is exact.
    circuit, learned = circuits["s27"]
    config = ATPGConfig(mode="known", backtrack_limit=10, max_frames=3,
                        keep_sequences=True)
    serial = run_atpg(circuit, learned=learned, config=config)
    sharded = run_atpg_sharded(circuit, learned=learned, config=config,
                               n_shards=3, strict=True)
    assert serial.sequences == sharded.sequences
    assert canon(sharded) == canon(serial)


def test_shard_outcomes_skip_tie_untestable_faults(circuits):
    # The serial loop never generates for tie-marked faults; shards
    # must skip the same set or strict merges would demand outcomes
    # the replay never asks for (and waste fleet time computing them).
    circuit, learned = circuits["s27"]
    config = ATPGConfig(mode="known", backtrack_limit=10, max_frames=3)
    faults, classes = prepare_fault_list(circuit)
    tie_marked = tie_untestable_indices(circuit, learned, faults,
                                        classes)
    outcomes = {}
    for shard in make_fault_shards(len(faults), 2):
        outcomes.update(run_fault_shard(circuit, shard, learned=learned,
                                        config=config))
    assert len(outcomes) == len(faults) - len(tie_marked)
    assert not set(outcomes) & tie_marked


def test_merge_strict_raises_on_missing_outcome(circuits):
    circuit, learned = circuits["figure1"]
    config = ATPGConfig(mode="known", backtrack_limit=10, max_frames=3)
    faults, _ = prepare_fault_list(circuit)
    shards = make_fault_shards(len(faults), 2)
    # Only shard 0's outcomes: strict merges must refuse to guess.
    outcomes = run_fault_shard(circuit, shards[0], learned=learned,
                               config=config)
    with pytest.raises(MissingOutcomeError):
        merge_shard_outcomes(circuit, outcomes, learned=learned,
                             config=config, strict=True)


def test_merge_fallback_regenerates_missing_outcomes(circuits):
    # Non-strict merges regenerate locally; per-fault generation is
    # order-independent, so even a half-empty outcome map merges to
    # the serial answer (this is the lost-shard recovery path).
    circuit, learned = circuits["figure1"]
    config = ATPGConfig(mode="known", backtrack_limit=10, max_frames=3)
    faults, _ = prepare_fault_list(circuit)
    shards = make_fault_shards(len(faults), 2)
    outcomes = run_fault_shard(circuit, shards[0], learned=learned,
                               config=config)
    merged = merge_shard_outcomes(circuit, outcomes, learned=learned,
                                  config=config, strict=False)
    serial = run_atpg(circuit, learned=learned, config=config)
    assert canon(merged) == canon(serial)


# ----------------------------------------------------------------------
# wire form
# ----------------------------------------------------------------------
def test_fault_outcome_round_trips_through_dict(circuits):
    circuit, learned = circuits["s27"]
    shard = make_fault_shards(32, 4)[1]
    outcomes = run_fault_shard(
        circuit, shard, learned=learned,
        config=ATPGConfig(mode="known", backtrack_limit=10,
                          max_frames=3))
    assert outcomes  # the shard actually produced work
    for outcome in outcomes.values():
        rebuilt = FaultOutcome.from_dict(outcome.to_dict())
        assert rebuilt == outcome
        result = rebuilt.to_result()
        assert result.status == outcome.status
        assert tuple(result.sequence) == tuple(
            dict(vec) for vec in outcome.sequence)
