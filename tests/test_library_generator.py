"""Built-in circuits, the synthetic generator and retiming."""

import random

import pytest

from repro.circuit import (
    PAPER_PROFILES,
    builtin_names,
    counter,
    equivalence_demo,
    figure1,
    figure2,
    get_builtin,
    industrial_like,
    iscas_like,
    one_hot_ring,
    random_circuit,
    retimable_ffs,
    retime_backward,
    retime_circuit,
    s27,
)
from repro.sim import simulate_sequence


def test_builtin_registry():
    names = builtin_names()
    assert "figure1" in names and "s27" in names
    assert get_builtin("figure1").name == "figure1"
    with pytest.raises(KeyError):
        get_builtin("nonexistent")


def test_figure1_structure():
    c = figure1()
    assert c.num_ffs == 6
    assert c.num_gates == 15
    stems = {c.nodes[s].name for s in c.fanout_stems()}
    # The paper's five stems are present (reconstruction adds G7/G10).
    assert {"I1", "I2", "F1", "F2", "F3"} <= stems


def test_figure2_structure():
    c = figure2()
    assert c.num_ffs == 5
    # G6 justification choices: F1=0 or F2=0; G7: F2=0 or F3=0.
    g6 = c.node("G6")
    assert {c.nodes[f].name for f in g6.fanins} == {"F1", "F2"}
    g7 = c.node("G7")
    assert {c.nodes[f].name for f in g7.fanins} == {"F2", "F3"}


def test_s27_is_the_real_netlist():
    c = s27()
    assert c.stats()["gates"] == 10
    assert c.stats()["ffs"] == 3
    assert c.stats()["inputs"] == 4
    assert c.stats()["outputs"] == 1


def test_counter_counts():
    c = counter(3)
    seq = [{"EN": 1} for _ in range(9)]
    frames = simulate_sequence(c, seq,
                               init_state={"Q0": 0, "Q1": 0, "Q2": 0})
    values = [(f["Q0"], f["Q1"], f["Q2"]) for f in frames]
    assert values[0] == (0, 0, 0)
    assert values[1] == (1, 0, 0)
    assert values[2] == (0, 1, 0)
    assert values[4] == (0, 0, 1)
    assert values[8] == (0, 0, 0)  # wraps


def test_one_hot_ring_circulates():
    c = one_hot_ring(4)
    init = {"R0": 1, "R1": 0, "R2": 0, "R3": 0}
    seq = [{"SEED": 0} for _ in range(5)]
    frames = simulate_sequence(c, seq, init_state=init)
    assert frames[1]["R1"] == 1 and frames[1]["R0"] == 0
    assert frames[4]["R0"] == 1  # full rotation


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------

def test_generator_deterministic():
    a = random_circuit("x", n_inputs=4, n_outputs=3, n_ffs=5, n_gates=40,
                       seed=3)
    b = random_circuit("x", n_inputs=4, n_outputs=3, n_ffs=5, n_gates=40,
                       seed=3)
    assert a.stats() == b.stats()
    assert [n.name for n in a.nodes] == [n.name for n in b.nodes]
    c = random_circuit("x", n_inputs=4, n_outputs=3, n_ffs=5, n_gates=40,
                       seed=4)
    assert [tuple(n.fanins) for n in a.nodes] != \
        [tuple(n.fanins) for n in c.nodes]


def test_generator_respects_counts():
    c = random_circuit("x", n_inputs=6, n_outputs=4, n_ffs=8, n_gates=100,
                       seed=1)
    assert c.stats()["inputs"] == 6
    assert c.stats()["ffs"] == 8
    assert c.stats()["gates"] == 100
    assert c.stats()["outputs"] == 4


def test_generator_no_duplicate_fanins():
    c = random_circuit("x", n_inputs=5, n_outputs=3, n_ffs=6, n_gates=80,
                       seed=9)
    for node in c.nodes:
        if node.is_combinational:
            assert len(set(node.fanins)) == len(node.fanins), node.name


def test_iscas_like_profiles():
    c = iscas_like("s382")
    assert c.num_ffs == PAPER_PROFILES["s382"][2]
    assert c.num_gates == PAPER_PROFILES["s382"][3]
    small = iscas_like("s1423", scale=0.25)
    assert small.num_gates == round(657 * 0.25)
    with pytest.raises(KeyError):
        iscas_like("s99999")


def test_industrial_features():
    c = industrial_like(n_domains=3, n_ffs=40, n_gates=200)
    clocks = {c.nodes[f].clock for f in c.ffs}
    assert len(clocks) >= 3
    assert any(c.nodes[f].set_kind == "unconstrained" and
               c.nodes[f].reset_kind == "unconstrained" for f in c.ffs)
    assert any(c.nodes[f].num_ports > 1 for f in c.ffs)
    assert any(c.nodes[f].gate_type.value == "latch" for f in c.ffs)


# ---------------------------------------------------------------------------
# retiming
# ---------------------------------------------------------------------------

def test_retime_backward_adds_registers():
    c = s27()
    candidates = retimable_ffs(c)
    assert candidates
    rt = retime_backward(c, candidates[0])
    assert rt.num_ffs > c.num_ffs


def test_retime_preserves_behaviour():
    """Backward retiming must not change any surviving signal's trace."""
    c = s27()
    rt = retime_circuit(c, moves=2, name="s27rt")
    rng = random.Random(11)
    inputs = [c.nodes[i].name for i in c.inputs]
    seq = [{n: rng.randint(0, 1) for n in inputs} for _ in range(10)]
    orig = simulate_sequence(c, seq)
    new = simulate_sequence(rt, seq)
    shared = set(orig[0]) & set(new[0])
    # From frame 1 on (after X initialisation shakes out of the moved
    # registers) every shared known signal must agree.
    for t in range(1, len(seq)):
        for name in shared:
            a, b = orig[t][name], new[t][name]
            if a != 2 and b != 2:
                assert a == b, (t, name)


def test_retime_errors():
    c = s27()
    with pytest.raises(ValueError):
        retime_backward(c, "G14")  # not a FF
    b_names = retimable_ffs(c)
    assert all(isinstance(n, str) for n in b_names)


def test_retime_runs_out_gracefully():
    c = one_hot_ring(3)
    rt = retime_circuit(c, moves=50, name="ring_rt")
    assert rt.num_ffs >= c.num_ffs
