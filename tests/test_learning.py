"""The sequential learning engine against the paper's worked examples."""

import pytest

from repro.circuit import (
    counter,
    equivalence_demo,
    figure1,
    figure2,
    industrial_like,
    one_hot_ring,
    s27,
)
from repro.circuit.gates import ONE, ZERO
from repro.core import (
    LearnConfig,
    SequentialLearner,
    TieSet,
    build_injections,
    extract_cross_frame_relations,
    learn,
    run_single_node,
    ties_from_single_node,
)
from repro.sim import FrameSimulator


@pytest.fixture(scope="module")
def fig1():
    return learn(figure1())


def test_paper_single_node_relations(fig1):
    """Table 2, single-node column: F6=1 implies F1..F4 constraints."""
    db = fig1.relations
    assert db.has("F6", 1, "F4", 0)
    assert db.has("F6", 1, "F3", 1)
    assert db.has("F6", 1, "F2", 1)
    assert db.has("F6", 1, "F1", 1)


def test_paper_multi_node_relations(fig1):
    """Table 2, multiple-node column (F3=0 row of the walkthrough)."""
    db = fig1.relations
    assert db.has("F3", 0, "F2", 0)
    assert db.has("F3", 0, "F4", 1)
    assert db.has("F3", 0, "F5", 0)
    assert db.has("F3", 0, "F6", 0)
    # The tie/equivalence-assisted relation from the walkthrough.
    assert db.has("F3", 0, "F1", 0)
    assert db.has("F4", 1, "F2", 0)
    assert db.has("F4", 1, "F5", 0)
    assert db.has("F4", 1, "F3", 0)


def test_paper_ties(fig1):
    """G3 combinational, G8 by propagation, G15 sequential (section 3.2)."""
    names = fig1.ties.names()
    assert names.get("G3") == 0
    assert names.get("G8") == 0
    assert names.get("G15") == 0
    by_name = {fig1.circuit.nodes[t.nid].name: t for t in fig1.ties.all()}
    assert not by_name["G3"].sequential
    assert not by_name["G8"].sequential
    assert by_name["G15"].sequential
    assert by_name["G15"].phase == "multi"
    # F5 must NOT be tied (it is reachable through F6 and I4).
    assert "F5" not in names


def test_monte_carlo_validation(fig1):
    assert fig1.validate(n_sequences=60, seq_len=12) == []


def test_exact_state_space_validation(fig1):
    from repro.analysis import analyze_state_space, check_relations_exact

    space = analyze_state_space(figure1())
    assert check_relations_exact(figure1(), fig1.relations, space) == []


def test_figure2_relation_beyond_backward_forward():
    """G9=0 -> F2=0: the relation backward/forward learning cannot get."""
    result = learn(figure2())
    assert result.relations.has("G9", 0, "F2", 0)
    assert result.validate(40, 10) == []


def test_equivalence_demo_needs_equivalence():
    circuit = equivalence_demo()
    with_eq = learn(circuit)
    without_eq = learn(circuit, LearnConfig(use_equivalence=False))
    assert len(with_eq.equivalences) >= 2
    # F4=0 -> F2=1 (via GAND == GEQ coupling) needs the equivalence.
    assert with_eq.relations.has("F4", 0, "F2", 1)
    assert not without_eq.relations.has("F4", 0, "F2", 1)
    assert with_eq.validate(40, 10) == []


def test_counter_learns_nothing():
    """A dense-encoding circuit: no invalid states, no ties."""
    result = learn(counter(3))
    assert len(result.relations.invalid_state_relations()) == 0
    assert len(result.ties) == 0


def test_ring_learns_gate_ff_relations():
    result = learn(one_hot_ring(4))
    assert result.counts(sequential_only=True)["gate_ff"] > 0
    assert result.validate(40, 12) == []


def test_s27_learning_valid():
    result = learn(s27())
    assert result.validate(60, 12) == []
    from repro.analysis import analyze_state_space, check_relations_exact

    assert check_relations_exact(s27(), result.relations) == []


def test_multi_node_disabled():
    result = learn(figure1(), LearnConfig(use_multi_node=False))
    assert not result.relations.has("F3", 0, "F4", 1)
    assert result.ties.names().get("G15") is None


def test_max_frames_config():
    shallow = learn(figure1(), LearnConfig(max_frames=1))
    deep = learn(figure1(), LearnConfig(max_frames=50))
    assert len(deep.relations) >= len(shallow.relations)


def test_multi_node_target_cap():
    capped = learn(figure1(), LearnConfig(multi_node_max_targets=3))
    assert capped.multi_stats.targets_run <= 3
    assert capped.multi_stats.targets_skipped > 0


def test_store_gate_gate_optional():
    plain = learn(figure1())
    wide = learn(figure1(), LearnConfig(store_gate_gate=True))
    assert plain.counts()["gate_gate"] == 0
    assert wide.relations.counts()["gate_gate"] > 0


def test_summary_shape(fig1):
    summary = fig1.summary()
    assert summary["circuit"] == "figure1"
    assert summary["ffs"] == 6
    assert summary["ties"] == 3
    assert summary["cpu_s"] >= 0
    assert set(fig1.phase_times) == {
        "single_node", "ties", "equivalence", "multi_node"}


def test_cross_frame_relations_exposed():
    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=10)
    cross = extract_cross_frame_relations(data, circuit)
    # The paper's example: I2=1 at T=i -> F1=1 at T=i+1, contrapositive
    # G1-style; check the raw tuple exists.
    i2, f1 = circuit.nid("I2"), circuit.nid("F1")
    assert (i2, 1, f1, 1, 1) in cross


def test_build_injections_contradiction_marks_tie():
    justs = [(5, 0, 0), (5, 1, 0)]  # both stem values produce the target
    injections, t_max = build_injections(justs, (9, 1), max_frames=50)
    assert t_max == -1


def test_build_injections_window_trim():
    justs = [(5, 0, 60), (5, 0, 2)]
    built = build_injections(justs, (9, 1), max_frames=50)
    assert built is not None
    injections, t_max = built
    assert t_max == 2
    built_none = build_injections([(5, 0, 60)], (9, 1), max_frames=50)
    assert built_none is None


def test_tieset_keeps_strongest_evidence():
    circuit = figure1()
    ties = TieSet(circuit)
    nid = circuit.nid("G3")
    assert ties.add(nid, 0, sequential=True, phase="multi", warmup=4)
    assert not ties.add(nid, 0, sequential=False, phase="single", warmup=0)
    info = ties.all()[0]
    assert info.warmup == 0 and not info.sequential


# ---------------------------------------------------------------------------
# real-circuit features (section 3.3)
# ---------------------------------------------------------------------------

def test_industrial_circuit_learns_and_validates():
    circuit = industrial_like(n_ffs=24, n_gates=140, seed=3)
    result = learn(circuit)
    assert result.validate(30, 10) == []
    # Relations never pair FFs from different clock-domain classes.
    for relation in result.relations:
        a, b = circuit.nodes[relation.a], circuit.nodes[relation.b]
        if a.is_sequential and b.is_sequential:
            assert a.domain_key() == b.domain_key()


def test_multiple_domains_make_multiple_passes():
    from repro.core import learning_passes

    circuit = industrial_like(n_ffs=24, n_gates=140, seed=3)
    passes = learning_passes(circuit)
    assert len(passes) >= 3
    single = learning_passes(figure1())
    assert len(single) == 1
