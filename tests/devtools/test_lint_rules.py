"""Per-rule positive/negative fixture tests for repro.devtools.

Every rule gets the same treatment: the *_bad fixture must produce the
rule's diagnostics (at the expected anchors), the *_good fixture must
produce none.  Suppression semantics (reasoned honored, reasonless
flagged as R000, def-line span form) and the repo-clean invariant are
covered at the end.
"""

import os

import pytest

from repro.devtools.core import run_lint

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..",
                        "src", "repro")


def lint(*names):
    paths = [os.path.join(FIXTURES, name) for name in names]
    return run_lint(paths, root=FIXTURES)


def codes(diagnostics):
    return sorted({d.code for d in diagnostics})


# ----------------------------------------------------------------------
# R001 wall clock / global random in canonical paths
# ----------------------------------------------------------------------
def test_r001_bad_flags_clock_and_random():
    diags = [d for d in lint("r001_bad.py") if d.code == "R001"]
    messages = "\n".join(d.message for d in diags)
    assert "time.time" in messages
    assert "datetime.datetime.now" in messages
    assert "unseeded global random" in messages
    # Reached through the helper, attributed to the root.
    assert "canonical_dict" in messages
    assert all(d.severity == "error" for d in diags)


def test_r001_good_is_clean():
    assert lint("r001_good.py") == []


# ----------------------------------------------------------------------
# R002 hash-ordered iteration in merge/serialization modules
# ----------------------------------------------------------------------
def test_r002_bad_flags_set_and_values_iteration():
    diags = [d for d in lint("r002_merge_bad.py") if d.code == "R002"]
    assert len(diags) >= 4  # set-op, set local, .values(), comprehension
    messages = "\n".join(d.message for d in diags)
    assert "set" in messages
    assert ".values()" in messages


def test_r002_good_is_clean():
    assert lint("r002_merge_good.py") == []


def test_r002_out_of_scope_module_is_ignored():
    # Same bad code under a basename outside the merge/serialize tier.
    import shutil
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        shutil.copy(os.path.join(FIXTURES, "r002_merge_bad.py"),
                    os.path.join(tmp, "math_helpers.py"))
        assert run_lint([tmp], root=tmp) == []


# ----------------------------------------------------------------------
# R003 lock discipline
# ----------------------------------------------------------------------
def test_r003_bad_writes_are_errors_reads_are_warnings():
    diags = [d for d in lint("r003_bad.py") if d.code == "R003"]
    writes = [d for d in diags if d.severity == "error"]
    reads = [d for d in diags if d.severity == "warning"]
    # unlocked_write: attribute +=, subscript store, mutator call.
    assert len(writes) >= 4  # 3 in unlocked_write + 1 in nested def
    assert any("unlocked_read" in d.message for d in reads)
    # The nested thread body is scanned as unlocked even though a
    # `with self._lock` appears lexically earlier inside it.
    assert any("nested_thread" in d.message for d in writes)


def test_r003_good_exemptions_hold():
    # Locked methods, a ctor-only helper and an effectively-locked
    # helper: no findings at all.
    assert lint("r003_good.py") == []


# ----------------------------------------------------------------------
# R004 schema drift
# ----------------------------------------------------------------------
def test_r004_drift_without_bump_is_flagged():
    diags = [d for d in lint("r004_bad") if d.code == "R004"]
    assert len(diags) == 1
    assert "without a SCHEMA_VERSION bump" in diags[0].message


def test_r004_matching_manifest_is_clean():
    assert lint("r004_good") == []


def test_r004_missing_manifest_is_flagged(tmp_path):
    source = os.path.join(FIXTURES, "r004_good", "wire.py")
    with open(source) as handle:
        (tmp_path / "wire.py").write_text(handle.read())
    diags = run_lint([str(tmp_path)], root=str(tmp_path))
    assert [d.code for d in diags] == ["R004"]
    assert "no committed" in diags[0].message


# ----------------------------------------------------------------------
# R005 picklability of task units
# ----------------------------------------------------------------------
def test_r005_bad_flags_callable_lambda_and_local_class():
    diags = [d for d in lint("r005_bad.py") if d.code == "R005"]
    messages = "\n".join(d.message for d in diags)
    assert "Callable" in messages
    assert "lambda" in messages
    assert "not defined at module top level" in messages


def test_r005_good_is_clean():
    assert lint("r005_good.py") == []


# ----------------------------------------------------------------------
# R006 error taxonomy
# ----------------------------------------------------------------------
def test_r006_bad_flags_bare_broad_and_loop_pass():
    diags = [d for d in lint("r006_worker_bad.py") if d.code == "R006"]
    messages = "\n".join(d.message for d in diags)
    assert "bare `except:`" in messages
    assert "broad exception silently passed" in messages
    assert "service loop" in messages
    assert len(diags) == 3


def test_r006_good_counted_degrade_and_narrow_pass_are_clean():
    assert lint("r006_worker_good.py") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_suppressions_reasoned_honored_reasonless_flagged():
    diags = lint("merge_suppressed.py")
    # merge_reasoned and merge_span are waived; merge_reasonless keeps
    # its R002 finding AND gains the R000 meta finding.
    assert codes(diags) == ["R000", "R002"]
    r000 = [d for d in diags if d.code == "R000"]
    r002 = [d for d in diags if d.code == "R002"]
    assert len(r000) == 1 and "no reason" in r000[0].message
    assert len(r002) == 1
    assert 12 <= r002[0].line <= 16  # inside merge_reasonless


# ----------------------------------------------------------------------
# the repo itself
# ----------------------------------------------------------------------
def test_repo_source_tree_is_lint_clean():
    diags = run_lint([REPO_SRC],
                     root=os.path.join(REPO_SRC, "..", ".."))
    assert diags == [], "\n".join(d.format() for d in diags)
