"""R004 negative fixture: fields and version match the manifest."""

from dataclasses import dataclass
from typing import ClassVar, Optional

SCHEMA_VERSION = 2


@dataclass
class PingRequest:
    KIND: ClassVar[str] = "ping"
    spec: str
    config: Optional[dict]
    retries: int
