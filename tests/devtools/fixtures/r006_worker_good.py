"""R006 negative fixture: counted degrade paths and a narrow silent
pass outside any loop (signal-registration idiom)."""

import signal

errors = {"io": 0}


def serve(queue, announce):
    while True:
        try:
            queue.get()
        except OSError as exc:
            errors["io"] = errors["io"] + 1  # counted degrade path
            announce(f"degraded: {exc}")


def install_handlers(handler):
    try:
        signal.signal(signal.SIGTERM, handler)
    except ValueError:
        pass  # narrow, outside a loop: e.g. not the main thread
