"""R001 positive fixture: wall clock + global random reachable from a
canonical root (directly and through a helper)."""

import random
import time
from datetime import datetime


def stamp():
    return time.time()


def jitter():
    return random.random()


def canonical_dict():
    return {
        "t": stamp(),
        "now": datetime.now().isoformat(),
        "r": jitter(),
    }
