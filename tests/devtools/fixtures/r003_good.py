"""R003 negative fixture: every access locked, plus the two structural
exemptions (ctor-only helper, effectively-locked helper)."""

import threading


class Disciplined:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.table = {}
        self._seed()  # ctor-only helper may touch state lock-free

    def _seed(self):
        self.table["init"] = 0

    def record(self, key):
        with self._lock:
            self.hits += 1
            self._store(key)

    def _store(self, key):
        # Only called under the lock (from record) -> effectively
        # locked, no lexical with needed here.
        self.table[key] = self.hits

    def snapshot(self):
        with self._lock:
            return dict(self.table), self.hits
