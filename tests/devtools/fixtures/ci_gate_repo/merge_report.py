"""The seeded violation for the CI-gate test: a set iteration in a
merge module.  `repro devtool lint --strict` over this directory must
exit nonzero, proving the gate actually gates."""


def merge_report(shards):
    report = {}
    for shard in {s.name for s in shards}:  # hash order
        report[shard] = True
    return report
