"""A clean neighbor, so the gate test shows the failure is attributed
to the seeded file and not to the directory walk itself."""


def double(values):
    return [v * 2 for v in values]
