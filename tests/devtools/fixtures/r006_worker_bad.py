"""R006 positive fixture (basename says 'worker'): bare except and a
silent broad/narrow pass inside a service loop."""


def serve(queue):
    while True:
        try:
            queue.get()
        except Exception:
            pass  # broad + silent


def drain(queue):
    for item in queue:
        try:
            item.close()
        except ValueError:
            pass  # narrow but silent *inside a loop*


def once():
    try:
        return 1
    except:  # bare except
        pass
