"""R005 positive fixture: unpicklable annotations, lambda default,
and a unit class defined inside a function."""

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class LeakyTask:
    name: str
    callback: Callable[[int], int]  # callables do not pickle
    fallback: object = field(default=lambda: 0)  # lambda default


def make_unit():
    @dataclass
    class LocalUnit:  # pickle cannot resolve a local class
        index: int

    return LocalUnit
