"""R002 negative fixture: every iteration is sorted or list-ordered."""


def merge_outcomes(a, b):
    merged = []
    for key in sorted(set(a) | set(b)):
        merged.append(key)
    for key in sorted(a):
        merged.append(a[key])
    ordered = [3, 1, 2]
    for item in ordered:
        merged.append(item)
    return merged
