"""Suppression fixture: one reasoned waiver (honored), one reasonless
waiver (ignored AND flagged as R000), one def-line span waiver."""


def merge_reasoned(a):
    out = []
    for key in set(a):  # repro-lint: disable=R002 (singleton set, order provably irrelevant)
        out.append(key)
    return out


def merge_reasonless(a):
    out = []
    for key in set(a):  # repro-lint: disable=R002
        out.append(key)
    return out


# repro-lint: disable=R002 (fixture: whole-function waiver form)
def merge_span(a, b):
    return [k for k in set(a) | set(b)]
