"""R003 positive fixture: writes (error) and reads (warning) of
lock-guarded state outside the lock, plus a nested-def thread body."""

import threading


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.table = {}
        self.items = []

    def unlocked_write(self, key):
        self.hits += 1  # write outside the lock
        self.table[key] = 1  # subscript store outside the lock
        self.items.append(key)  # mutator call outside the lock

    def unlocked_read(self):
        return self.hits  # read outside the lock

    def nested_thread(self):
        def body():
            with self._lock:
                pass
            self.hits += 1  # nested def: runs unlocked on a thread

        return body
