"""R005 negative fixture: a plain-data unit, and a suffix-free class
that may hold whatever it wants."""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class CleanTask:
    index: int
    spec: str
    modes: Tuple[str, ...]
    extras: Optional[Dict[str, int]] = None


class Dispatcher:  # not *Task/*Unit/*Shard/*Outcome: out of scope
    handler = staticmethod(lambda x: x)
