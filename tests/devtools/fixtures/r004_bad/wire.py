"""R004 positive fixture: the manifest pins different fields at the
same SCHEMA_VERSION (drift without a bump)."""

from dataclasses import dataclass
from typing import ClassVar, Optional

SCHEMA_VERSION = 1


@dataclass
class PingRequest:
    KIND: ClassVar[str] = "ping"  # ClassVar: not a wire field
    spec: str
    config: Optional[dict]
    retries: int  # new field the manifest has never seen
