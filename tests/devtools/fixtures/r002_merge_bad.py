"""R002 positive fixture (basename says 'merge', so it is in scope):
set iteration, set-typed locals, .values() and a set comprehension."""


def merge_outcomes(a, b):
    merged = []
    for key in set(a) | set(b):  # hash order
        merged.append(key)
    pending = {1, 2, 3}
    for item in pending:  # local assigned from a set literal
        merged.append(item)
    for value in a.values():  # key order hidden
        merged.append(value)
    doubled = [x for x in {v * 2 for v in b}]  # set comprehension source
    return merged + doubled
