"""R001 negative fixture: monotonic timers and a seeded PRNG are both
legal in canonical paths; wall clock outside the call graph is too."""

import random
import time


def elapsed():
    # perf_counter/monotonic feed volatile fields the canonicalizer
    # zeroes -- explicitly allowed.
    t0 = time.perf_counter()
    return time.perf_counter() - t0


def shuffled(items):
    rng = random.Random(42)  # seeded instance, not the global PRNG
    out = list(items)
    rng.shuffle(out)
    return out


def canonical_dict():
    return {"elapsed": elapsed(), "order": shuffled([3, 1, 2])}


def unrelated_logger():
    # Wall clock is fine outside the canonical call graph.
    return time.time()
