"""CLI-level tests for ``repro devtool`` -- the exact invocations CI
runs, via subprocess, so exit codes and output shape are pinned."""

import json
import os
import subprocess
import sys

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         "..", ".."))
REPO_SRC = os.path.join(REPO_ROOT, "src", "repro")


def run_devtool(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "devtool", *args],
        capture_output=True, text=True, env=env, timeout=120)


def test_ci_gate_fails_on_seeded_violation():
    proc = run_devtool("lint", "--strict",
                       os.path.join(FIXTURES, "ci_gate_repo"))
    assert proc.returncode == 1
    assert "merge_report.py" in proc.stdout
    assert "R002" in proc.stdout
    # The clean neighbor is not blamed.
    assert "clean_util.py" not in proc.stdout


def test_repo_package_passes_strict():
    proc = run_devtool("lint", "--strict", REPO_SRC)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s), 0 warning(s)" in proc.stdout


def test_json_output_is_machine_readable():
    proc = run_devtool("lint", "--json",
                       os.path.join(FIXTURES, "ci_gate_repo"))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert isinstance(payload, list) and payload
    finding = payload[0]
    assert finding["code"] == "R002"
    assert finding["path"].endswith("merge_report.py")
    assert finding["severity"] == "error"
    assert finding["line"] >= 1 and finding["hint"]


def test_manifest_check_matches_committed_file(tmp_path):
    # Regenerating the manifest into a scratch copy must reproduce the
    # committed bytes -- i.e. the committed manifest is current.
    import shutil
    api_dir = os.path.join(REPO_SRC, "api")
    scratch = tmp_path / "api"
    scratch.mkdir()
    shutil.copy(os.path.join(api_dir, "requests.py"),
                scratch / "requests.py")
    proc = run_devtool("manifest", "--write", str(scratch))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    regenerated = (scratch / "schema_manifest.json").read_text()
    with open(os.path.join(api_dir, "schema_manifest.json")) as handle:
        committed = handle.read()
    assert regenerated == committed
