"""Edge cases both fault-simulation backends must handle identically.

These paths used to rely on untested fall-through behaviour (an empty
fault list still simulated the good machine; width 0 died inside
``range``); now they are explicit: empty inputs give well-formed empty
results and invalid widths fail loudly at construction.
"""

import random
from functools import partial

import pytest

from repro.atpg.faults import Fault, collapse_faults
from repro.circuit import random_circuit, s27
from repro.circuit.gates import ZERO
from repro.sim import (
    ArrayFaultSimulator,
    CompiledFaultSimulator,
    FaultSimulator,
    fault_coverage,
    make_fault_simulator,
)

#: Every fault-simulator construction path: the two scalar engines plus
#: both array substrates (the numpy entry silently runs on bigints too
#: when numpy is absent -- that is the fallback contract).
BACKENDS = (
    FaultSimulator,
    CompiledFaultSimulator,
    ArrayFaultSimulator,
    partial(ArrayFaultSimulator, use_numpy=False),
)
BACKEND_IDS = ("reference", "compiled", "array", "array-bigint")


def _circuit():
    return random_circuit("edge", n_inputs=3, n_outputs=2, n_ffs=3,
                          n_gates=14, seed=7)


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
def test_empty_fault_list(sim_cls):
    circuit = _circuit()
    seq = [{"I0": 1, "I1": 0, "I2": 1}] * 3
    assert sim_cls(circuit).detected(seq, []) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
def test_empty_sequence(sim_cls):
    circuit = _circuit()
    faults = collapse_faults(circuit)
    assert sim_cls(circuit).detected([], faults) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
def test_all_x_sequence_detects_nothing(sim_cls):
    """Unknown stimuli cannot satisfy the hard detection criterion."""
    circuit = _circuit()
    faults = collapse_faults(circuit)
    assert sim_cls(circuit).detected([{}, {}, {}], faults) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
def test_width_one_word(sim_cls):
    """One machine per word: every batch holds a single fault."""
    circuit = s27()
    faults = collapse_faults(circuit)
    seq = [{circuit.nodes[i].name: 1 for i in circuit.inputs}
           for _ in range(6)]
    wide = sim_cls(circuit, width=64).detected(seq, faults)
    narrow = sim_cls(circuit, width=1).detected(seq, faults)
    assert narrow == wide


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
@pytest.mark.parametrize("width", (0, -3))
def test_invalid_width_rejected(sim_cls, width):
    with pytest.raises(ValueError, match="width"):
        sim_cls(_circuit(), width=width)


def test_make_fault_simulator_backends():
    circuit = _circuit()
    assert isinstance(make_fault_simulator(circuit, backend="reference"),
                      FaultSimulator)
    assert isinstance(make_fault_simulator(circuit, backend="compiled"),
                      CompiledFaultSimulator)
    assert isinstance(make_fault_simulator(circuit, backend="array"),
                      ArrayFaultSimulator)
    # 'numpy' is not a backend: the array backend picks its substrate
    # itself (numpy when importable, bigint otherwise).
    with pytest.raises(ValueError, match="backend"):
        make_fault_simulator(circuit, backend="numpy")


@pytest.mark.parametrize("sim_cls", BACKENDS, ids=BACKEND_IDS)
def test_partial_final_batch_has_no_ghost_machines(sim_cls):
    """width*k + 1 faults at width=128: the final batch holds one live
    machine and an all-zero tail of word bits.  The ``full`` mask must
    be the live batch width, so ghost columns can never contribute to
    detection (a ghost "detection" would index past the fault list or
    resurrect a dropped fault)."""
    circuit = random_circuit("ghosts", n_inputs=6, n_outputs=4, n_ffs=5,
                             n_gates=80, seed=11)
    faults = collapse_faults(circuit)
    width = 128
    assert len(faults) > width, "need width*k + 1 faults with k >= 1"
    k = (len(faults) - 1) // width
    faults = faults[:width * k + 1]
    rng = random.Random(2024)
    names = [circuit.nodes[i].name for i in circuit.inputs]
    seq = [{name: rng.randint(0, 1) for name in names}
           for _ in range(12)]
    oracle = FaultSimulator(circuit, width=8).detected(seq, faults)
    got = sim_cls(circuit, width=width).detected(seq, faults)
    assert got == oracle
    assert all(0 <= index < len(faults) for index in got)


def test_fault_coverage_empty_inputs():
    circuit = _circuit()
    assert fault_coverage(circuit, [], []) == 1.0
    assert fault_coverage(circuit, [[{"I0": 1}]], []) == 1.0
    faults = [Fault(circuit.nid("G0"), None, ZERO)]
    assert fault_coverage(circuit, [], faults) == 0.0
    assert fault_coverage(circuit, [[]], faults) == 0.0
