"""Edge cases both fault-simulation backends must handle identically.

These paths used to rely on untested fall-through behaviour (an empty
fault list still simulated the good machine; width 0 died inside
``range``); now they are explicit: empty inputs give well-formed empty
results and invalid widths fail loudly at construction.
"""

import pytest

from repro.atpg.faults import Fault, collapse_faults
from repro.circuit import random_circuit, s27
from repro.circuit.gates import ZERO
from repro.sim import (
    CompiledFaultSimulator,
    FaultSimulator,
    fault_coverage,
    make_fault_simulator,
)

BACKENDS = (FaultSimulator, CompiledFaultSimulator)


def _circuit():
    return random_circuit("edge", n_inputs=3, n_outputs=2, n_ffs=3,
                          n_gates=14, seed=7)


@pytest.mark.parametrize("sim_cls", BACKENDS)
def test_empty_fault_list(sim_cls):
    circuit = _circuit()
    seq = [{"I0": 1, "I1": 0, "I2": 1}] * 3
    assert sim_cls(circuit).detected(seq, []) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS)
def test_empty_sequence(sim_cls):
    circuit = _circuit()
    faults = collapse_faults(circuit)
    assert sim_cls(circuit).detected([], faults) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS)
def test_all_x_sequence_detects_nothing(sim_cls):
    """Unknown stimuli cannot satisfy the hard detection criterion."""
    circuit = _circuit()
    faults = collapse_faults(circuit)
    assert sim_cls(circuit).detected([{}, {}, {}], faults) == set()


@pytest.mark.parametrize("sim_cls", BACKENDS)
def test_width_one_word(sim_cls):
    """One machine per word: every batch holds a single fault."""
    circuit = s27()
    faults = collapse_faults(circuit)
    seq = [{circuit.nodes[i].name: 1 for i in circuit.inputs}
           for _ in range(6)]
    wide = sim_cls(circuit, width=64).detected(seq, faults)
    narrow = sim_cls(circuit, width=1).detected(seq, faults)
    assert narrow == wide


@pytest.mark.parametrize("sim_cls", BACKENDS)
@pytest.mark.parametrize("width", (0, -3))
def test_invalid_width_rejected(sim_cls, width):
    with pytest.raises(ValueError, match="width"):
        sim_cls(_circuit(), width=width)


def test_make_fault_simulator_backends():
    circuit = _circuit()
    assert isinstance(make_fault_simulator(circuit, backend="reference"),
                      FaultSimulator)
    assert isinstance(make_fault_simulator(circuit, backend="compiled"),
                      CompiledFaultSimulator)
    with pytest.raises(ValueError, match="backend"):
        make_fault_simulator(circuit, backend="numpy")


def test_fault_coverage_empty_inputs():
    circuit = _circuit()
    assert fault_coverage(circuit, [], []) == 1.0
    assert fault_coverage(circuit, [[{"I0": 1}]], []) == 1.0
    faults = [Fault(circuit.nid("G0"), None, ZERO)]
    assert fault_coverage(circuit, [], faults) == 0.0
    assert fault_coverage(circuit, [[]], faults) == 0.0
