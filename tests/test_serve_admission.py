"""AdmissionController: slots, bounded queues, weighted scheduling.

Pure unit tests against the controller -- no HTTP.  The daemon-level
behaviors (429 envelopes, Retry-After headers) ride on these
primitives and are covered in ``test_serve_stream.py``.
"""

import threading
import time

import pytest

from repro.api import OverloadFailure
from repro.serve import AdmissionController, CancelToken
from repro.serve.admission import INTERACTIVE_BURST
from repro.serve.cancel import REASON_EXPLICIT


def drain(threads, timeout=30):
    for thread in threads:
        thread.join(timeout=timeout)
    assert not any(thread.is_alive() for thread in threads)


def wait_until(predicate, timeout=10):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition never became true")


def test_fast_path_acquire_release():
    admission = AdmissionController(max_active=2, queue_depth=4)
    admission.acquire("interactive")
    admission.acquire("batch")
    assert admission.depths() == {"active": 2, "interactive": 0,
                                  "batch": 0}
    admission.release()
    admission.release()
    assert admission.depths()["active"] == 0


def test_slot_context_manager_releases_on_error():
    admission = AdmissionController(max_active=1, queue_depth=0)
    with pytest.raises(RuntimeError):
        with admission.slot():
            assert admission.depths()["active"] == 1
            raise RuntimeError("boom")
    assert admission.depths()["active"] == 0


def test_full_queue_rejected_with_retry_after():
    admission = AdmissionController(max_active=1, queue_depth=0)
    admission.acquire("interactive")
    with pytest.raises(OverloadFailure) as info:
        admission.acquire("interactive")
    error = info.value
    assert error.http_status == 429
    assert error.retry_after_s >= 1
    assert error.envelope()["retry_after_s"] == error.retry_after_s
    admission.release()
    # The slot freed up; admission works again.
    admission.acquire("interactive")
    admission.release()


def test_retry_after_scales_with_backlog():
    admission = AdmissionController(max_active=1, queue_depth=2)
    admission.acquire("interactive")

    def queued_waiter():
        with admission.slot("batch"):
            pass

    threads = [threading.Thread(target=queued_waiter)
               for _ in range(2)]
    for thread in threads:
        thread.start()
    wait_until(lambda: admission.depths()["batch"] == 2)
    with pytest.raises(OverloadFailure) as info:
        admission.acquire("batch")
    # active(1) + waiting(2) over 1 slot -> told to come back in 3s.
    assert info.value.retry_after_s == 3
    admission.release()
    drain(threads)


def test_interactive_burst_weighting_bounds_batch_wait():
    """With both classes queued, grants go I,I,I,I,B,I,I,B --
    interactive wins bursts, batch is never starved."""
    admission = AdmissionController(max_active=1, queue_depth=16)
    admission.acquire("interactive")  # hold the only slot

    order = []
    order_lock = threading.Lock()

    def worker(priority):
        with admission.slot(priority):
            with order_lock:
                order.append(priority)

    batch = [threading.Thread(target=worker, args=("batch",))
             for _ in range(2)]
    for thread in batch:
        thread.start()
    wait_until(lambda: admission.depths()["batch"] == 2)
    interactive = [threading.Thread(target=worker, args=("interactive",))
                   for _ in range(6)]
    for thread in interactive:
        thread.start()
    wait_until(lambda: admission.depths()["interactive"] == 6)

    admission.release()  # grants cascade one release at a time
    drain(batch + interactive)

    assert len(order) == 8
    assert order.count("batch") == 2
    # First batch grant lands right after one interactive burst.
    assert order.index("batch") == INTERACTIVE_BURST
    assert admission.depths() == {"active": 0, "interactive": 0,
                                  "batch": 0}


def test_cancelled_waiter_leaves_no_ghost():
    admission = AdmissionController(max_active=1, queue_depth=4)
    admission.acquire("interactive")

    token = CancelToken()
    raised = []

    def waiter():
        try:
            admission.acquire("interactive", cancel=token)
        except Exception as exc:
            raised.append(exc)

    thread = threading.Thread(target=waiter)
    thread.start()
    wait_until(lambda: admission.depths()["interactive"] == 1)
    token.cancel(REASON_EXPLICIT)
    drain([thread])
    assert raised and "cancelled" in str(raised[0])
    # The abandoned waiter is invisible and cannot absorb the slot.
    assert admission.depths()["interactive"] == 0
    admission.release()
    admission.acquire("interactive")  # fast path works: no ghost holds it
    admission.release()


def test_grant_raced_by_cancellation_hands_slot_onward():
    """A waiter cancelled in the same instant it is granted must give
    the slot to the next waiter, not leak it."""
    admission = AdmissionController(max_active=1, queue_depth=4)
    admission.acquire("interactive")

    token = CancelToken(deadline_s=0.15)
    outcomes = []

    def doomed():
        try:
            admission.acquire("interactive", cancel=token)
            outcomes.append("granted")
            admission.release()
        except Exception:
            outcomes.append("cancelled")

    def survivor():
        with admission.slot("interactive"):
            outcomes.append("survivor")

    first = threading.Thread(target=doomed)
    first.start()
    wait_until(lambda: admission.depths()["interactive"] == 1)
    second = threading.Thread(target=survivor)
    second.start()
    wait_until(lambda: admission.depths()["interactive"] == 2)
    time.sleep(0.3)  # let the doomed waiter's deadline lapse
    admission.release()
    drain([first, second])
    assert "survivor" in outcomes
    assert admission.depths()["active"] == 0


def test_unknown_priority_class_queues_as_interactive():
    admission = AdmissionController(max_active=1, queue_depth=4)
    admission.acquire("interactive")

    def waiter():
        with admission.slot("frobnicate"):
            pass

    thread = threading.Thread(target=waiter)
    thread.start()
    wait_until(lambda: admission.depths()["interactive"] == 1)
    admission.release()
    drain([thread])


def test_constructor_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_active=0)
    with pytest.raises(ValueError):
        AdmissionController(queue_depth=-1)
