"""Session pipeline: stage caching, legacy equivalence, suites."""

import pytest

from repro import LearnConfig, figure1, learn, run_atpg, s27
from repro.flow import (
    ATPGConfig,
    CircuitResolveError,
    ConfigError,
    ReproConfig,
    Session,
    resolve_circuit,
    run_suite,
)


def _comparable(stats):
    """ATPG outcome fields that must be reproducible run-to-run."""
    return {f: getattr(stats, f)
            for f in ("circuit", "mode", "backtrack_limit", "total_faults",
                      "detected", "untestable", "aborted", "collateral",
                      "decisions", "backtracks", "sequences_total")}


# ----------------------------------------------------------------------
# resolve stage
# ----------------------------------------------------------------------
def test_resolve_circuit_specs():
    assert resolve_circuit("figure1").name == "figure1"
    assert resolve_circuit("like:s382@0.5").num_ffs == 10
    circuit = figure1()
    assert resolve_circuit(circuit) is circuit


def test_resolve_circuit_errors():
    with pytest.raises(CircuitResolveError, match="cannot read bench"):
        resolve_circuit("/no/such/file.bench")
    with pytest.raises(CircuitResolveError, match="unknown profile"):
        resolve_circuit("like:not_a_profile")
    with pytest.raises(CircuitResolveError, match="bad scale"):
        resolve_circuit("like:s382@huge")


# ----------------------------------------------------------------------
# stage equivalence with the legacy free-function path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make", [figure1, s27],
                         ids=["figure1", "s27"])
def test_session_matches_legacy_path(make):
    circuit = make()
    legacy_learned = learn(circuit, LearnConfig())

    session = Session(make())
    learned = session.learn()
    legacy_summary = dict(legacy_learned.summary())
    summary = dict(learned.summary())
    legacy_summary.pop("cpu_s")
    summary.pop("cpu_s")
    assert summary == legacy_summary

    for mode in ("none", "forbidden", "known"):
        legacy = run_atpg(circuit,
                          learned=None if mode == "none" else legacy_learned,
                          mode=mode)
        assert _comparable(session.atpg(mode)) == _comparable(legacy)


def test_session_stage_caching_and_progress():
    events = []
    session = Session("figure1",
                      progress=lambda s, e, p: events.append((s, e)))
    first = session.learn()
    assert session.learn() is first          # cached, no rerun
    session.atpg("known")
    session.atpg("known")                    # cached per mode
    stages = [record.stage for record in session.records]
    assert stages == ["resolve", "learn", "atpg[known]"]
    assert events == [("resolve", "start"), ("resolve", "end"),
                      ("learn", "start"), ("learn", "end"),
                      ("atpg[known]", "start"), ("atpg[known]", "end")]
    with pytest.raises(ConfigError, match="mode"):
        session.atpg("bogus")


def test_session_artifact_round_trip(tmp_path):
    path = tmp_path / "art.json"
    producer = Session("figure1")
    producer.save_learned(path)
    fresh_stats = producer.atpg("forbidden")

    consumer = Session("figure1")
    consumer.load_learned(path)
    # No learn-from-scratch stage ran: the learn record is artifact-backed.
    learn_records = [r for r in consumer.records if r.stage == "learn"]
    assert len(learn_records) == 1
    assert learn_records[0].summary["artifact"] == str(path)
    assert _comparable(consumer.atpg("forbidden")) \
        == _comparable(fresh_stats)


def test_attach_learned_rejects_other_circuit():
    session = Session("figure1")
    other = learn(s27())
    with pytest.raises(CircuitResolveError):
        session.attach_learned(other)


def test_untestable_screen_reuses_learning():
    session = Session("figure1")
    comparison = session.untestable_screen()
    assert comparison.tie_gate_untestable >= 1
    stages = [record.stage for record in session.records]
    assert stages.count("learn") == 1


# ----------------------------------------------------------------------
# sequences opt-in and fault-sim stage
# ----------------------------------------------------------------------
def test_keep_sequences_opt_in():
    lean = Session("figure1").atpg("known")
    assert lean.sequences == [] and lean.sequences_total > 0
    assert lean.row()["sequences"] == lean.sequences_total

    config = ReproConfig(atpg=ATPGConfig(keep_sequences=True))
    full = Session("figure1", config).atpg("known")
    assert len(full.sequences) == full.sequences_total
    assert _comparable(full) == _comparable(lean)


def test_fault_sim_stage():
    config = ReproConfig(atpg=ATPGConfig(mode="known",
                                         keep_sequences=True))
    session = Session("figure1", config)
    stats = session.atpg()
    grade = session.fault_sim()
    assert grade is session.fault_sim()      # cached
    assert grade["sequences"] == stats.sequences_total
    assert grade["detected"] >= stats.detected
    assert grade["detected"] <= grade["total_faults"]

    lean = Session("figure1")
    lean.atpg("known")
    with pytest.raises(ConfigError, match="keep_sequences"):
        lean.fault_sim("known")


# ----------------------------------------------------------------------
# report and suites
# ----------------------------------------------------------------------
def test_session_report_is_json_ready():
    import json

    session = Session("figure1")
    session.compare(("none", "known"))
    report = json.loads(json.dumps(session.report()))
    assert report["circuit"] == "figure1"
    assert set(report["atpg"]) == {"none", "known"}
    assert any(r["stage"] == "learn" for r in report["stages"])


def test_run_suite():
    report = run_suite(["figure1", "s27"], modes=("none", "known"))
    assert len(report.reports) == 2
    rows = report.rows()
    assert len(rows) == 4
    assert {row["circuit"] for row in rows} == {"figure1", "s27"}
    payload = report.to_dict()
    assert payload["circuits"] == 2 and payload["errors"] == []


def test_run_suite_keeps_going_on_bad_spec(tmp_path):
    report = run_suite(["figure1", "like:nope"], modes=("known",))
    assert len(report.reports) == 1
    assert len(report.errors) == 1
    assert "unknown profile" in report.errors[0]["error"]
    out = tmp_path / "suite.json"
    report.save(out)
    assert out.exists()
    with pytest.raises(CircuitResolveError):
        run_suite(["like:nope"], modes=("known",), keep_going=False)


def test_suite_report_save_is_atomic_and_canonical(tmp_path, monkeypatch):
    import json

    import repro.flow.serialize as serialize_mod

    report = run_suite(["figure1"], modes=("known",))
    out = tmp_path / "suite.json"
    report.save(out)
    before = out.read_text()

    def exploding_dump(payload, handle, **kwargs):
        handle.write("{")
        raise OSError("disk full")

    monkeypatch.setattr(serialize_mod.json, "dump", exploding_dump)
    with pytest.raises(OSError, match="disk full"):
        report.save(out)
    monkeypatch.undo()
    # Crash mid-write: previous report intact, temp file cleaned up.
    assert out.read_text() == before
    assert [p.name for p in tmp_path.iterdir()] == [out.name]

    report.save(out, canonical=True)
    with open(out) as handle:
        saved = json.load(handle)
    assert saved["reports"][0]["stages"][0]["elapsed_s"] == 0.0
    assert saved["reports"][0]["atpg"]["known"]["cpu_s"] == 0.0
