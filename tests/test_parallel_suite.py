"""Sharded suite execution: determinism, error contract, progress."""

import json
import multiprocessing
import os
import pickle

import pytest

from repro.core import LearnConfig
from repro.flow import (
    ATPGConfig,
    ConfigError,
    ReproConfig,
    SuiteError,
    SuiteTask,
    run_suite,
    run_suite_parallel,
)
from repro.flow.parallel_suite import run_task

#: Worker count exercised by the pool tests.  Clamped to >= 2: these
#: are pool-path tests, and jobs=1 would silently take the serial path
#: and assert nothing about the pool.  CI's base legs therefore run a
#: 2-worker pool; a dedicated matrix leg raises REPRO_SUITE_JOBS to
#: vary the worker count upward.
JOBS = max(2, int(os.environ.get("REPRO_SUITE_JOBS", "2")))

#: Two good circuits, one failing spec, and a duplicate -- small enough
#: that every test stays fast, varied enough to exercise merge order.
SPECS = ["figure1", "s27", "like:nope", "figure1"]


def tiny_config(**overrides):
    return ReproConfig(
        learn=LearnConfig(max_frames=5),
        atpg=ATPGConfig(backtrack_limit=5, max_frames=3, max_faults=10),
        **overrides)


def canonical_bytes(report):
    return json.dumps(report.canonical_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# determinism across worker counts
# ----------------------------------------------------------------------
def test_report_identical_for_jobs_1_2_4():
    reports = {jobs: run_suite(SPECS, config=tiny_config(),
                               modes=("known",), jobs=jobs)
               for jobs in (1, 2, 4)}
    serial = canonical_bytes(reports[1])
    assert canonical_bytes(reports[2]) == serial
    assert canonical_bytes(reports[4]) == serial
    # The failing spec lands in errors (in input order) for every count.
    for report in reports.values():
        assert len(report.reports) == 3
        assert [e["spec"] for e in report.errors] == ["like:nope"]
        assert report.errors[0]["stage"] == "resolve"


def test_all_modes_and_rows_match_serial():
    serial = run_suite(["figure1", "s27"], config=tiny_config(), jobs=1)
    parallel = run_suite(["figure1", "s27"], config=tiny_config(),
                         jobs=JOBS)
    assert canonical_bytes(serial) == canonical_bytes(parallel)
    strip = lambda row: {k: v for k, v in row.items() if k != "cpu_s"}
    assert ([strip(r) for r in serial.rows()]
            == [strip(r) for r in parallel.rows()])


def test_canonical_dict_zeroes_only_timing():
    report = run_suite(["figure1"], config=tiny_config(),
                       modes=("known",))
    raw, canonical = report.to_dict(), report.canonical_dict()
    stage = canonical["reports"][0]["stages"][0]
    assert stage["elapsed_s"] == 0.0
    assert canonical["reports"][0]["atpg"]["known"]["cpu_s"] == 0.0
    # Same schema, same non-timing content.
    detected = raw["reports"][0]["atpg"]["known"]["det"]
    assert canonical["reports"][0]["atpg"]["known"]["det"] == detected
    assert sorted(stage) == sorted(raw["reports"][0]["stages"][0])


# ----------------------------------------------------------------------
# jobs knob
# ----------------------------------------------------------------------
def test_jobs_validation():
    with pytest.raises(ConfigError, match="jobs"):
        ReproConfig(jobs=-1).validate()
    with pytest.raises(ConfigError, match="jobs"):
        ReproConfig.from_dict({"jobs": -2})
    with pytest.raises(ConfigError, match="jobs"):
        run_suite(["figure1"], jobs=-1)
    assert ReproConfig.from_dict({"jobs": 3}).jobs == 3
    assert ReproConfig().to_dict()["jobs"] == 1


def test_jobs_zero_means_cpu_count():
    report = run_suite(["figure1", "s27"], config=tiny_config(),
                       modes=("known",), jobs=0)
    assert len(report.reports) == 2 and not report.errors


def test_config_jobs_drives_dispatch_but_not_reports():
    config = tiny_config(jobs=JOBS)
    report = run_suite(["figure1", "s27"], config=config,
                       modes=("known",))
    # The session-level config is normalized: reports never depend on
    # (or record) the worker count.
    assert all(r["config"]["jobs"] == 1 for r in report.reports)
    serial = run_suite(["figure1", "s27"], config=tiny_config(jobs=1),
                       modes=("known",))
    assert canonical_bytes(serial) == canonical_bytes(report)


# ----------------------------------------------------------------------
# per-circuit failure contract
# ----------------------------------------------------------------------
def test_run_task_catches_arbitrary_failure(monkeypatch):
    import repro.flow.session as session_mod

    def boom(*args, **kwargs):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(session_mod, "run_atpg", boom)
    result = run_task(SuiteTask(index=0, spec="figure1",
                                config=tiny_config(), modes=("known",)))
    assert result.report is None
    assert result.error == {"spec": "figure1",
                            "error": "engine exploded",
                            "stage": "atpg[known]"}


def test_failing_circuit_object_spec_recorded_by_name(monkeypatch):
    import repro.flow.session as session_mod

    from repro import figure1

    def boom(*args, **kwargs):
        raise RuntimeError("crash")

    monkeypatch.setattr(session_mod, "run_atpg", boom)
    report = run_suite([figure1()], config=tiny_config(),
                       modes=("known",), jobs=1)
    # Not the default object repr (memory address != deterministic).
    assert report.errors[0]["spec"] == "figure1"


def test_serial_keep_going_survives_arbitrary_failure(monkeypatch):
    import repro.flow.session as session_mod

    real_run_atpg = session_mod.run_atpg

    def flaky(circuit, *args, **kwargs):
        if circuit.name == "s27":
            raise RuntimeError("mid-ATPG crash")
        return real_run_atpg(circuit, *args, **kwargs)

    monkeypatch.setattr(session_mod, "run_atpg", flaky)
    report = run_suite(["figure1", "s27"], config=tiny_config(),
                       modes=("known",), jobs=1)
    assert [r["circuit"] for r in report.reports] == ["figure1"]
    assert report.errors == [{"spec": "s27", "error": "mid-ATPG crash",
                              "stage": "atpg[known]"}]
    with pytest.raises(RuntimeError, match="mid-ATPG crash"):
        run_suite(["figure1", "s27"], config=tiny_config(),
                  modes=("known",), jobs=1, keep_going=False)


def test_parallel_keep_going_false_raises_first_by_input_order():
    with pytest.raises(SuiteError, match="like:nope.*resolve"):
        run_suite(["figure1", "like:nope", "like:also_nope"],
                  config=tiny_config(), modes=("known",), jobs=JOBS,
                  keep_going=False)


@pytest.mark.skipif(multiprocessing.get_start_method() != "fork",
                    reason="crash injection relies on fork inheritance")
def test_worker_death_fails_circuit_not_suite(monkeypatch):
    import repro.flow.parallel_suite as parallel_mod

    real_run_task = parallel_mod.run_task

    def dying(task, progress=None):
        if task.spec == "s27":
            os._exit(17)
        return real_run_task(task, progress)

    monkeypatch.setattr(parallel_mod, "run_task", dying)
    report = run_suite_parallel(["figure1", "s27"], config=tiny_config(),
                                modes=("known",), jobs=2)
    assert [r["circuit"] for r in report.reports] == ["figure1"]
    assert report.errors == [{"spec": "s27",
                              "error": "worker process died while "
                                       "running this circuit",
                              "stage": "worker"}]


# ----------------------------------------------------------------------
# task units and progress aggregation
# ----------------------------------------------------------------------
def test_compile_failure_attributed_to_same_stage_in_both_paths(
        monkeypatch):
    import repro.flow.parallel_suite as parallel_mod

    def bad_warm(circuit):
        raise RuntimeError("kernel lowering failed")

    # One patch point suffices: the serial loop and the pool workers
    # share the same run_task pipeline body.
    monkeypatch.setattr(parallel_mod, "warm_cache", bad_warm)
    serial = run_suite(["figure1"], config=tiny_config(),
                       modes=("known",), jobs=1)
    task = run_task(SuiteTask(index=0, spec="figure1",
                              config=tiny_config(), modes=("known",)))
    assert serial.errors[0] == task.error
    assert serial.errors[0]["stage"] == "resolve"


def test_suite_task_is_picklable():
    task = SuiteTask(index=3, spec="figure1", config=tiny_config(),
                     modes=("none", "known"))
    clone = pickle.loads(pickle.dumps(task))
    assert clone == task


def test_parallel_progress_events_are_aggregated():
    events = []
    run_suite(["figure1", "s27"], config=tiny_config(),
              modes=("known",), jobs=JOBS,
              progress=lambda s, e, p: events.append((s, e, p)))
    starts = [s for s, e, _p in events if e == "start"]
    ends = [(s, p) for s, e, p in events if e == "end"]
    # Per circuit: resolve, learn, atpg[known]; interleaving across
    # workers is free, the multiset of events is not.
    assert sorted(starts) == sorted(
        ["resolve", "learn", "atpg[known]"] * 2)
    assert len(ends) == 6
    resolved = {p["circuit"] for s, p in ends if s == "resolve"}
    assert resolved == {"figure1", "s27"}


def test_throwing_progress_hook_is_ui_only_in_both_paths():
    def hostile(stage, event, payload):
        raise ValueError("bad hook")

    serial = run_suite(["figure1", "s27"], config=tiny_config(),
                       modes=("known",), jobs=1, progress=hostile)
    parallel = run_suite(["figure1", "s27"], config=tiny_config(),
                         modes=("known",), jobs=JOBS, progress=hostile)
    # A broken hook must neither fail circuits nor desync the paths.
    assert len(serial.reports) == 2 and not serial.errors
    assert canonical_bytes(serial) == canonical_bytes(parallel)


def test_unpicklable_spec_fails_its_circuit_only():
    from repro import figure1

    poison = figure1()
    poison.unpicklable = lambda: None
    report = run_suite(["s27", poison], config=tiny_config(),
                       modes=("known",), jobs=JOBS)
    assert [r["circuit"] for r in report.reports] == ["s27"]
    assert len(report.errors) == 1
    assert report.errors[0]["stage"] == "dispatch"
    # Memory addresses in the pickling error are masked; they would
    # differ run to run and break report determinism.
    import re
    assert not re.search(r"0x[0-9a-fA-F]{4,}",
                         report.errors[0]["error"])
    # The serial path never pickles and runs the same spec fine.
    serial = run_suite(["s27", poison], config=tiny_config(),
                       modes=("known",), jobs=1)
    assert len(serial.reports) == 2 and not serial.errors
