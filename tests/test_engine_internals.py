"""ATPG engine internals: window simulation, frontier, objectives,
backtrace, and the learned-implication planes."""

import pytest

from repro.circuit import CircuitBuilder, figure1, figure2, s27
from repro.circuit.gates import ONE, X, ZERO
from repro.core import learn
from repro.atpg import Fault, SequentialATPG
from repro.atpg.faults import fault_site_source


def chain():
    b = CircuitBuilder()
    b.inputs("a", "b")
    b.gate("g1", "and", "a", "b")
    b.dff("f1", "g1")
    b.gate("g2", "not", "f1")
    b.output("g2")
    return b.build()


def test_window_simulation_composite_values():
    c = chain()
    fault = Fault(c.nid("g1"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    cone = atpg._fault_cone(fault)
    state = atpg._simulate(fault, 2, {(0, c.nid("a")): 1,
                                      (0, c.nid("b")): 1}, cone)
    g1 = c.nid("g1")
    assert state.gv[0][g1] == ONE
    assert state.faulty(0, g1) == ZERO     # D at the site
    assert state.is_d(0, g1)
    # Effect crosses into frame 1 through the FF.
    f1 = c.nid("f1")
    assert state.is_d(1, f1)
    g2 = c.nid("g2")
    assert state.is_d(1, g2)
    assert atpg._detected(state, 2)


def test_frame0_state_is_x():
    c = chain()
    fault = Fault(c.nid("g1"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    state = atpg._simulate(fault, 1, {}, atpg._fault_cone(fault))
    assert state.gv[0][c.nid("f1")] == X


def test_activation_and_objectives():
    c = chain()
    fault = Fault(c.nid("g1"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    cone = atpg._fault_cone(fault)
    state = atpg._simulate(fault, 1, {}, cone)
    assert atpg._activated(state, 1, fault) is None
    objectives = list(atpg._objectives(state, 1, fault))
    src = fault_site_source(c, fault)
    assert objectives[0] == (0, src, ONE)


def test_backtrace_reaches_pi_through_ff():
    c = chain()
    fault = Fault(c.nid("g2"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    cone = atpg._fault_cone(fault)
    state = atpg._simulate(fault, 2, {}, cone)
    # Objective: g2=1 at frame 1 -> f1=0 at frame 1 -> g1=0 at frame 0
    # -> a=0 or b=0 at frame 0.
    target = atpg._backtrace(state, 1, c.nid("g2"), ONE)
    assert target is not None
    (frame, pid), value = target
    assert frame == 0
    assert c.nodes[pid].is_input
    assert value == ZERO


def test_backtrace_dies_at_frame0():
    c = chain()
    fault = Fault(c.nid("g2"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    state = atpg._simulate(fault, 1, {}, atpg._fault_cone(fault))
    # g2 objective at frame 0 needs the FF's pre-power-up value.
    assert atpg._backtrace(state, 0, c.nid("g2"), ONE) is None


def test_has_potential_false_when_blocked():
    b = CircuitBuilder()
    b.inputs("a", "s")
    b.gate("g1", "not", "a")
    b.gate("g2", "and", "g1", "s")
    b.output("g2")
    c = b.build()
    fault = Fault(c.nid("g1"), None, ZERO)
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=1)
    cone = atpg._fault_cone(fault)
    # s=0 blocks the only propagation path.
    state = atpg._simulate(fault, 1, {(0, c.nid("s")): 0,
                                      (0, c.nid("a")): 0}, cone)
    assert state.is_d(0, c.nid("g1"))
    assert not atpg._has_potential(state, 1, fault)
    # With s free (X) the path is open.
    state2 = atpg._simulate(fault, 1, {(0, c.nid("a")): 0}, cone)
    assert atpg._has_potential(state2, 1, fault)


def test_known_mode_forces_implied_values():
    circuit = figure1()
    learned = learn(circuit)
    fault = Fault(circuit.nid("G12"), None, ONE)
    atpg = SequentialATPG(circuit, relations=learned.relations,
                          mode="known", backtrack_limit=10, max_frames=4)
    cone = atpg._fault_cone(fault)
    # Drive I2=1 for two frames: simulation then knows F6=0 at frame 2
    # by plain logic; learned relations must at least not contradict.
    state = atpg._simulate(fault, 3, {(0, circuit.nid("I2")): 1,
                                      (1, circuit.nid("I2")): 1}, cone)
    assert not state.conflict


def test_forbidden_mode_populates_shadow_plane():
    circuit = figure2()
    learned = learn(circuit)
    fault = Fault(circuit.nid("G9"), None, ONE)
    atpg = SequentialATPG(circuit, relations=learned.relations,
                          mode="forbidden", backtrack_limit=10,
                          max_frames=4)
    cone = atpg._fault_cone(fault)
    # Set I2=1, I3=1 at frame 0: at frame 1 the relation G9=0 -> F2=0
    # has premise G9... drive nothing; instead check the plane exists
    # and conflicts stay absent.
    state = atpg._simulate(fault, 2, {(0, circuit.nid("I2")): 1,
                                      (0, circuit.nid("I3")): 1}, cone)
    assert not state.conflict
    assert isinstance(state.forb[0], dict)


def test_refutation_guard_returns_working_sequence():
    """_refute_untestable must hand back a detecting sequence."""
    from repro.sim import fault_simulate

    c = s27()
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=2)
    fault = Fault(c.nid("G17"), None, ZERO)
    sequence = atpg._refute_untestable(fault)
    if sequence is not None:
        assert fault_simulate(c, sequence, [fault]) == {0}


def test_generate_counts_budget():
    c = figure1()
    atpg = SequentialATPG(c, backtrack_limit=5, max_frames=4)
    fault = Fault(c.nid("G14"), None, ZERO)
    result = atpg.generate(fault)
    assert result.backtracks <= 5 + 1
    assert result.elapsed > 0


def test_sequence_only_contains_assigned_pis():
    c = chain()
    atpg = SequentialATPG(c, backtrack_limit=50, max_frames=4)
    result = atpg.generate(Fault(c.nid("g1"), None, ZERO))
    assert result.status == "detected"
    for vector in result.sequence:
        for name in vector:
            assert c.node(name).is_input
