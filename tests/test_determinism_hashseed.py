"""Canonical suite envelopes must not depend on PYTHONHASHSEED.

String hash randomization perturbs set iteration order and dict-from-
set insertion order -- exactly what the R002 lint rule polices
statically.  This test proves the property dynamically: the same
``repro suite --canonical --json`` run under hash seed 0, 42 and
"random" must produce byte-identical stdout.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                         ".."))

SUITE_ARGS = [
    "suite", "figure1", "s27",
    "--mode", "known",
    "--backtrack-limit", "5",
    "--max-frames", "3",
    "--window", "5",
    "--canonical", "--json",
]


def run_suite(hash_seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONHASHSEED"] = hash_seed
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *SUITE_ARGS],
        capture_output=True, env=env, timeout=300)
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


def test_canonical_suite_bytes_survive_hash_randomization():
    baseline = run_suite("0")
    assert baseline.strip(), "suite produced no output"
    for seed in ("42", "random"):
        assert run_suite(seed) == baseline, (
            f"canonical suite bytes changed under "
            f"PYTHONHASHSEED={seed}")
