"""State-space analysis and cross-package integration stories."""

import pytest

from repro.circuit import (
    counter,
    figure1,
    figure2,
    one_hot_ring,
    retime_circuit,
    s27,
)
from repro.core import LearnConfig, learn
from repro.analysis import (
    analyze_state_space,
    check_relations_exact,
    reachable_from,
)


def test_counter_density_is_one():
    space = analyze_state_space(counter(3))
    assert space.density_of_encoding == 1.0
    assert len(space.valid_states) == 8


def test_ring_density_is_full():
    # Shifting is a bijection on the state space: every state persists.
    space = analyze_state_space(one_hot_ring(4))
    assert space.density_of_encoding == 1.0


def test_figure1_density():
    space = analyze_state_space(figure1())
    assert space.num_ffs == 6
    assert 0 < space.density_of_encoding < 0.2


def test_reachable_from_initial_state():
    ring = one_hot_ring(4)
    start = (1, 0, 0, 0)
    reachable = reachable_from(ring, start)
    assert (0, 1, 0, 0) in reachable
    assert (1, 1, 0, 0) not in reachable


def test_state_space_guard():
    from repro.circuit import iscas_like

    big = iscas_like("s1423", scale=0.5)
    with pytest.raises(ValueError):
        analyze_state_space(big, max_ffs=16)


def test_is_valid_query():
    space = analyze_state_space(figure1())
    assert space.is_valid(next(iter(space.valid_states)))
    # F4=1 and F6=1 violates the paper's F6=1 -> F4=0 invalid-state
    # relation, so no such state may be valid.
    f4 = figure1().ffs.index(figure1().nid("F4"))
    circuit = figure1()
    i4 = circuit.ffs.index(circuit.nid("F4"))
    i6 = circuit.ffs.index(circuit.nid("F6"))
    assert all(not (s[i4] == 1 and s[i6] == 1)
               for s in space.valid_states)


def test_check_relations_exact_catches_bogus():
    from repro.core.relations import RelationDB

    circuit = counter(3)
    db = RelationDB(circuit)
    q0, q1 = circuit.nid("Q0"), circuit.nid("Q1")
    db.add(q0, 1, q1, 0)  # false in a counter: state (1,1,x) is valid
    violations = check_relations_exact(circuit, db)
    assert violations


# ---------------------------------------------------------------------------
# integration stories
# ---------------------------------------------------------------------------

def test_retiming_lowers_density_of_encoding():
    """Ref [9]'s mechanism, the premise of the paper's retimed rows."""
    base = figure2()
    base_space = analyze_state_space(base)
    retimed = retime_circuit(base, moves=3, name="fig2_rt")
    rt_space = analyze_state_space(retimed)
    assert retimed.num_ffs > base.num_ffs
    assert rt_space.density_of_encoding < base_space.density_of_encoding


def test_retimed_circuit_learns_more_invalid_states():
    base = figure2()
    retimed = retime_circuit(base, moves=3, name="fig2_rt2")
    base_learn = learn(base)
    rt_learn = learn(retimed)
    assert len(rt_learn.relations.invalid_state_relations()) > \
        len(base_learn.relations.invalid_state_relations())
    assert rt_learn.validate(30, 10) == []


def test_full_flow_learning_helps_atpg_on_figure1():
    """End-to-end Table-5 shape on the worked example."""
    from repro.atpg import run_atpg

    circuit = figure1()
    learned = learn(circuit)
    base = run_atpg(circuit, backtrack_limit=30, max_frames=8)
    forb = run_atpg(circuit, learned=learned, mode="forbidden",
                    backtrack_limit=30, max_frames=8)
    known = run_atpg(circuit, learned=learned, mode="known",
                     backtrack_limit=30, max_frames=8)
    # Learning identifies untestable faults the baseline cannot.
    assert forb.untestable > base.untestable
    assert known.untestable > base.untestable
    # And never loses coverage on this circuit.
    assert forb.detected + forb.untestable >= base.detected
    assert known.detected + known.untestable >= base.detected


def test_learning_stats_track_paper_shape_on_s27():
    result = learn(s27())
    summary = result.summary()
    assert summary["cpu_s"] < 5.0
    counts = result.counts(sequential_only=True)
    assert counts["ff_ff"] >= 0 and counts["gate_ff"] >= 0


def test_table1_rows_regenerable():
    """The Table-1 bench's data source: per-stem simulation rows."""
    from repro.core import run_single_node
    from repro.sim import FrameSimulator

    circuit = figure1()
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=50)
    i2 = circuit.nid("I2")
    row = data.runs[(i2, 1)]
    assert row.num_frames() == 4        # paper: stops at time frame 4
    f3 = circuit.nid("F3")
    row_f3 = data.runs[(f3, 1)]
    assert row_f3.repeated
