"""The ``repro serve`` daemon under concurrency.

The headline contract: N parallel clients firing mixed learn/atpg
requests get responses **byte-identical** to serial one-shot
:func:`repro.api.execute` runs, and after warm-up the compiled-kernel
cache is hit, never rebuilt.
"""

import http.client
import json
import socket
import threading
from contextlib import closing, contextmanager

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ATPGRequest,
    ArtifactStore,
    LearnRequest,
    execute,
    make_server,
)
from repro.core import LearnConfig
from repro.flow import ATPGConfig, ReproConfig
from repro.sim import clear_compile_cache, compile_cache_stats


def tiny_config() -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3))


@contextmanager
def running_server(store=None):
    server = make_server(port=0, store=store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def post(server, body: bytes, path: str = "/v1/execute"):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("POST", path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read()


def get(server, path: str):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()


#: The mixed workload: canonical requests (zeroed wall-clock fields)
#: are the byte-identity contract's reproducible form.
def mixed_requests():
    config = tiny_config()
    return [
        LearnRequest(spec="figure1", config=config, canonical=True),
        ATPGRequest(spec="figure1", config=config, modes=("known",),
                    canonical=True),
        LearnRequest(spec="s27", config=config, canonical=True),
        ATPGRequest(spec="s27", config=config,
                    modes=("none", "forbidden"), canonical=True),
    ]


def test_eight_concurrent_mixed_requests_byte_identical_to_one_shot():
    requests = mixed_requests() * 2  # 8 requests, mixed kinds/circuits
    # Serial one-shot references, fresh store-less executes.
    references = [execute(request).to_json().encode()
                  for request in requests]
    with running_server(store=ArtifactStore()) as server:
        results = [None] * len(requests)
        errors = []

        def client(index, request):
            try:
                status, body = post(
                    server, request.to_canonical_json().encode())
                results[index] = (status, body)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i, request))
                   for i, request in enumerate(requests)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for (status, body), reference in zip(results, references):
            assert status == 200
            assert body == reference
        status, health = get(server, "/v1/health")
        health = json.loads(health)
        assert health["requests_served"] == len(requests)
        assert health["requests_failed"] == 0
        # The store absorbed the repeats: one learn per (circuit,
        # config), every other request hit.
        assert health["artifact_store"]["puts"] == 2
        assert health["artifact_store"]["memory_hits"] >= 6


def test_kernel_cache_hit_after_warm_up():
    clear_compile_cache()
    request = ATPGRequest(spec="figure1", config=tiny_config(),
                          modes=("known",), canonical=True)
    with running_server(store=ArtifactStore()) as server:
        status, first = post(server,
                             request.to_canonical_json().encode())
        assert status == 200
        warm = compile_cache_stats()
        assert warm["misses"] >= 1  # figure1 compiled once
        # Hammer the warm daemon concurrently; the kernel cache must
        # only be *hit* from here on -- never rebuilt.
        threads = [threading.Thread(target=post, args=(
            server, request.to_canonical_json().encode()))
            for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        after = compile_cache_stats()
        assert after["misses"] == warm["misses"]
        assert after["hits"] > warm["hits"]
        assert after["entries"] == warm["entries"]


def test_health_and_kinds_endpoints():
    with running_server() as server:
        status, body = get(server, "/v1/health")
        health = json.loads(body)
        assert status == 200 and health["ok"] is True
        assert health["schema_version"] == SCHEMA_VERSION
        assert {"kernel_cache", "artifact_store"} <= set(health)

        status, body = get(server, "/v1/kinds")
        kinds = json.loads(body)
        assert status == 200
        assert "atpg" in kinds["kinds"] and "suite" in kinds["kinds"]


def test_error_envelopes_over_http():
    with running_server() as server:
        status, body = post(server, b"this is not json")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse"

        status, body = post(server, json.dumps(
            {"kind": "atpg", "spec": "like:nope"}).encode())
        assert status == 404
        payload = json.loads(body)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "resolve"
        assert payload["schema_version"] == SCHEMA_VERSION

        status, body = post(server, json.dumps(
            {"kind": "frobnicate"}).encode())
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse"

        status, body = get(server, "/no/such/endpoint")
        assert status == 404

        status, health = get(server, "/v1/health")
        assert json.loads(health)["requests_failed"] == 3


def test_daemon_suite_request_matches_one_shot():
    request_dict = {
        "kind": "suite",
        "specs": ["figure1", "s27"],
        "config": tiny_config().to_dict(),
        "modes": ["known"],
        "canonical": True,
    }
    reference = execute(dict(request_dict)).to_json().encode()
    with running_server(store=ArtifactStore()) as server:
        status, body = post(server, json.dumps(request_dict).encode())
    assert status == 200
    assert body == reference


def test_daemon_response_byte_identical_to_cli_stdout(capsys):
    """The literal contract: `repro ... --json --canonical` stdout ==
    the daemon's HTTP body for the same request document."""
    from repro.cli import main

    argv = ["atpg", "figure1", "--json", "--canonical", "--mode",
            "known", "--backtrack-limit", "5", "--window", "3",
            "--max-frames", "5"]
    assert main(argv) == 0
    cli_bytes = capsys.readouterr().out.encode()

    request = ATPGRequest(
        spec="figure1",
        config=ReproConfig(learn=LearnConfig(max_frames=5),
                           atpg=ATPGConfig(backtrack_limit=5,
                                           max_frames=3)),
        modes=("known",), canonical=True)
    with running_server(store=ArtifactStore()) as server:
        status, body = post(server,
                            request.to_canonical_json().encode())
    assert status == 200
    assert body == cli_bytes


def test_daemon_rejects_server_side_file_paths_by_default(tmp_path):
    target = tmp_path / "evil.json"
    with running_server() as server:
        status, body = post(server, json.dumps(
            {"kind": "learn", "spec": "figure1",
             "save": str(target)}).encode())
        assert status == 400
        error = json.loads(body)["error"]
        assert error["code"] == "parse" and "file paths" in error["message"]
        assert not target.exists()
        for field in ("out", "learned"):
            status, body = post(server, json.dumps(
                {"kind": "suite" if field == "out" else "atpg",
                 ("specs" if field == "out" else "spec"):
                     ["figure1"] if field == "out" else "figure1",
                 field: str(target)}).encode())
            assert status == 400, field

    # Opt-in restores the behavior for trusted local use.
    opt_in = make_server(port=0, allow_file_requests=True)
    thread = threading.Thread(target=opt_in.serve_forever, daemon=True)
    thread.start()
    try:
        status, body = post(opt_in, json.dumps(
            {"kind": "learn", "spec": "figure1",
             "config": tiny_config().to_dict(),
             "save": str(target)}).encode())
        assert status == 200 and target.exists()
    finally:
        opt_in.shutdown()
        opt_in.server_close()
        thread.join(timeout=5)


def test_daemon_non_string_kind_is_a_parse_error_not_500():
    with running_server() as server:
        status, body = post(server, json.dumps([1, 2]).encode())
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse"
        status, body = post(server, json.dumps(
            {"kind": ["atpg"]}).encode())
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse"


# ----------------------------------------------------------------------
# hostile/confused bodies: size limits and chunked transfer framing
# ----------------------------------------------------------------------
def raw_http(server, request_bytes: bytes):
    """Fire raw bytes at the daemon, return (status, json body)."""
    host, port = server.server_address[:2]
    with closing(socket.create_connection((host, port),
                                          timeout=30)) as sock:
        sock.sendall(request_bytes)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(body)


def test_oversized_body_is_413_envelope_not_a_dropped_connection():
    from repro.api.server import MAX_BODY_BYTES

    with running_server() as server:
        status, payload = raw_http(server, (
            "POST /v1/execute HTTP/1.1\r\n"
            "Host: x\r\n"
            f"Content-Length: {MAX_BODY_BYTES + 1}\r\n"
            "\r\n").encode())
        assert status == 413
        assert payload["ok"] is False
        assert payload["error"]["code"] == "too_large"
        assert str(MAX_BODY_BYTES) in payload["error"]["message"]
        # The daemon never read the phantom body; it still serves.
        status, body = get(server, "/v1/health")
        assert status == 200
        assert json.loads(body)["requests_failed"] == 1


def test_chunked_bodies_decode_and_malformed_chunks_are_400():
    good = json.dumps({"kind": "list"}).encode()
    chunked = (b"%x\r\n" % len(good)) + good + b"\r\n0\r\n\r\n"

    with running_server() as server:
        # A well-formed chunked POST decodes and executes normally.
        status, payload = raw_http(server, (
            b"POST /v1/execute HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n" + chunked))
        assert status == 200
        assert payload["ok"] is True and payload["command"] == "list"

        # A garbage chunk-size line is a 400 parse envelope.
        status, payload = raw_http(server, (
            b"POST /v1/execute HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"zz\r\n"))
        assert status == 400
        assert payload["error"]["code"] == "parse"
        assert "chunk size" in payload["error"]["message"]

        # Chunks adding past the body cap are a 413, pre-read.
        status, payload = raw_http(server, (
            b"POST /v1/execute HTTP/1.1\r\n"
            b"Host: x\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n"
            b"400001\r\n"))
        assert status == 413
        assert payload["error"]["code"] == "too_large"
