"""Typed pipeline configuration: validation and dict round-trips."""

import pytest

from repro.core import LearnConfig
from repro.flow import ATPGConfig, ConfigError, ReproConfig


def test_atpg_config_defaults_valid():
    config = ATPGConfig().validate()
    assert config.mode == "forbidden"
    assert config.keep_sequences is False


@pytest.mark.parametrize("kwargs", [
    {"mode": "bogus"},
    {"backtrack_limit": 0},
    {"max_frames": 0},
    {"max_faults": 0},
    {"sim_width": 0},
    {"sim_width": -4},
])
def test_atpg_config_rejects_bad_values(kwargs):
    with pytest.raises(ConfigError):
        ATPGConfig(**kwargs).validate()


def test_atpg_config_round_trip():
    config = ATPGConfig(mode="known", backtrack_limit=99, max_frames=4,
                        max_faults=7, fill_seed=1, keep_sequences=True,
                        sim_width=4096)
    rebuilt = ATPGConfig.from_dict(config.to_dict())
    assert rebuilt == config


def test_sim_width_is_a_pure_packing_knob():
    """Two configs differing only in ``sim_width`` hash differently
    (the digest walks every field) but both validate; ``None`` stays
    the default."""
    assert ATPGConfig().sim_width is None
    a = ATPGConfig(sim_width=7).validate()
    b = ATPGConfig(sim_width=4096).validate()
    assert a.config_digest() != b.config_digest()


def test_learn_config_width_knobs_round_trip():
    config = LearnConfig(signature_width=4096,
                         single_node_batch_width=256)
    rebuilt = LearnConfig.from_dict(config.to_dict())
    assert rebuilt == config
    assert LearnConfig().signature_width is None
    assert LearnConfig().single_node_batch_width is None


def test_atpg_config_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown"):
        ATPGConfig.from_dict({"mode": "known", "typo_knob": 1})


def test_learn_config_round_trip():
    config = LearnConfig(max_frames=17, use_multi_node=False, seed=3)
    assert LearnConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ValueError, match="unknown"):
        LearnConfig.from_dict({"maxframes": 17})


def test_repro_config_round_trip():
    config = ReproConfig(learn=LearnConfig(max_frames=12),
                         atpg=ATPGConfig(mode="none"),
                         retime=2)
    rebuilt = ReproConfig.from_dict(config.to_dict())
    assert rebuilt == config
    assert rebuilt.learn.max_frames == 12
    assert rebuilt.atpg.mode == "none"


def test_repro_config_learn_typo_raises_config_error():
    with pytest.raises(ConfigError, match="unknown"):
        ReproConfig.from_dict({"learn": {"typo": 1}})


def test_repro_config_validation():
    with pytest.raises(ConfigError):
        ReproConfig(retime=-1).validate()
    with pytest.raises(ConfigError):
        ReproConfig(atpg=ATPGConfig(mode="nope")).validate()
    with pytest.raises(ConfigError, match="unknown"):
        ReproConfig.from_dict({"learn": {}, "atpgg": {}})
