"""JSON artifact round-trips for learning results and ATPG stats.

The load-bearing properties: (1) a saved-then-loaded LearnResult carries
exactly the same relations/ties/equivalences and still passes the
Monte-Carlo soundness oracle; (2) an artifact never binds to a circuit
whose structural fingerprint differs.
"""

import json

import pytest

from repro import figure1, learn, run_atpg, s27
from repro.circuit import equivalence_demo, figure2
from repro.flow import (
    ArtifactError,
    StaleArtifactError,
    atpg_stats_from_dict,
    atpg_stats_to_dict,
    circuit_fingerprint,
    learn_result_from_dict,
    learn_result_to_dict,
    load_learn_result,
    save_learn_result,
)

CIRCUITS = [figure1, figure2, s27, equivalence_demo]


def _relation_keys(result):
    return {r.key() for r in result.relations}


@pytest.mark.parametrize("make", CIRCUITS,
                         ids=[c.__name__ for c in CIRCUITS])
def test_learn_result_json_round_trip(make):
    circuit = make()
    result = learn(circuit)
    # Through real JSON text, not just dicts.
    data = json.loads(json.dumps(learn_result_to_dict(result)))
    loaded = learn_result_from_dict(data, circuit)

    assert _relation_keys(loaded) == _relation_keys(result)
    assert {(t.nid, t.value, t.sequential, t.warmup)
            for t in loaded.ties.all()} \
        == {(t.nid, t.value, t.sequential, t.warmup)
            for t in result.ties.all()}
    assert loaded.equivalences == result.equivalences
    assert loaded.config == result.config
    assert loaded.counts() == result.counts()
    assert loaded.phase_times == result.phase_times
    assert loaded.multi_stats == result.multi_stats
    # The soundness oracle must still find zero violations.
    assert loaded.validate(n_sequences=20) == []


def test_relation_provenance_survives():
    result = learn(figure1())
    data = learn_result_to_dict(result)
    loaded = learn_result_from_dict(data, figure1())
    by_key = {r.key(): r for r in loaded.relations}
    for relation in result.relations:
        twin = by_key[relation.key()]
        assert twin.source == relation.source
        assert twin.sequential == relation.sequential
        assert twin.warmup == relation.warmup


def test_fingerprint_mismatch_rejected():
    result = learn(figure1())
    data = learn_result_to_dict(result)
    with pytest.raises(StaleArtifactError, match="does not match"):
        learn_result_from_dict(data, s27())


def test_fingerprint_stable_and_structural():
    assert circuit_fingerprint(figure1()) == circuit_fingerprint(figure1())
    assert circuit_fingerprint(figure1()) != circuit_fingerprint(s27())
    renamed = figure1()
    renamed.name = "renamed_copy"
    assert circuit_fingerprint(renamed) == circuit_fingerprint(figure1())


def test_bad_header_rejected():
    result = learn(figure1())
    data = learn_result_to_dict(result)
    with pytest.raises(ArtifactError, match="version"):
        learn_result_from_dict({**data, "version": 999}, figure1())
    with pytest.raises(ArtifactError, match="format"):
        learn_result_from_dict({**data, "format": "other"}, figure1())


def test_save_load_file(tmp_path):
    circuit = figure1()
    result = learn(circuit)
    path = tmp_path / "figure1.learn.json"
    save_learn_result(result, path)
    loaded = load_learn_result(path, figure1())
    assert loaded.counts() == result.counts()
    assert len(loaded.ties) == len(result.ties)

    path.write_text("not json {")
    with pytest.raises(ArtifactError, match="JSON"):
        load_learn_result(path, circuit)


def test_malformed_payload_raises_artifact_error():
    circuit = figure1()
    result = learn(circuit)
    data = learn_result_to_dict(result)
    with pytest.raises(ArtifactError, match="unknown"):
        learn_result_from_dict(
            {**data, "config": {"typo_key": 1}}, circuit)
    with pytest.raises(ArtifactError, match="circuit"):
        learn_result_from_dict(
            {k: v for k, v in data.items() if k != "circuit"}, circuit)
    tampered = json.loads(json.dumps(data))
    tampered["relations"][0]["a"] = "NOT_A_NODE"
    with pytest.raises(ArtifactError, match="node"):
        learn_result_from_dict(tampered, circuit)


def test_atpg_stats_missing_keys_rejected():
    with pytest.raises(ArtifactError, match="missing required"):
        atpg_stats_from_dict({"format": "repro/atpg-stats", "version": 1})


def test_atpg_stats_round_trip():
    circuit = figure1()
    learned = learn(circuit)
    stats = run_atpg(circuit, learned=learned, mode="forbidden",
                     backtrack_limit=20, max_frames=8)
    data = json.loads(json.dumps(atpg_stats_to_dict(stats)))
    rebuilt = atpg_stats_from_dict(data)
    assert rebuilt == stats
    assert rebuilt.row() == stats.row()


# ----------------------------------------------------------------------
# atomic writes
# ----------------------------------------------------------------------
def test_save_learn_result_is_atomic(tmp_path, monkeypatch):
    import repro.flow.serialize as serialize_mod
    from repro.flow import write_json_atomic

    result = learn(figure1())
    path = tmp_path / "figure1.learn.json"
    save_learn_result(result, path)
    before = path.read_text()

    def exploding_dump(payload, handle, **kwargs):
        handle.write('{"half": ')
        raise OSError("disk full")

    monkeypatch.setattr(serialize_mod.json, "dump", exploding_dump)
    with pytest.raises(OSError, match="disk full"):
        save_learn_result(result, path)
    monkeypatch.undo()

    # The interrupted write left the previous artifact untouched and
    # cleaned up its temp file.
    assert path.read_text() == before
    assert [p.name for p in tmp_path.iterdir()] == [path.name]
    load_learn_result(path, figure1())

    # And write_json_atomic creates fresh files too (no pre-existing
    # target required for os.replace).
    fresh = tmp_path / "fresh.json"
    write_json_atomic(fresh, {"ok": True})
    assert json.loads(fresh.read_text()) == {"ok": True}


def test_write_json_atomic_honors_umask(tmp_path):
    import os

    from repro.flow import write_json_atomic

    old_umask = os.umask(0o022)
    try:
        path = tmp_path / "perms.json"
        write_json_atomic(path, {"x": 1})
        # Same permissions a plain open(path, "w") would have given,
        # not mkstemp's owner-only 0600.
        assert (path.stat().st_mode & 0o777) == 0o644
    finally:
        os.umask(old_umask)


def test_digest_stamped_artifact_round_trip(tmp_path):
    from repro.flow import load_learn_result, save_learn_result

    circuit = figure1()
    result = learn(circuit)
    path = tmp_path / "stamped.json"
    save_learn_result(result, path, digest="d" * 64)
    assert json.loads(path.read_text())["digest"] == "d" * 64

    # Matching (or unchecked) digests load fine.
    load_learn_result(path, circuit)
    load_learn_result(path, circuit, expect_digest="d" * 64)

    # A digest mismatch means a different learning config produced the
    # artifact: stale, loudly.
    with pytest.raises(StaleArtifactError, match="different learning"):
        load_learn_result(path, circuit, expect_digest="e" * 64)

    # Unstamped artifacts keep working under expect_digest (the
    # pre-digest format falls back to the fingerprint-only check).
    bare = tmp_path / "bare.json"
    save_learn_result(result, bare)
    load_learn_result(bare, circuit, expect_digest="e" * 64)
