"""``repro.api.execute``: envelopes, errors, events, store reuse, plan.

The redesign's core promises checked here:

* every request kind runs through the one entrypoint and returns the
  versioned envelope;
* responses agree with the pre-API ``PipelineSession`` reports;
* failures come back as coded error envelopes, never raw tracebacks;
* a store-warmed run is canonically byte-identical to a cold one;
* the deprecated ``Session`` shim still works (and warns).
"""

import dataclasses
import json
import warnings

import pytest

from repro.api import (
    SCHEMA_VERSION,
    ATPGRequest,
    AnalyzeRequest,
    ArtifactStore,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    ListRequest,
    ProgressEvent,
    ResultEvent,
    StageEvent,
    StatsRequest,
    SuiteRequest,
    UntestableRequest,
    execute,
    plan_request,
)
from repro.core import LearnConfig
from repro.flow import ATPGConfig, PipelineSession, ReproConfig, Session


def tiny_config(**kwargs) -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3,
                                       **kwargs))


# ----------------------------------------------------------------------
# envelopes agree with the pipeline engine
# ----------------------------------------------------------------------
def test_learn_envelope_matches_pipeline_session():
    config = tiny_config()
    response = execute(LearnRequest(spec="figure1", config=config))
    assert response.ok and response.exit_code == 0
    envelope = response.envelope()
    assert envelope["schema_version"] == SCHEMA_VERSION
    assert envelope["command"] == "learn" and envelope["ok"] is True

    session = PipelineSession("figure1",
                              config=dataclasses.replace(config))
    session.learn()
    expected = session.report()
    for key in ("circuit", "fingerprint", "config"):
        assert envelope[key] == expected[key]
    observed_learn = {k: v for k, v in envelope["learn"].items()
                      if k != "cpu_s"}
    assert observed_learn == {k: v for k, v in expected["learn"].items()
                              if k != "cpu_s"}
    assert [s["stage"] for s in envelope["stages"]] == \
        [s["stage"] for s in expected["stages"]]


def test_atpg_envelope_matches_pipeline_session():
    config = tiny_config()
    response = execute(ATPGRequest(spec="figure1", config=config,
                                   modes=("none", "known")))
    session = PipelineSession("figure1",
                              config=dataclasses.replace(config))
    session.learn()
    session.compare(["none", "known"])
    expected = session.report()
    result = response.result
    assert set(result["atpg"]) == {"none", "known"}
    for mode in ("none", "known"):
        observed = {k: v for k, v in result["atpg"][mode].items()
                    if k != "cpu_s"}
        reference = {k: v for k, v in expected["atpg"][mode].items()
                     if k != "cpu_s"}
        assert observed == reference


def test_untestable_and_stats_and_analyze_and_list():
    config = tiny_config()
    untestable = execute(UntestableRequest(spec="figure1",
                                           config=config))
    assert untestable.ok
    assert set(untestable.result["untestable"]) == \
        {"circuit", "total", "tie_gates", "fires"}

    stats = execute(StatsRequest(spec="figure1"))
    assert stats.result["ffs"] == 6
    assert len(stats.result["fingerprint"]) == 64

    analyze = execute(AnalyzeRequest(spec="figure1"))
    assert 0 < analyze.result["density_of_encoding"] <= 1

    listing = execute(ListRequest())
    assert "figure1" in listing.result["circuits"]


def test_faultsim_grades_generated_tests():
    # keep_sequences is forced by the executor (grading needs the
    # vectors), so the default request works on every surface; the
    # report echoes the effective config.
    response = execute(FaultSimRequest(
        spec="figure1", config=tiny_config(), modes=("known",)))
    assert response.ok
    assert response.result["config"]["atpg"]["keep_sequences"] is True
    grade = response.result["fault_sim"]["known"]
    assert grade["total_faults"] > 0
    assert 0 <= grade["fault_coverage_%"] <= 100


def test_compare_sweeps_modes_and_limits():
    response = execute(CompareRequest(spec="figure1",
                                      config=tiny_config(),
                                      backtrack_limits=(3, 5)))
    assert response.ok
    rows = response.result["compare"]["rows"]
    assert len(rows) == 6  # 2 limits x 3 modes
    assert [row["backtrack_limit"] for row in rows] == [3] * 3 + [5] * 3
    assert {row["mode"] for row in rows} == {"none", "forbidden",
                                             "known"}


def test_suite_request_runs_and_flags_errors():
    response = execute(SuiteRequest(specs=("figure1", "like:nope"),
                                    config=tiny_config(),
                                    modes=("known",)))
    assert response.ok  # per-circuit failures are data, not a failure
    assert response.exit_code == 1
    assert response.result["circuits"] == 1
    assert response.result["errors"][0]["stage"] == "resolve"


# ----------------------------------------------------------------------
# error envelopes
# ----------------------------------------------------------------------
def test_resolve_error_envelope():
    response = execute(ATPGRequest(spec="like:nope",
                                   config=tiny_config()))
    assert not response.ok and response.exit_code == 1
    assert response.error["code"] == "resolve"
    assert response.error["stage"] == "resolve"
    assert "unknown profile" in response.error["message"]
    envelope = response.envelope()
    assert envelope["ok"] is False and "error" in envelope


def test_parse_error_envelope_from_dict():
    response = execute({"kind": "atpg", "nope": 1})
    assert not response.ok
    assert response.error["code"] == "parse"
    assert response.error["stage"] == "parse"


def test_config_error_envelope():
    response = execute({"kind": "atpg", "spec": "s27",
                        "config": {"atpg": {"backtrack_limit": 0}}})
    assert not response.ok
    assert response.error["code"] == "config"


def test_stale_artifact_error_envelope(tmp_path):
    artifact = str(tmp_path / "art.json")
    assert execute(LearnRequest(spec="figure1", config=tiny_config(),
                                save=artifact)).ok
    response = execute(ATPGRequest(spec="s27", config=tiny_config(),
                                   learned=artifact))
    assert not response.ok
    assert response.error["code"] == "artifact"
    assert response.error["stage"] == "learn"
    assert "does not match" in response.error["message"]


def test_engine_error_envelope(monkeypatch):
    import repro.flow.session as session_mod

    def boom(*args, **kwargs):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(session_mod, "run_atpg", boom)
    response = execute(ATPGRequest(spec="figure1", config=tiny_config(),
                                   modes=("none",)))
    assert not response.ok
    assert response.error["code"] == "engine"
    assert response.error["stage"] == "atpg[none]"
    assert response.error["message"] == "engine exploded"


# ----------------------------------------------------------------------
# event stream
# ----------------------------------------------------------------------
def test_event_stream_progress_stage_result():
    events = []
    response = execute(ATPGRequest(spec="figure1", config=tiny_config(),
                                   modes=("known",)),
                       events=events.append)
    kinds = [type(event).__name__ for event in events]
    assert kinds[-1] == "ResultEvent"
    stages = [e.stage for e in events if isinstance(e, StageEvent)]
    assert stages == ["resolve", "learn", "atpg[known]"]
    progress = [e for e in events if isinstance(e, ProgressEvent)]
    assert {"start", "end"} <= {e.status for e in progress}
    plans = [e for e in progress if e.stage == "plan"]
    assert len(plans) == 1 and plans[0].payload["nodes"] >= 3
    ticks = [e for e in progress if e.status == "tick"]
    assert ticks and all(e.payload["done"] <= e.payload["total"]
                         for e in ticks)
    result_event = events[-1]
    assert isinstance(result_event, ResultEvent)
    assert result_event.envelope == response.envelope()
    # Events are JSON-serializable by contract.
    for event in events:
        json.dumps(event.to_dict())


def test_throwing_event_sink_does_not_affect_result():
    def bad_sink(event):
        raise RuntimeError("sink down")

    quiet = execute(LearnRequest(spec="figure1", config=tiny_config(),
                                 canonical=True))
    noisy = execute(LearnRequest(spec="figure1", config=tiny_config(),
                                 canonical=True), events=bad_sink)
    assert noisy.to_json() == quiet.to_json()


# ----------------------------------------------------------------------
# plan + store
# ----------------------------------------------------------------------
def test_plan_marks_store_hits():
    from repro.flow.session import resolve_circuit

    store = ArtifactStore()
    config = tiny_config()
    request = LearnRequest(spec="figure1", config=config)
    circuit = resolve_circuit("figure1")
    cold = plan_request(request, circuit, store)
    assert [n.task_id for n in cold.nodes] == ["resolve", "learn"]
    assert not cold.nodes[1].cached
    execute(request, store=store)
    warm = plan_request(request, circuit, store)
    assert warm.nodes[1].cached
    assert warm.summary()["cached"] == 1
    json.dumps(warm.to_dict())


def test_store_hit_is_canonically_byte_identical_to_cold_run():
    store = ArtifactStore()
    request = ATPGRequest(spec="figure1", config=tiny_config(),
                          canonical=True)
    cold = execute(request, store=store)
    assert store.stats()["puts"] == 1 and store.stats()["misses"] == 1
    warm = execute(request, store=store)
    assert store.stats()["memory_hits"] == 1
    assert warm.to_json() == cold.to_json()
    # And identical to a store-less one-shot run.
    assert execute(request).to_json() == cold.to_json()


def test_disk_store_survives_processes(tmp_path):
    config = tiny_config()
    request = LearnRequest(spec="figure1", config=config,
                           canonical=True)
    first = ArtifactStore(root=str(tmp_path))
    cold = execute(request, store=first)
    # A different store object over the same root: disk hit, no relearn.
    second = ArtifactStore(root=str(tmp_path))
    warm = execute(request, store=second)
    assert second.stats()["disk_hits"] == 1
    assert second.stats()["puts"] == 0
    assert warm.to_json() == cold.to_json()


def test_learn_save_stamps_digest(tmp_path):
    artifact = tmp_path / "art.json"
    response = execute(LearnRequest(spec="figure1", config=tiny_config(),
                                    save=str(artifact)))
    payload = json.loads(artifact.read_text())
    assert payload["digest"] == response.result["learn_digest"]


# ----------------------------------------------------------------------
# the deprecated Session shim
# ----------------------------------------------------------------------
def test_session_shim_warns_and_still_works():
    with pytest.warns(DeprecationWarning, match="repro.api"):
        session = Session("figure1", config=tiny_config())
    stats = session.atpg("known")
    assert stats.total_faults > 0
    assert isinstance(session, PipelineSession)


def test_pipeline_session_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session = PipelineSession("figure1", config=tiny_config())
    assert session.circuit.name == "figure1"


def test_session_shim_report_matches_api_envelope():
    config = tiny_config()
    with pytest.warns(DeprecationWarning):
        session = Session("figure1", config=dataclasses.replace(config))
    session.learn()
    session.compare(["known"])
    response = execute(ATPGRequest(spec="figure1", config=config,
                                   modes=("known",)))
    shim_report = session.report()
    observed = {k: v for k, v in response.result["atpg"]["known"].items()
                if k != "cpu_s"}
    reference = {k: v for k, v in shim_report["atpg"]["known"].items()
                 if k != "cpu_s"}
    assert observed == reference


def test_store_write_failure_does_not_fail_the_request(monkeypatch):
    store = ArtifactStore()

    def full_disk(digest, result):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(store, "put_learn", full_disk)
    response = execute(LearnRequest(spec="figure1",
                                    config=tiny_config()), store=store)
    assert response.ok  # learning succeeded; the cache write is best-effort


def test_store_memory_layer_is_lru_bounded():
    store = ArtifactStore()
    store.MEMORY_CAP = 2
    learned = execute(LearnRequest(spec="figure1",
                                   config=tiny_config()), store=store)
    assert learned.ok
    for spec in ("s27", "figure2"):
        assert execute(LearnRequest(spec=spec, config=tiny_config()),
                       store=store).ok
    assert store.stats()["memory_entries"] == 2  # figure1 evicted
