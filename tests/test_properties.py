"""Property-based soundness: the invariants the whole paper stands on.

Learned relations and ties are claims about *every* execution of the
circuit; random circuits plus random stimuli make an unforgiving oracle.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit import random_circuit, retime_circuit
from repro.circuit.gates import X
from repro.core import LearnConfig, learn
from repro.sim import simulate_sequence

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def _random_small(seed):
    return random_circuit("prop", n_inputs=3, n_outputs=2, n_ffs=4,
                          n_gates=18, seed=seed)


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_learned_relations_hold_on_random_circuits(seed):
    """Monte-Carlo validation never finds a counterexample."""
    circuit = _random_small(seed)
    result = learn(circuit, LearnConfig(max_frames=12))
    assert result.validate(n_sequences=25, seq_len=8,
                           rng=random.Random(seed)) == []


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_learned_relations_hold_exactly(seed):
    """Exact oracle: FF-FF relations hold on every persistent state."""
    from repro.analysis import analyze_state_space, check_relations_exact

    circuit = _random_small(seed)
    result = learn(circuit, LearnConfig(max_frames=12))
    space = analyze_state_space(circuit)
    assert check_relations_exact(circuit, result.relations, space) == []


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_ties_hold_exactly(seed):
    """Every learned tie is constant on every persistent state's frame."""
    from repro.analysis import analyze_state_space

    circuit = _random_small(seed)
    result = learn(circuit, LearnConfig(max_frames=12))
    if not result.ties:
        return
    space = analyze_state_space(circuit)
    rng = random.Random(seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    ffs = [circuit.nodes[f].name for f in circuit.ffs]
    for state in list(space.valid_states)[:40]:
        init = dict(zip(ffs, state))
        seq = [{n: rng.randint(0, 1) for n in inputs} for _ in range(4)]
        frames = simulate_sequence(circuit, seq, init_state=init)
        for tie in result.ties.all():
            name = circuit.nodes[tie.nid].name
            # Persistent states are past any warm-up by construction.
            for values in frames:
                assert values[name] in (tie.value, X), (name, state)


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_learning_deterministic(seed):
    circuit = _random_small(seed)
    a = learn(circuit, LearnConfig(max_frames=10))
    b = learn(circuit, LearnConfig(max_frames=10))
    assert sorted(a.relations.dump()) == sorted(b.relations.dump())
    assert a.ties.names() == b.ties.names()


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_retimed_circuits_learning_still_sound(seed):
    """The paper's retimed workloads: learning stays sound after moves."""
    circuit = _random_small(seed)
    retimed = retime_circuit(circuit, moves=2, name="prop_rt")
    result = learn(retimed, LearnConfig(max_frames=12))
    assert result.validate(n_sequences=20, seq_len=8,
                           rng=random.Random(seed + 1)) == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_equivalences_are_real(seed):
    """Verified equivalence classes agree on random stimuli."""
    circuit = random_circuit("prop_eq", n_inputs=4, n_outputs=2, n_ffs=3,
                             n_gates=24, seed=seed)
    result = learn(circuit, LearnConfig(max_frames=6))
    if not result.equivalences:
        return
    rng = random.Random(seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    ffs = [circuit.nodes[f].name for f in circuit.ffs]
    classes = {}
    for nid, (cls, pol) in result.equivalences.items():
        classes.setdefault(cls, []).append((nid, pol))
    for _ in range(25):
        vec = {n: rng.randint(0, 1) for n in inputs}
        init = {n: rng.randint(0, 1) for n in ffs}
        frame = simulate_sequence(circuit, [vec], init_state=init)[0]
        for members in classes.values():
            base_nid, base_pol = members[0]
            base = frame[circuit.nodes[base_nid].name] ^ base_pol
            for nid, pol in members[1:]:
                assert frame[circuit.nodes[nid].name] ^ pol == base


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000), st.integers(0, 3))
def test_atpg_detected_sequences_verified(seed, fault_slice):
    """Every 'detected' verdict ships a sequence the simulator confirms.

    (run_atpg's fill happens later; here we fill X inputs with zeros and
    re-check using the engine's own claimed sequence.)
    """
    from repro.atpg import SequentialATPG, collapse_faults
    from repro.sim import fault_simulate

    circuit = _random_small(seed)
    faults = collapse_faults(circuit)[fault_slice::4][:6]
    atpg = SequentialATPG(circuit, backtrack_limit=25, max_frames=5)
    for fault in faults:
        result = atpg.generate(fault)
        if result.status == "detected":
            assert fault_simulate(circuit, result.sequence, [fault]) \
                == {0}, fault


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_atpg_untestable_claims_resist_random_search(seed):
    from repro.atpg import SequentialATPG, collapse_faults
    from repro.sim import fault_simulate

    circuit = _random_small(seed)
    faults = collapse_faults(circuit)[:20]
    atpg = SequentialATPG(circuit, backtrack_limit=60, max_frames=5)
    untestable = [f for f in faults
                  if atpg.generate(f).status == "untestable"]
    if not untestable:
        return
    rng = random.Random(seed ^ 0x5A5A)
    names = [circuit.nodes[i].name for i in circuit.inputs]
    for _ in range(60):
        seq = [{n: rng.randint(0, 1) for n in names} for _ in range(12)]
        assert fault_simulate(circuit, seq, untestable) == set()


# ---------------------------------------------------------------------------
# compiled-backend packed-plane invariants
# ---------------------------------------------------------------------------

def _batch_trace(circuit, seq, faults, width, seed):
    """Run every batch traced; returns per-batch detection-mask tapes."""
    from repro.sim.compiled import CompiledFaultSimulator

    sim = CompiledFaultSimulator(circuit, width=width)
    good = sim._good_output_frames(seq)
    tapes = []
    for start in range(0, len(faults), width):
        batch = faults[start:start + width]
        masks = []

        def on_frame(frame, m0, m1, mask, masks=masks):
            # A machine sees 0, 1 or X -- never 0 and 1 at once.
            for nid in range(len(m0)):
                assert m0[nid] & m1[nid] == 0, (seed, frame, nid)
            masks.append(mask)

        sim.run_batch(seq, batch, good, on_frame=on_frame)
        tapes.append(masks)
    return tapes


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_compiled_planes_disjoint_and_dropping_monotone(seed):
    """m0 & m1 == 0 everywhere; dropped machines never re-detect.

    The detection mask may only gain bits frame over frame: once a
    machine's fault is detected (dropped) nothing later in the sequence
    can return it to the undetected pool or count it again.
    """
    from repro.atpg import collapse_faults

    circuit = _random_small(seed)
    rng = random.Random(seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    seq = [{n: rng.randint(0, 1) for n in inputs if rng.random() < 0.9}
           for _ in range(6)]
    faults = collapse_faults(circuit)
    for masks in _batch_trace(circuit, seq, faults, width=8, seed=seed):
        for before, after in zip(masks, masks[1:]):
            assert after & before == before, seed


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_compiled_pattern_masks_match_scalar_eventsim(seed):
    """Each packed pattern column equals a scalar eventsim evaluation."""
    from repro.sim.compiled import compile_circuit
    from repro.sim.parallel import random_source_masks

    circuit = _random_small(seed)
    rng = random.Random(seed)
    width = 8
    source = random_source_masks(circuit, width, rng)
    masks = compile_circuit(circuit).simulate_patterns(source, width)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    ffs = [circuit.nodes[f].name for f in circuit.ffs]
    for i in range(width):
        vec = {n: (source[circuit.nid(n)] >> i) & 1 for n in inputs}
        init = {n: (source[circuit.nid(n)] >> i) & 1 for n in ffs}
        frame = simulate_sequence(circuit, [vec], init_state=init)[0]
        for node in circuit.nodes:
            if node.is_combinational:
                assert (masks[node.nid] >> i) & 1 == frame[node.name], \
                    (seed, i, node.name)


@settings(**SETTINGS)
@given(st.integers(0, 10_000))
def test_bench_roundtrip_random(seed):
    from repro.circuit.bench import bench_text, parse_bench

    circuit = _random_small(seed)
    rebuilt = parse_bench(bench_text(circuit))
    rng = random.Random(seed)
    inputs = [circuit.nodes[i].name for i in circuit.inputs]
    seq = [{n: rng.randint(0, 1) for n in inputs} for _ in range(5)]
    assert simulate_sequence(circuit, seq) == simulate_sequence(rebuilt, seq)
