"""Relation database: canonical form, dedup, domains, queries."""

import pytest

from repro.circuit import CircuitBuilder, figure1
from repro.circuit.gates import ONE, ZERO
from repro.core.relations import RelationDB, canonical


def db_circuit():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "buf", "a")
    b.gate("g2", "not", "a")
    b.dff("f1", "g1")
    b.dff("f2", "g2")
    b.dff("f3", "g1", clock="other")
    b.output("g1")
    return b.build()


def test_canonical_is_contrapositive_invariant():
    key1 = canonical(3, 1, 7, 0)
    key2 = canonical(7, 1, 3, 0)  # contrapositive of the first
    assert key1 == key2
    assert canonical(3, 0, 7, 1) == canonical(7, 0, 3, 1)


def test_add_and_dedup():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2 = c.nid("f1"), c.nid("f2")
    assert db.add(f1, 1, f2, 0)
    assert not db.add(f1, 1, f2, 0)          # exact duplicate
    assert not db.add(f2, 1, f1, 0)          # contrapositive duplicate
    assert len(db) == 1


def test_self_relation_rejected():
    c = db_circuit()
    db = RelationDB(c)
    assert not db.add(c.nid("f1"), 1, c.nid("f1"), 0)


def test_cross_domain_ff_pair_rejected():
    """Paper section 3.3.2: relations across clock classes are invalid."""
    c = db_circuit()
    db = RelationDB(c)
    assert not db.add(c.nid("f1"), 1, c.nid("f3"), 0)
    assert db.add(c.nid("f1"), 1, c.nid("f2"), 0)  # same class is fine
    # Gate-FF across is fine (gates are not clocked).
    assert db.add(c.nid("g1"), 1, c.nid("f3"), 1)


def test_implication_lookup_both_directions():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2 = c.nid("f1"), c.nid("f2")
    db.add(f1, 1, f2, 0)
    assert (f2, 0) in db.implications_of(f1, 1)
    # Contrapositive: f2=1 -> f1=0.
    assert (f1, 0) in db.implications_of(f2, 1)
    assert db.implications_of(f1, 0) == []


def test_warmup_respected_and_tightened():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2 = c.nid("f1"), c.nid("f2")
    db.add(f1, 1, f2, 0, warmup=3)
    assert db.implications_at(f1, 1, 2) == []
    assert (f2, 0) in db.implications_at(f1, 1, 3)
    # Re-learning the same fact earlier tightens the warm-up.
    db.add(f1, 1, f2, 0, warmup=1)
    assert (f2, 0) in db.implications_at(f1, 1, 1)


def test_closure():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2, g1 = c.nid("f1"), c.nid("f2"), c.nid("g1")
    db.add(f1, 1, f2, 0)
    db.add(f2, 0, g1, 1)
    closure = db.closure_of(f1, 1)
    assert closure == {f2: 0, g1: 1}


def test_closure_contradiction_raises():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2, g1 = c.nid("f1"), c.nid("f2"), c.nid("g1")
    db.add(f1, 1, f2, 0)
    db.add(f1, 1, g1, 0)
    db.add(f2, 0, g1, 1)
    with pytest.raises(ValueError):
        db.closure_of(f1, 1)


def test_kind_classification_and_counts():
    c = db_circuit()
    db = RelationDB(c)
    db.add(c.nid("f1"), 1, c.nid("f2"), 0)            # ff_ff
    db.add(c.nid("g1"), 1, c.nid("f2"), 0)            # gate_ff
    db.add(c.nid("g1"), 0, c.nid("g2"), 1)            # gate_gate
    counts = db.counts()
    assert counts == {"ff_ff": 1, "gate_ff": 1, "gate_gate": 1}
    assert len(db.invalid_state_relations()) == 1


def test_sequential_only_counts():
    c = db_circuit()
    db = RelationDB(c)
    db.add(c.nid("f1"), 1, c.nid("f2"), 0, sequential=False, warmup=0)
    db.add(c.nid("g1"), 1, c.nid("f2"), 0, sequential=True)
    assert db.counts(sequential_only=True) == {
        "ff_ff": 0, "gate_ff": 1, "gate_gate": 0}


def test_has_by_name_and_contains():
    c = db_circuit()
    db = RelationDB(c)
    db.add(c.nid("f1"), 1, c.nid("f2"), 0)
    assert db.has("f1", 1, "f2", 0)
    assert db.has("f2", 1, "f1", 0)   # contrapositive
    assert not db.has("f1", 0, "f2", 0)
    assert (c.nid("f1"), 1, c.nid("f2"), 0) in db


def test_violated_by():
    c = db_circuit()
    db = RelationDB(c)
    f1, f2 = c.nid("f1"), c.nid("f2")
    db.add(f1, 1, f2, 0, warmup=2)
    assert db.violated_by({f1: 1, f2: 1}) is not None
    assert db.violated_by({f1: 1, f2: 0}) is None
    assert db.violated_by({f1: 0, f2: 1}) is None
    # Warm-up: at frame 1 the relation is not yet binding.
    assert db.violated_by({f1: 1, f2: 1}, frame=1) is None
    assert db.violated_by({f1: 1, f2: 1}, frame=2) is not None


def test_dump_readable():
    c = figure1()
    db = RelationDB(c)
    db.add(c.nid("F6"), 1, c.nid("F4"), 0)
    lines = db.dump()
    assert len(lines) == 1
    assert "F4" in lines[0] and "F6" in lines[0]
