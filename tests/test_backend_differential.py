"""Differential harness: compiled and array backends vs the reference.

The compiled backend (:mod:`repro.sim.compiled`) re-implements the two
simulation hot paths with generated straight-line code; the array
backend (:mod:`repro.sim.array_backend`) lowers them again to
whole-circuit bitwise operations (numpy word matrices when available,
wide Python bigints otherwise).  Their contract is *bit-identical
results*, so every case here runs all backends on the same input and
requires exact equality of

* packed pattern masks for every node,
* fault-detection index sets (exercising batching, pin faults, FF
  faults and three-valued sequences), and
* :class:`~repro.atpg.driver.ATPGStats` counts for whole ATPG runs.

Cases cover plain random circuits across sizes, retimed circuits and
multi-clock-domain industrial-like circuits (200+ generated netlists).
The array backend runs on *both* substrates for every case
(``use_numpy=False`` is exactly the code path a numpy-less install
takes), with batch widths cycling through {1, 7, 64, 128, 257} to
cross word boundaries (64, 128) and partial-word tails (7, 257).
"""

import os
import random
import subprocess
import sys
import zlib

import pytest

import repro
from repro.atpg.driver import run_atpg
from repro.atpg.faults import collapse_faults, full_fault_list
from repro.circuit import industrial_like, random_circuit, retime_circuit
from repro.sim.array_backend import (
    HAVE_NUMPY,
    ArrayFaultSimulator,
    simulate_patterns_array,
)
from repro.sim.compiled import CompiledFaultSimulator, compile_circuit
from repro.sim.faultsim import FaultSimulator
from repro.sim.parallel import random_source_masks, simulate_patterns

#: Array-backend batch widths, cycled per case so the whole corpus
#: crosses every boundary class without multiplying its runtime.
ARRAY_WIDTHS = (1, 7, 64, 128, 257)

# ----------------------------------------------------------------------
# case generation: (kind, seed) -> circuit; 200 cases across shapes
# ----------------------------------------------------------------------
_SIZES = (
    dict(n_inputs=3, n_outputs=2, n_ffs=2, n_gates=10),
    dict(n_inputs=4, n_outputs=3, n_ffs=4, n_gates=22),
    dict(n_inputs=5, n_outputs=4, n_ffs=6, n_gates=40),
    dict(n_inputs=6, n_outputs=4, n_ffs=8, n_gates=64),
)

CASES = ([("random", seed) for seed in range(120)]
         + [("retimed", seed) for seed in range(40)]
         + [("industrial", seed) for seed in range(40)])


def _build(kind, seed):
    if kind == "random":
        params = _SIZES[seed % len(_SIZES)]
        return random_circuit(f"diff_r{seed}", seed=seed, **params)
    if kind == "retimed":
        params = _SIZES[seed % len(_SIZES)]
        base = random_circuit(f"diff_b{seed}", seed=seed, **params)
        return retime_circuit(base, moves=1 + seed % 3,
                              name=f"diff_rt{seed}")
    # Multi-clock-domain circuits with partial set/reset and multi-port
    # latches -- the paper's section 3.3 "real circuit" features.
    return industrial_like(f"diff_i{seed}", n_domains=2 + seed % 3,
                           n_ffs=8 + (seed % 4) * 4,
                           n_gates=50 + (seed % 3) * 20, seed=seed)


def _sequence(circuit, rng, length, x_rate=0.15):
    """Random binary sequence with occasional unspecified (X) inputs."""
    names = [circuit.nodes[i].name for i in circuit.inputs]
    return [{name: rng.randint(0, 1) for name in names
             if rng.random() >= x_rate}
            for _ in range(length)]


@pytest.mark.parametrize("kind,seed", CASES)
def test_backends_identical(kind, seed):
    """Node masks and detection sets agree on every generated case."""
    circuit = _build(kind, seed)
    compiled = compile_circuit(circuit)
    rng = random.Random(zlib.crc32(kind.encode()) ^ seed)

    # Packed pattern masks, node for node, across all three backends
    # (the array backend on both substrates).
    width = 1 + rng.randrange(64)
    source = random_source_masks(circuit, width, rng)
    masks = simulate_patterns(circuit, source, width)
    assert compiled.simulate_patterns(source, width) == masks
    assert simulate_patterns_array(circuit, source, width) == masks
    assert simulate_patterns_array(circuit, source, width,
                                   use_numpy=False) == masks

    # Fault-detection sets over the collapsed list, odd word widths to
    # exercise batch boundaries (width 1 = one machine per word).
    faults = collapse_faults(circuit)
    sequence = _sequence(circuit, rng, length=4 + rng.randrange(6))
    sim_width = 1 if seed % 10 == 0 else 2 + rng.randrange(24)
    reference = FaultSimulator(circuit, width=sim_width)
    fast = CompiledFaultSimulator(circuit, width=sim_width)
    detected = reference.detected(sequence, faults)
    assert fast.detected(sequence, faults) == detected

    # The array backend at its own width ladder -- detection sets are
    # width-independent, so every rung must reproduce the reference set
    # exactly, ghost columns and batch tails included.
    array_width = ARRAY_WIDTHS[seed % len(ARRAY_WIDTHS)]
    assert ArrayFaultSimulator(circuit, width=array_width).detected(
        sequence, faults) == detected
    assert ArrayFaultSimulator(
        circuit, width=array_width, use_numpy=False).detected(
        sequence, faults) == detected


@pytest.mark.parametrize("seed", range(8))
def test_backends_identical_uncollapsed(seed):
    """The full (uncollapsed) fault universe agrees too."""
    circuit = _build("industrial", seed + 100)
    rng = random.Random(seed)
    faults = full_fault_list(circuit)
    sequence = _sequence(circuit, rng, length=8)
    detected = FaultSimulator(circuit, width=32).detected(
        sequence, faults)
    assert CompiledFaultSimulator(circuit, width=32).detected(
        sequence, faults) == detected
    array_width = ARRAY_WIDTHS[seed % len(ARRAY_WIDTHS)]
    assert ArrayFaultSimulator(circuit, width=array_width).detected(
        sequence, faults) == detected
    assert ArrayFaultSimulator(
        circuit, width=array_width, use_numpy=False).detected(
        sequence, faults) == detected


def _stats_key(stats):
    """Everything on ATPGStats that must not depend on the backend."""
    return (stats.total_faults, stats.detected, stats.untestable,
            stats.aborted, stats.collateral, stats.decisions,
            stats.backtracks, stats.sequences_total, stats.sequences)


@pytest.mark.parametrize("kind,seed", [("random", s) for s in range(8)]
                         + [("retimed", s) for s in range(2)]
                         + [("industrial", s) for s in range(2)])
def test_atpg_stats_identical(kind, seed):
    """Whole ATPG runs produce identical statistics on every backend."""
    circuit = _build(kind, seed)
    rows = {}
    for backend in ("reference", "compiled", "array"):
        rows[backend] = run_atpg(
            circuit, mode="none", backtrack_limit=8, max_frames=4,
            max_faults=24, keep_sequences=True, sim_backend=backend)
    assert _stats_key(rows["reference"]) == _stats_key(rows["compiled"])
    assert _stats_key(rows["reference"]) == _stats_key(rows["array"])


def test_numpy_substrates_covered():
    """The harness above is only a three-backend proof if the two array
    legs actually differ; when numpy is importable the default leg must
    be on numpy (``use_numpy=False`` supplied the bigint leg)."""
    circuit = _build("random", 0)
    sim = ArrayFaultSimulator(circuit)
    assert sim.use_numpy == HAVE_NUMPY


def test_numpy_disable_env_forces_bigint_fallback():
    """``REPRO_ARRAY_DISABLE_NUMPY`` is the numpy-absent leg in CI: a
    fresh interpreter with it set must import the array backend on the
    bigint substrate and still agree with the reference engine."""
    src_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    code = (
        "from repro.sim.array_backend import HAVE_NUMPY, "
        "ArrayFaultSimulator\n"
        "from repro.sim.faultsim import FaultSimulator\n"
        "from repro.circuit import s27\n"
        "from repro.atpg.faults import collapse_faults\n"
        "assert not HAVE_NUMPY\n"
        "circuit = s27()\n"
        "sim = ArrayFaultSimulator(circuit)\n"
        "assert not sim.use_numpy\n"
        "faults = collapse_faults(circuit)\n"
        "names = [circuit.nodes[i].name for i in circuit.inputs]\n"
        "seq = [{name: (t + i) % 2 for i, name in enumerate(names)}\n"
        "       for t in range(6)]\n"
        "assert (sim.detected(seq, faults)\n"
        "        == FaultSimulator(circuit).detected(seq, faults))\n"
        "print('ok')\n"
    )
    env = dict(os.environ,
               REPRO_ARRAY_DISABLE_NUMPY="1",
               PYTHONPATH=src_root)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"
