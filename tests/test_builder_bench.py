"""CircuitBuilder resolution rules and .bench round-tripping."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType
from repro.circuit.bench import bench_text, parse_bench
from repro.circuit.builder import parse_gate_type
from repro.circuit import figure1, industrial_like, s27
from repro.sim import simulate_sequence


def test_gate_type_aliases():
    assert parse_gate_type("AND") is GateType.AND
    assert parse_gate_type("inv") is GateType.NOT
    assert parse_gate_type("buff") is GateType.BUF
    assert parse_gate_type(GateType.NOR) is GateType.NOR
    with pytest.raises(CircuitError):
        parse_gate_type("mux")


def test_forward_references_resolve():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g2", "not", "g1")   # refers forward
    b.gate("g1", "buf", "a")
    b.output("g2")
    c = b.build()
    assert c.node("g2").fanins == [c.nid("g1")]


def test_ff_feedback_loop():
    b = CircuitBuilder()
    b.inputs("en")
    b.gate("nxt", "xor", "q", "en")
    b.dff("q", "nxt")
    b.output("q")
    c = b.build()
    assert c.node("q").fanins == [c.nid("nxt")]


def test_undefined_signal_reported():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g", "and", "a", "ghost")
    b.output("g")
    with pytest.raises(CircuitError, match="ghost"):
        b.build()


def test_combinational_cycle_reported():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g1", "and", "a", "g2")
    b.gate("g2", "or", "g1", "a")
    b.output("g2")
    with pytest.raises(CircuitError, match="cycle"):
        b.build()


def test_duplicate_signal_rejected():
    b = CircuitBuilder()
    b.inputs("a")
    with pytest.raises(CircuitError):
        b.inputs("a")


def test_undefined_output_rejected():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g", "buf", "a")
    b.output("nope")
    with pytest.raises(CircuitError, match="nope"):
        b.build()


# ---------------------------------------------------------------------------
# bench format
# ---------------------------------------------------------------------------

EXAMPLE = """
# a comment
INPUT(I1)
INPUT(I2)
OUTPUT(G3)
F1 = DFF(G2)
G1 = NAND(I1, F1)
G2 = NOR(G1, I2)
G3 = NOT(G2)
"""


def test_parse_bench_basic():
    c = parse_bench(EXAMPLE, name="toy")
    assert c.stats()["inputs"] == 2
    assert c.stats()["ffs"] == 1
    assert c.node("G1").gate_type is GateType.NAND
    assert c.node("F1").fanins == [c.nid("G2")]


def test_parse_bench_bad_line():
    with pytest.raises(CircuitError, match="unparsable"):
        parse_bench("INPUT(a)\nfoo bar baz\n")


def test_parse_bench_dff_arity():
    with pytest.raises(CircuitError):
        parse_bench("INPUT(a)\nINPUT(b)\nf = DFF(a, b)\nOUTPUT(f)")


def test_ff_attribute_comments_roundtrip():
    src = """
INPUT(a)
OUTPUT(g)
# @ff f clock=clkB phase=1 set=unconstrained reset=none ports=2
f = LATCH(g)
g = NOT(a)
"""
    c = parse_bench(src)
    node = c.node("f")
    assert node.gate_type is GateType.LATCH
    assert node.clock == "clkB"
    assert node.phase == 1
    assert node.set_kind == "unconstrained"
    assert node.num_ports == 2
    # Write and re-read: attributes survive.
    c2 = parse_bench(bench_text(c))
    node2 = c2.node("f")
    assert (node2.clock, node2.phase, node2.set_kind, node2.num_ports) == \
        ("clkB", 1, "unconstrained", 2)


def test_bad_ff_attribute_rejected():
    with pytest.raises(CircuitError):
        parse_bench("# @ff f wibble=3\nINPUT(a)\nf = DFF(a)\nOUTPUT(f)")


@pytest.mark.parametrize("make", [figure1, s27,
                                  lambda: industrial_like(n_ffs=12,
                                                          n_gates=60)])
def test_roundtrip_preserves_behaviour(make):
    """write -> parse gives a circuit with identical simulation traces."""
    import random

    original = make()
    rebuilt = parse_bench(bench_text(original), name=original.name)
    assert original.stats() == rebuilt.stats()
    rng = random.Random(7)
    inputs = [original.nodes[i].name for i in original.inputs]
    seq = [{n: rng.randint(0, 1) for n in inputs} for _ in range(6)]
    assert simulate_sequence(original, seq) == simulate_sequence(rebuilt, seq)
