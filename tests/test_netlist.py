"""Circuit construction, validation and structural queries."""

import pytest

from repro.circuit import Circuit, CircuitBuilder, CircuitError, GateType
from repro.circuit.netlist import Node


def small():
    b = CircuitBuilder("small")
    b.inputs("a", "b")
    b.gate("g1", "and", "a", "b")
    b.gate("g2", "not", "g1")
    b.dff("f1", "g2")
    b.gate("g3", "or", "f1", "a")
    b.output("g3")
    return b.build()


def test_basic_stats():
    c = small()
    assert c.stats() == {"nodes": 6, "inputs": 2, "outputs": 1,
                         "ffs": 1, "gates": 3, "stems": 1}
    assert c.num_gates == 3
    assert c.num_ffs == 1


def test_name_lookup():
    c = small()
    assert c.node("g1").gate_type is GateType.AND
    assert c.node(c.nid("f1")).is_sequential
    assert "g1" in c
    assert "zz" not in c
    with pytest.raises(CircuitError):
        c.nid("zz")


def test_duplicate_name_rejected():
    c = Circuit()
    c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_input("a")


def test_arity_validation():
    c = Circuit()
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_gate("bad", GateType.NOT, [a, a])
    with pytest.raises(CircuitError):
        c.add_gate("bad2", GateType.AND, [])
    with pytest.raises(CircuitError):
        c.add_gate("bad3", GateType.TIE0, [a])


def test_sequential_types_enforced():
    c = Circuit()
    a = c.add_input("a")
    with pytest.raises(CircuitError):
        c.add_ff("f", a, gate_type=GateType.AND)
    with pytest.raises(CircuitError):
        c.add_ff("f", a, set_kind="bogus")
    with pytest.raises(CircuitError):
        c.add_ff("f", a, num_ports=0)


def test_combinational_cycle_detected():
    c = Circuit()
    a = c.add_input("a")
    g1 = c.add_gate("g1", GateType.AND, [a, a])
    g2 = c.add_gate("g2", GateType.OR, [g1, g1])
    c.nodes[g1].fanins = [a, g2]  # create a cycle
    with pytest.raises(CircuitError, match="cycle"):
        c.freeze()


def test_sequential_loop_is_fine():
    b = CircuitBuilder("loop")
    b.inputs("a")
    b.gate("g", "or", "a", "f")
    b.dff("f", "g")
    b.output("g")
    c = b.build()
    assert c.level[c.nid("g")] >= 1


def test_levelization_orders_fanins_first():
    c = small()
    position = {nid: i for i, nid in enumerate(c.topo_order)}
    for nid in c.topo_order:
        for fanin in c.nodes[nid].fanins:
            if c.nodes[fanin].is_combinational:
                assert position[fanin] < position[nid]


def test_fanout_stems():
    c = small()
    stems = {c.nodes[s].name for s in c.fanout_stems()}
    assert stems == {"a"}


def test_transitive_fanout_crosses_ffs():
    c = small()
    fanout = {c.nodes[n].name for n in c.transitive_fanout(c.nid("g1"))}
    assert fanout == {"g2", "f1", "g3"}


def test_cone_support():
    c = small()
    support = {c.nodes[n].name for n in c.cone_support(c.nid("g3"))}
    assert support == {"f1", "a"}
    support_g2 = {c.nodes[n].name for n in c.cone_support(c.nid("g2"))}
    assert support_g2 == {"a", "b"}


def test_domain_key_distinguishes_latch():
    ff = Node(0, "f", GateType.DFF)
    latch = Node(1, "l", GateType.LATCH)
    assert ff.domain_key() != latch.domain_key()
    assert ff.domain_key()[0] == "clk"


def test_frozen_circuit_rejects_construction():
    c = small()
    with pytest.raises(CircuitError):
        c.add_input("new")


def test_mark_output_idempotent():
    c = Circuit()
    a = c.add_input("a")
    g = c.add_gate("g", GateType.BUF, [a])
    c.mark_output(g)
    c.mark_output(g)
    assert c.outputs == [g]


def test_ff_needs_exactly_one_fanin():
    c = Circuit()
    a = c.add_input("a")
    c.add_ff("f")  # no data bound
    with pytest.raises(CircuitError):
        c.freeze()


def test_ff_mask():
    c = small()
    mask = c.ff_mask()
    assert mask[c.nid("f1")] is True
    assert mask[c.nid("g1")] is False
