"""Differential harness: incremental PODEM engine vs reference engine.

The incremental engine (:mod:`repro.atpg.incremental`) re-implements the
PODEM search state machine with event-driven window updates and a
trail/undo log.  Its contract is *bit-identical results*, so every case
here runs both engines on the same input and requires exact equality of

* per-fault :class:`~repro.atpg.engine.TestResult`\\ s -- status, the
  generated sequence, backtrack/decision counts and the detected-at
  window -- across 200+ generated circuits (plain random, retimed and
  multi-clock-domain industrial-like) in every learn mode;
* whole-run :class:`~repro.atpg.driver.ATPGStats` including collateral
  drops and kept sequences;
* the trailed window state itself: a decide followed by a backtrack
  must restore the exact prior planes (property test).

The canonical-faulty-plane invariant the incremental engine's state
comparisons rely on is pinned down here too (see
``test_faulty_plane_is_canonical``).
"""

import random
import zlib

import pytest

from repro.atpg import (
    IncrementalATPG,
    SequentialATPG,
    collapse_faults,
    make_atpg,
    run_atpg,
)
from repro.atpg.driver import ATPGStats
from repro.circuit import industrial_like, random_circuit, retime_circuit
from repro.core import learn

MODES = ("none", "known", "forbidden")

_SIZES = (
    dict(n_inputs=3, n_outputs=2, n_ffs=2, n_gates=10),
    dict(n_inputs=4, n_outputs=3, n_ffs=4, n_gates=22),
    dict(n_inputs=5, n_outputs=4, n_ffs=6, n_gates=40),
    dict(n_inputs=6, n_outputs=4, n_ffs=8, n_gates=64),
)

#: 204 circuits; each runs one learn mode (rotating), so every mode
#: sees every circuit shape and all three paths of the incremental
#: engine (event wavefront, known-rebuild, forbidden-rebuild).
CASES = ([("random", seed) for seed in range(104)]
         + [("retimed", seed) for seed in range(50)]
         + [("industrial", seed) for seed in range(50)])


def _build(kind, seed):
    if kind == "random":
        params = _SIZES[seed % len(_SIZES)]
        return random_circuit(f"ediff_r{seed}", seed=seed, **params)
    if kind == "retimed":
        params = _SIZES[seed % len(_SIZES)]
        base = random_circuit(f"ediff_b{seed}", seed=seed, **params)
        return retime_circuit(base, moves=1 + seed % 3,
                              name=f"ediff_rt{seed}")
    return industrial_like(f"ediff_i{seed}", n_domains=2 + seed % 3,
                           n_ffs=8 + (seed % 4) * 4,
                           n_gates=50 + (seed % 3) * 20, seed=seed)


def _result_key(result):
    return (result.status, result.sequence, result.backtracks,
            result.decisions, result.frames_used)


@pytest.mark.parametrize("kind,seed", CASES)
def test_engines_identical_per_fault(kind, seed):
    """Both engines emit the same TestResult for every fault."""
    circuit = _build(kind, seed)
    mode = MODES[(zlib.crc32(kind.encode()) + seed) % len(MODES)]
    relations = None
    if mode != "none":
        relations = learn(circuit).relations
    faults = collapse_faults(circuit)
    rng = random.Random(seed)
    if len(faults) > 10:
        faults = rng.sample(faults, 10)
    reference = SequentialATPG(circuit, relations=relations, mode=mode,
                               backtrack_limit=8, max_frames=4)
    incremental = IncrementalATPG(circuit, relations=relations,
                                  mode=mode, backtrack_limit=8,
                                  max_frames=4)
    for fault in faults:
        expect = _result_key(reference.generate(fault))
        got = _result_key(incremental.generate(fault))
        assert got == expect, (mode, fault.describe(circuit))


def _stats_key(stats: ATPGStats):
    return (stats.total_faults, stats.detected, stats.untestable,
            stats.aborted, stats.collateral, stats.decisions,
            stats.backtracks, stats.sequences_total, stats.sequences)


@pytest.mark.parametrize("kind,seed,mode",
                         [(k, s, m)
                          for k, s in (("random", 3), ("random", 7),
                                       ("retimed", 1), ("retimed", 4),
                                       ("industrial", 2),
                                       ("industrial", 5))
                          for m in MODES])
def test_atpg_stats_identical(kind, seed, mode):
    """Whole ATPG runs (with dropping) match stat for stat."""
    circuit = _build(kind, seed)
    learned = learn(circuit) if mode != "none" else None
    rows = {}
    for engine in ("reference", "incremental"):
        rows[engine] = run_atpg(
            circuit, learned=learned, mode=mode, backtrack_limit=8,
            max_frames=4, max_faults=20, keep_sequences=True,
            atpg_engine=engine)
    assert _stats_key(rows["reference"]) == _stats_key(rows["incremental"])


def test_make_atpg_factory():
    circuit = _build("random", 0)
    assert isinstance(make_atpg(circuit, engine="reference"),
                      SequentialATPG)
    assert isinstance(make_atpg(circuit, engine="incremental"),
                      IncrementalATPG)
    with pytest.raises(ValueError):
        make_atpg(circuit, engine="turbo")


# ---------------------------------------------------------------------------
# trail / undo property tests
# ---------------------------------------------------------------------------

def _snapshot(state, window):
    return ([list(frame) for frame in state.gv[:window]],
            [dict(frame) for frame in state.fv[:window]],
            [dict(frame) for frame in state.forb[:window]],
            [set(frame) for frame in state.dset[:window]],
            state.conflict)


@pytest.mark.parametrize("kind,seed,mode",
                         [("random", 11, "none"),
                          ("random", 12, "known"),
                          ("industrial", 3, "forbidden"),
                          ("retimed", 9, "none"),
                          ("retimed", 10, "known")])
def test_decide_backtrack_restores_exact_state(kind, seed, mode):
    """decide -> backtrack returns the trailed window bit for bit."""
    circuit = _build(kind, seed)
    relations = learn(circuit).relations if mode != "none" else None
    engine = IncrementalATPG(circuit, relations=relations, mode=mode,
                             backtrack_limit=8, max_frames=4)
    faults = collapse_faults(circuit)[:4]
    rng = random.Random(seed)
    window = 3
    for fault in faults:
        state = engine._prepare(fault, window)
        if state.conflict:
            continue
        baseline = _snapshot(state, window)
        snapshots = [baseline]
        applied = []
        # Random walk of decisions on unassigned PIs (the search never
        # decides on a conflicted state, so neither does the walk)...
        for _step in range(6):
            if state.conflict:
                break
            frame = rng.randrange(window)
            free = [pid for pid in circuit.inputs
                    if (frame, pid) not in engine._assignments]
            if not free:
                break
            pid = rng.choice(free)
            value = rng.randint(0, 1)
            engine._assignments[(frame, pid)] = value
            engine._apply(fault, (frame, pid), value)
            applied.append((frame, pid))
            snapshots.append(_snapshot(state, window))
        # ...then unwind; every pop must restore the exact prior state.
        while applied:
            frame, pid = applied.pop()
            del engine._assignments[(frame, pid)]
            engine._undo()
            snapshots.pop()
            assert _snapshot(state, window) == snapshots[-1]
        assert _snapshot(state, window) == baseline
        # Leave the engine clean for the next fault.
        engine._state = None
        engine._assignments = {}
        engine._trail = []


def test_incremental_state_matches_reference_simulation():
    """After any decide sequence the trailed window equals a from-
    scratch reference simulation of the same assignments."""
    circuit = _build("industrial", 7)
    reference = SequentialATPG(circuit, backtrack_limit=8, max_frames=4)
    engine = IncrementalATPG(circuit, backtrack_limit=8, max_frames=4)
    faults = collapse_faults(circuit)[:6]
    rng = random.Random(0xBEEF)
    window = 3
    for fault in faults:
        state = engine._prepare(fault, window)
        cone = reference._fault_cone(fault)
        for _step in range(5):
            frame = rng.randrange(window)
            free = [pid for pid in circuit.inputs
                    if (frame, pid) not in engine._assignments]
            if not free:
                break
            pid = rng.choice(free)
            value = rng.randint(0, 1)
            engine._assignments[(frame, pid)] = value
            engine._apply(fault, (frame, pid), value)
            oracle = reference._simulate(fault, window,
                                         engine._assignments, cone)
            for f in range(window):
                assert state.gv[f] == oracle.gv[f], (fault, f)
                assert state.fv[f] == oracle.fv[f], (fault, f)
                assert state.forb[f] == oracle.forb[f], (fault, f)
                expect_d = {nid for nid in range(len(circuit.nodes))
                            if oracle.is_d(f, nid)}
                assert state.dset[f] == expect_d, (fault, f)
        engine._state = None
        engine._assignments = {}
        engine._trail = []


# ---------------------------------------------------------------------------
# canonical faulty plane (regression for the fv hygiene bug)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(6))
def test_faulty_plane_is_canonical(seed):
    """``fv`` never keeps an entry equal to the good value.

    Before the fix, entries that became equal to the good value after a
    ``_apply_known`` re-evaluation were never deleted, so the D-frontier
    could walk stale non-differences; the incremental engine's frame
    equality checks also require the canonical form.  Only the faulted
    node itself is pinned (``_force_site`` / stuck FF capture) and may
    coincide with its good value.
    """
    circuit = _build("random", seed + 30)
    relations = learn(circuit).relations
    engine = SequentialATPG(circuit, relations=relations, mode="known",
                            backtrack_limit=8, max_frames=4)
    rng = random.Random(seed)
    window = 3
    for fault in collapse_faults(circuit)[:8]:
        cone = engine._fault_cone(fault)
        assignments = {
            (rng.randrange(window), pid): rng.randint(0, 1)
            for pid in circuit.inputs if rng.random() < 0.5}
        state = engine._simulate(fault, window, assignments, cone)
        for frame in range(window):
            gv = state.gv[frame]
            for nid, value in state.fv[frame].items():
                if nid == fault.node:
                    continue
                assert value != gv[nid], (
                    f"stale fv entry {nid}={value} equals good value "
                    f"at frame {frame} for {fault.describe(circuit)}")
