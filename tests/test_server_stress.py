"""N-thread hammer on ``/v1/execute``: the lock-discipline satellite.

The R003 rule proves the server's shared counters are only touched
under ``stats_lock`` *statically*; this test proves it dynamically --
N threads x M requests each, and afterwards ``requests_served`` equals
exactly N*M with ``requests_failed`` exactly the number of deliberate
bad requests.  A torn ``+= 1`` shows up as a shortfall here.
"""

import http.client
import json
import threading
from contextlib import closing, contextmanager

from repro.api import ListRequest, make_server

N_THREADS = 8
M_REQUESTS = 25


@contextmanager
def running_server():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def post(server, body: bytes):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("POST", "/v1/execute", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read()


def test_counter_totals_exact_under_contention():
    # `list` is the cheapest request: the hammer measures counter
    # integrity, not simulator throughput.
    good = json.dumps(ListRequest().to_dict()).encode()
    statuses = []
    lock = threading.Lock()

    with running_server() as server:
        def hammer():
            mine = []
            for _ in range(M_REQUESTS):
                status, _body = post(server, good)
                mine.append(status)
            with lock:
                statuses.extend(mine)

        threads = [threading.Thread(target=hammer)
                   for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        health = server.health()

    assert len(statuses) == N_THREADS * M_REQUESTS
    assert all(status == 200 for status in statuses)
    assert health["requests_served"] == N_THREADS * M_REQUESTS
    assert health["requests_failed"] == 0


def test_failed_requests_counted_exactly():
    bad = b'{"kind": "no-such-kind", "v": 1}'
    good = json.dumps(ListRequest().to_dict()).encode()

    with running_server() as server:
        def mix(n_bad, n_good):
            for _ in range(n_bad):
                post(server, bad)
            for _ in range(n_good):
                post(server, good)

        threads = [threading.Thread(target=mix, args=(5, 5))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        health = server.health()

    assert health["requests_served"] == 4 * 10
    assert health["requests_failed"] == 4 * 5
