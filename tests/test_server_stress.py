"""N-thread hammer on ``/v1/execute``: the lock-discipline satellite.

The R003 rule proves the server's shared counters are only touched
under ``stats_lock`` *statically*; this test proves it dynamically --
N threads x M requests each, and afterwards ``requests_served`` equals
exactly N*M with ``requests_failed`` exactly the number of deliberate
bad requests.  A torn ``+= 1`` shows up as a shortfall here.

The stream leg extends the hammer to vanished readers: clients that
open ``/v1/stream`` and slam the connection shut mid-run must neither
wedge a worker thread nor corrupt the served/failed ledger.
"""

import http.client
import json
import threading
import time
from contextlib import closing, contextmanager

from repro.api import ListRequest, make_server

N_THREADS = 8
M_REQUESTS = 25


@contextmanager
def running_server():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def post(server, body: bytes):
    host, port = server.server_address[:2]
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("POST", "/v1/execute", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read()


def test_counter_totals_exact_under_contention():
    # `list` is the cheapest request: the hammer measures counter
    # integrity, not simulator throughput.
    good = json.dumps(ListRequest().to_dict()).encode()
    statuses = []
    lock = threading.Lock()

    with running_server() as server:
        def hammer():
            mine = []
            for _ in range(M_REQUESTS):
                status, _body = post(server, good)
                mine.append(status)
            with lock:
                statuses.extend(mine)

        threads = [threading.Thread(target=hammer)
                   for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        health = server.health()

    assert len(statuses) == N_THREADS * M_REQUESTS
    assert all(status == 200 for status in statuses)
    assert health["requests_served"] == N_THREADS * M_REQUESTS
    assert health["requests_failed"] == 0


def test_failed_requests_counted_exactly():
    bad = b'{"kind": "no-such-kind", "v": 1}'
    good = json.dumps(ListRequest().to_dict()).encode()

    with running_server() as server:
        def mix(n_bad, n_good):
            for _ in range(n_bad):
                post(server, bad)
            for _ in range(n_good):
                post(server, good)

        threads = [threading.Thread(target=mix, args=(5, 5))
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        health = server.health()

    assert health["requests_served"] == 4 * 10
    assert health["requests_failed"] == 4 * 5


def test_vanished_stream_readers_do_not_wedge_or_corrupt_counters():
    """The stream leg: readers that disconnect mid-run.

    Each vanished stream must (a) be cancelled so its worker frees up,
    (b) count as exactly one failed request, and (c) leave the daemon
    able to serve the plain requests that follow at full speed.
    """
    n_streams = 4
    n_good = 8
    stream_body = json.dumps({
        "kind": "atpg", "spec": "like:s382@0.5",
        "modes": ["known"], "canonical": True}).encode()
    good = json.dumps(ListRequest().to_dict()).encode()

    with running_server() as server:
        host, port = server.server_address[:2]

        def vanish():
            conn = http.client.HTTPConnection(host, port, timeout=60)
            try:
                conn.request("POST", "/v1/stream", body=stream_body,
                             headers={"Content-Type":
                                      "application/json"})
                response = conn.getresponse()
                # Prove the run is live, then walk away mid-stream.
                assert response.readline()
            finally:
                conn.close()

        threads = [threading.Thread(target=vanish)
                   for _ in range(n_streams)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        # Workers are free again: plain requests complete promptly.
        for _ in range(n_good):
            status, _body = post(server, good)
            assert status == 200

        # The abandoned streams are cancelled and counted within one
        # disconnect-probe interval; poll briefly for the ledger.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            health = server.health()
            if health["requests_served"] == n_streams + n_good:
                break
            time.sleep(0.05)
        health = server.health()

    assert health["requests_served"] == n_streams + n_good
    assert health["requests_failed"] == n_streams
    assert health["admission"]["active"] == 0
    reasons = {
        key: value for key, value in
        server.metrics.to_dict()["counters"].items()
        if key.startswith("cancellations_total")}
    assert sum(reasons.values()) == n_streams
