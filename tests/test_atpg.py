"""Sequential ATPG: correctness of detect/untestable claims and the
learned-implication modes."""

import random

import pytest

from repro.circuit import CircuitBuilder, figure1, figure2, s27
from repro.circuit.gates import ONE, ZERO
from repro.core import learn
from repro.atpg import (
    Fault,
    SequentialATPG,
    collapse_faults,
    compare_untestable,
    fires_untestable,
    run_atpg,
)
from repro.sim import fault_simulate


def test_trivial_combinational_fault():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("g", "not", "a")
    b.output("g")
    c = b.build()
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=2)
    r = atpg.generate(Fault(c.nid("g"), None, ZERO))
    assert r.status == "detected"
    assert fault_simulate(c, r.sequence, [Fault(c.nid("g"), None, ZERO)]) \
        == {0}


def test_sequential_fault_needs_two_frames():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("d", "buf", "a")
    b.dff("f", "d")
    b.gate("q", "not", "f")
    b.output("q")
    c = b.build()
    atpg = SequentialATPG(c, backtrack_limit=10, max_frames=4)
    r = atpg.generate(Fault(c.nid("d"), None, ZERO))
    assert r.status == "detected"
    assert r.frames_used >= 2


def test_tied_fault_proven_untestable():
    b = CircuitBuilder()
    b.inputs("a")
    b.gate("t", "xor", "a", "a")     # constant 0
    b.gate("g", "or", "t", "a")
    b.output("g")
    c = b.build()
    atpg = SequentialATPG(c, backtrack_limit=100, max_frames=3)
    r = atpg.generate(Fault(c.nid("t"), None, ZERO))
    assert r.status == "untestable"


def test_every_s27_fault_detected_and_sequences_work():
    c = s27()
    faults = collapse_faults(c)
    atpg = SequentialATPG(c, backtrack_limit=1000, max_frames=10)
    for fault in faults:
        r = atpg.generate(fault)
        assert r.status == "detected", fault.describe(c)
        assert fault_simulate(c, r.sequence, [fault]) == {0}, \
            fault.describe(c)


@pytest.mark.parametrize("mode", ["known", "forbidden"])
def test_learning_modes_agree_on_s27(mode):
    c = s27()
    learned = learn(c)
    faults = collapse_faults(c)
    atpg = SequentialATPG(c, relations=learned.relations, mode=mode,
                          backtrack_limit=1000, max_frames=10)
    for fault in faults:
        r = atpg.generate(fault)
        assert r.status == "detected", fault.describe(c)
        assert fault_simulate(c, r.sequence, [fault]) == {0}


def test_untestable_claims_never_contradicted():
    """Any fault the ATPG calls untestable must resist random search."""
    rng = random.Random(42)
    for make in (figure1, figure2):
        c = make()
        faults = collapse_faults(c)
        atpg = SequentialATPG(c, backtrack_limit=200, max_frames=8)
        untestable = [f for f in faults
                      if atpg.generate(f).status == "untestable"]
        if not untestable:
            continue
        names = [c.nodes[i].name for i in c.inputs]
        hit = set()
        for _ in range(150):
            seq = [{n: rng.randint(0, 1) for n in names}
                   for _ in range(16)]
            hit |= fault_simulate(c, seq, untestable)
        assert hit == set(), \
            sorted(untestable[i].describe(c) for i in hit)


def test_figure2_decision_pruning_story():
    """Detecting G9 s-a-1 exercises the paper's section 4 example."""
    c = figure2()
    learned = learn(c)
    assert learned.relations.has("G9", 0, "F2", 0)
    fault = Fault(c.nid("G9"), None, ONE)
    results = {}
    for mode, relations in (("none", None),
                            ("known", learned.relations),
                            ("forbidden", learned.relations)):
        atpg = SequentialATPG(c, relations=relations, mode=mode,
                              backtrack_limit=1000, max_frames=6)
        r = atpg.generate(fault)
        assert r.status == "detected"
        assert fault_simulate(c, r.sequence, [fault]) == {0}
        results[mode] = r
    # Learning must not make the search *larger* on this fault.
    assert results["known"].decisions <= results["none"].decisions + 2


def test_backtrack_limit_aborts():
    # A hard fault with a tiny limit must abort, not loop forever.
    c = figure1()
    faults = collapse_faults(c)
    atpg = SequentialATPG(c, backtrack_limit=0, max_frames=6)
    statuses = {atpg.generate(f).status for f in faults[:20]}
    assert "aborted" in statuses


def test_invalid_mode_rejected():
    c = s27()
    with pytest.raises(ValueError):
        SequentialATPG(c, mode="bogus")
    with pytest.raises(ValueError):
        SequentialATPG(c, mode="known")  # no relations supplied


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def test_run_atpg_accounting():
    c = s27()
    stats = run_atpg(c, backtrack_limit=1000, max_frames=10)
    assert stats.detected + stats.untestable + stats.aborted == \
        stats.total_faults
    assert stats.detected == stats.total_faults  # s27 fully testable
    assert 0.99 <= stats.test_coverage <= 1.0
    assert stats.cpu_s > 0
    assert stats.sequences  # at least one generated sequence kept


def test_run_atpg_with_learning_marks_ties_untestable():
    c = figure1()
    learned = learn(c)
    stats = run_atpg(c, learned=learned, mode="forbidden",
                     backtrack_limit=30, max_frames=6)
    assert stats.untestable >= 2  # G3/G8 class + G15 class
    assert stats.detected + stats.untestable + stats.aborted == \
        stats.total_faults


def test_run_atpg_max_faults_sampling():
    c = figure1()
    stats = run_atpg(c, backtrack_limit=10, max_frames=4, max_faults=10)
    assert stats.total_faults == 10


def test_collateral_detection_happens():
    c = s27()
    stats = run_atpg(c, backtrack_limit=100, max_frames=8)
    assert stats.collateral > 0  # fault dropping must fire on s27


# ---------------------------------------------------------------------------
# FIRES baseline & Table-4 comparison
# ---------------------------------------------------------------------------

def test_fires_finds_g3_class_on_figure1():
    c = figure1()
    faults = collapse_faults(c)
    report = fires_untestable(c, faults)
    described = {f.describe(c) for f in report.untestable}
    assert "G3 s-a-0" in described


def test_fires_claims_hold_under_random_search():
    rng = random.Random(9)
    for make in (figure1, figure2, s27):
        c = make()
        faults = collapse_faults(c)
        report = fires_untestable(c, faults)
        if not report.untestable:
            continue
        names = [c.nodes[i].name for i in c.inputs]
        hit = set()
        for _ in range(200):
            seq = [{n: rng.randint(0, 1) for n in names}
                   for _ in range(14)]
            hit |= fault_simulate(c, seq, report.untestable)
        assert hit == set(), \
            sorted(report.untestable[i].describe(c) for i in hit)


def test_compare_untestable_row():
    row = compare_untestable(figure1()).row()
    assert row["circuit"] == "figure1"
    assert row["tie_gates"] >= 2
    assert row["fires"] >= 1
