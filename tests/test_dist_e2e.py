"""End-to-end distributed runs: real coordinator, real worker loops.

The headline contract (the tentpole's acceptance gate): a fleet of N
workers draining a coordinator produces a canonical suite envelope
**byte-identical** to a serial one-shot ``suite`` request -- for any N,
and even when a worker dies mid-shard and its lease is re-issued.
"""

import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import (
    ArtifactStore,
    StatsRequest,
    SuiteRequest,
    execute,
    learn_digest,
)
from repro.core import LearnConfig
from repro.dist import RemoteStore, WorkerLoop
from repro.dist.coordinator import make_coordinator
from repro.dist.protocol import LEASE_PATH, http_json
from repro.flow import ATPGConfig, ReproConfig
from repro.flow.config import ATPG_MODES
from repro.flow.session import resolve_circuit

SPECS = ("figure1", "s27")


def tiny_config() -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3))


def serial_suite_json(specs=SPECS, config=None,
                      modes=ATPG_MODES) -> str:
    response = execute(SuiteRequest(specs=tuple(specs),
                                    modes=tuple(modes),
                                    config=config or tiny_config(),
                                    canonical=True))
    assert response.ok
    return response.to_json()


@contextmanager
def running_coordinator(**kwargs):
    kwargs.setdefault("specs", SPECS)
    kwargs.setdefault("config", tiny_config())
    kwargs.setdefault("n_shards", 3)
    server = make_coordinator(**kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def run_fleet(server, n_workers, **kwargs):
    """Drain the coordinator with N in-thread worker loops."""
    kwargs.setdefault("poll_s", 0.02)
    loops = [WorkerLoop(server.url, worker_id=f"w{i}", **kwargs)
             for i in range(n_workers)]
    threads = [threading.Thread(target=loop.run, daemon=True)
               for loop in loops]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not any(thread.is_alive() for thread in threads), \
        "worker loop wedged"
    return loops


# ----------------------------------------------------------------------
# determinism: N workers == serial, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_workers", [2, 4])
def test_fleet_matches_serial_suite_bytes(n_workers):
    with running_coordinator() as server:
        loops = run_fleet(server, n_workers)
        assert server.job.done()
        merged = server.job.merge(server.store, canonical=True)
    assert merged.ok
    assert merged.to_json() == serial_suite_json()
    # The fleet actually shared the load: every unit completed exactly
    # once in the job's books, regardless of who raced whom.
    assert sum(loop.units_completed for loop in loops) >= len(
        server.job.unit_order)


def test_merge_is_idempotent_and_stable():
    with running_coordinator(specs=("s27",)) as server:
        run_fleet(server, 2)
        first = server.job.merge(server.store, canonical=True).to_json()
        second = server.job.merge(server.store,
                                  canonical=True).to_json()
    assert first == second


# ----------------------------------------------------------------------
# fault tolerance: dead worker, lease re-issue, still byte-identical
# ----------------------------------------------------------------------
def test_worker_death_reissues_lease_and_preserves_bytes():
    with running_coordinator(lease_timeout_s=0.5) as server:
        # Disable stealing so the recovery must come from lease expiry,
        # the path a silently dead worker exercises.
        server.job.MAX_LEASES_PER_UNIT = 1
        # A worker leases a unit and is then killed: no heartbeat, no
        # completion, nothing.
        status, grant = http_json("POST", server.url, LEASE_PATH,
                                  {"worker_id": "doomed"})
        assert status == 200 and grant["unit"] is not None
        survivors = run_fleet(server, 2)
        assert server.job.done()
        assert server.job.leases_expired >= 1
        # The dead worker's unit was re-run by a survivor ...
        assert grant["unit"]["unit_id"] in server.job.completed
        merged = server.job.merge(server.store, canonical=True)
    # ... and the output is still the serial bytes.
    assert merged.to_json() == serial_suite_json()
    assert sum(loop.units_completed for loop in survivors) == len(
        server.job.unit_order)


def test_graceful_stop_drains_and_fleet_recovers():
    with running_coordinator() as server:
        quitter = WorkerLoop(server.url, worker_id="quitter",
                             poll_s=0.02)
        thread = threading.Thread(target=quitter.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while (quitter.units_completed < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert quitter.units_completed >= 1
        quitter.stop()  # the SIGTERM path: finish current unit, exit
        thread.join(timeout=60)
        assert not thread.is_alive()
        # A replacement worker finishes the job; nothing the quitter
        # completed is lost or re-run into disagreement.
        run_fleet(server, 1)
        assert server.job.done()
        merged = server.job.merge(server.store, canonical=True)
    assert merged.to_json() == serial_suite_json()


# ----------------------------------------------------------------------
# fleet-shared artifact cache
# ----------------------------------------------------------------------
def test_learn_artifact_is_shared_through_coordinator():
    config = tiny_config()
    circuit = resolve_circuit("s27")
    digest = learn_digest(circuit, config.learn)
    with running_coordinator(specs=("s27",), config=config) as server:
        run_fleet(server, 2)
        assert server.job.done()
        # Exactly one learn unit exists and completed once; its
        # artifact landed in the coordinator's store via the network
        # tier.
        learn_units = [unit_id for unit_id in server.job.unit_order
                       if server.job.units[unit_id].kind == "learn"]
        assert len(learn_units) == 1
        assert learn_units[0] in server.job.completed
        assert server.store.has_learn(digest)
        # A cold store on a new machine gets the artifact from the
        # coordinator instead of recomputing it.
        late = RemoteStore(server.url)
        fetched = late.get_learn(digest, circuit)
        assert fetched is not None
        assert late.remote_hits == 1
        # Second read is a warm local hit, not another network trip.
        assert late.get_learn(digest, circuit) is not None
        assert late.remote_hits == 1
        assert late.stats()["remote_hits"] == 1


def test_remote_store_degrades_gracefully_when_unreachable():
    config = tiny_config()
    circuit = resolve_circuit("figure1")
    digest = learn_digest(circuit, config.learn)
    # Nothing listens here; every remote op must fail soft, fast.
    store = RemoteStore("http://127.0.0.1:9", timeout=0.2)
    assert store.get_learn(digest, circuit) is None
    assert store.remote_errors >= 1
    from repro.core.engine import learn

    result = learn(circuit, config.learn)
    store.put_learn(digest, result)  # upload fails; local tier keeps it
    assert store.get_learn(digest, circuit) is result


# ----------------------------------------------------------------------
# satellite: store statistics surfaced through the stats request
# ----------------------------------------------------------------------
def test_stats_request_surfaces_artifact_store_counters():
    store = ArtifactStore()
    response = execute(StatsRequest(spec="figure1"), store=store)
    assert response.ok
    counters = response.result["artifact_store"]
    for key in ("memory_hits", "disk_hits", "misses", "puts",
                "flight_waits"):
        assert key in counters
