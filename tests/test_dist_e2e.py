"""End-to-end distributed runs: real coordinator, real worker loops.

The headline contract (the tentpole's acceptance gate): a fleet of N
workers draining a coordinator produces a canonical suite envelope
**byte-identical** to a serial one-shot ``suite`` request -- for any N,
and even when a worker dies mid-shard and its lease is re-issued.
"""

import json
import socket
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import (
    ArtifactStore,
    StatsRequest,
    SuiteRequest,
    execute,
    learn_digest,
)
from repro.core import LearnConfig
from repro.core.engine import learn
from repro.dist import RemoteStore, WorkerLoop
from repro.dist.coordinator import make_coordinator
from repro.dist.protocol import LEASE_PATH, http_bytes, http_json
from repro.flow import ATPGConfig, ReproConfig
from repro.flow.config import ATPG_MODES
from repro.flow.serialize import learn_result_to_dict
from repro.flow.session import resolve_circuit

SPECS = ("figure1", "s27")


def tiny_config() -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3))


def serial_suite_json(specs=SPECS, config=None,
                      modes=ATPG_MODES) -> str:
    response = execute(SuiteRequest(specs=tuple(specs),
                                    modes=tuple(modes),
                                    config=config or tiny_config(),
                                    canonical=True))
    assert response.ok
    return response.to_json()


@contextmanager
def running_coordinator(**kwargs):
    kwargs.setdefault("specs", SPECS)
    kwargs.setdefault("config", tiny_config())
    kwargs.setdefault("n_shards", 3)
    server = make_coordinator(**kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def run_fleet(server, n_workers, **kwargs):
    """Drain the coordinator with N in-thread worker loops."""
    kwargs.setdefault("poll_s", 0.02)
    loops = [WorkerLoop(server.url, worker_id=f"w{i}", **kwargs)
             for i in range(n_workers)]
    threads = [threading.Thread(target=loop.run, daemon=True)
               for loop in loops]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not any(thread.is_alive() for thread in threads), \
        "worker loop wedged"
    return loops


# ----------------------------------------------------------------------
# determinism: N workers == serial, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_workers", [2, 4])
def test_fleet_matches_serial_suite_bytes(n_workers):
    with running_coordinator() as server:
        loops = run_fleet(server, n_workers)
        assert server.job.done()
        merged = server.job.merge(server.store, canonical=True)
    assert merged.ok
    assert merged.to_json() == serial_suite_json()
    # The fleet actually shared the load: every unit completed exactly
    # once in the job's books, regardless of who raced whom.
    assert sum(loop.units_completed for loop in loops) >= len(
        server.job.unit_order)


def test_merge_is_idempotent_and_stable():
    with running_coordinator(specs=("s27",)) as server:
        run_fleet(server, 2)
        first = server.job.merge(server.store, canonical=True).to_json()
        second = server.job.merge(server.store,
                                  canonical=True).to_json()
    assert first == second


# ----------------------------------------------------------------------
# fault tolerance: dead worker, lease re-issue, still byte-identical
# ----------------------------------------------------------------------
def test_worker_death_reissues_lease_and_preserves_bytes():
    with running_coordinator(lease_timeout_s=0.5) as server:
        # Disable stealing so the recovery must come from lease expiry,
        # the path a silently dead worker exercises.
        server.job.MAX_LEASES_PER_UNIT = 1
        # A worker leases a unit and is then killed: no heartbeat, no
        # completion, nothing.
        status, grant = http_json("POST", server.url, LEASE_PATH,
                                  {"worker_id": "doomed"})
        assert status == 200 and grant["unit"] is not None
        survivors = run_fleet(server, 2)
        assert server.job.done()
        assert server.job.leases_expired >= 1
        # The dead worker's unit was re-run by a survivor ...
        assert grant["unit"]["unit_id"] in server.job.completed
        merged = server.job.merge(server.store, canonical=True)
    # ... and the output is still the serial bytes.
    assert merged.to_json() == serial_suite_json()
    assert sum(loop.units_completed for loop in survivors) == len(
        server.job.unit_order)


def test_graceful_stop_drains_and_fleet_recovers():
    with running_coordinator() as server:
        quitter = WorkerLoop(server.url, worker_id="quitter",
                             poll_s=0.02)
        thread = threading.Thread(target=quitter.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while (quitter.units_completed < 1
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert quitter.units_completed >= 1
        quitter.stop()  # the SIGTERM path: finish current unit, exit
        thread.join(timeout=60)
        assert not thread.is_alive()
        # A replacement worker finishes the job; nothing the quitter
        # completed is lost or re-run into disagreement.
        run_fleet(server, 1)
        assert server.job.done()
        merged = server.job.merge(server.store, canonical=True)
    assert merged.to_json() == serial_suite_json()


# ----------------------------------------------------------------------
# fleet-shared artifact cache
# ----------------------------------------------------------------------
def test_learn_artifact_is_shared_through_coordinator():
    config = tiny_config()
    circuit = resolve_circuit("s27")
    digest = learn_digest(circuit, config.learn)
    with running_coordinator(specs=("s27",), config=config) as server:
        run_fleet(server, 2)
        assert server.job.done()
        # Exactly one learn unit exists and completed once; its
        # artifact landed in the coordinator's store via the network
        # tier.
        learn_units = [unit_id for unit_id in server.job.unit_order
                       if server.job.units[unit_id].kind == "learn"]
        assert len(learn_units) == 1
        assert learn_units[0] in server.job.completed
        assert server.store.has_learn(digest)
        # A cold store on a new machine gets the artifact from the
        # coordinator instead of recomputing it.
        late = RemoteStore(server.url)
        fetched = late.get_learn(digest, circuit)
        assert fetched is not None
        assert late.remote_hits == 1
        # Second read is a warm local hit, not another network trip.
        assert late.get_learn(digest, circuit) is not None
        assert late.remote_hits == 1
        assert late.stats()["remote_hits"] == 1


def test_remote_store_degrades_gracefully_when_unreachable():
    config = tiny_config()
    circuit = resolve_circuit("figure1")
    digest = learn_digest(circuit, config.learn)
    # Nothing listens here; every remote op must fail soft, fast.
    store = RemoteStore("http://127.0.0.1:9", timeout=0.2)
    assert store.get_learn(digest, circuit) is None
    assert store.remote_errors >= 1

    result = learn(circuit, config.learn)
    store.put_learn(digest, result)  # upload fails; local tier keeps it
    assert store.get_learn(digest, circuit) is result


# ----------------------------------------------------------------------
# hostile coordinators: corrupt payloads, garbled transport
# ----------------------------------------------------------------------
@contextmanager
def stub_artifact_server(body: bytes):
    """An HTTP server that answers every GET with ``body`` verbatim."""

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.mark.parametrize("corruption", ["garbage", "not-json",
                                        "wrong-digest"])
def test_corrupt_artifact_payload_degrades_to_local_recompute(corruption):
    """A 200 whose body fails validation is a miss, never an exception.

    ``wrong-digest`` is the sharpest case: a structurally valid learn
    artifact stamped with a different content address -- digest
    verification must reject it and the store must degrade to local
    recompute, counting ``remote_errors``.
    """
    config = tiny_config()
    circuit = resolve_circuit("figure1")
    digest = learn_digest(circuit, config.learn)
    result = learn(circuit, config.learn)
    body = {
        "garbage": b'{"not": "a learn artifact"}',
        "not-json": b"\xff\xfe this is not even text",
        "wrong-digest": json.dumps(
            learn_result_to_dict(result, digest="0" * 64)).encode(),
    }[corruption]
    with stub_artifact_server(body) as url:
        store = RemoteStore(url, timeout=5.0)
        assert store.get_learn(digest, circuit) is None
        assert store.remote_errors == 1
        assert store.remote_hits == 0
        # The worker recomputes locally and keeps serving from its own
        # tiers; the poisoned coordinator is never trusted again for
        # this digest because the local hit now shadows it.
        store.put_learn(digest, result)
        assert store.get_learn(digest, circuit) is result


@contextmanager
def garbled_http_server():
    """A socket that answers any request with a non-HTTP byte salad."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(5)
    stop = threading.Event()

    def serve():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except OSError:
                return
            with conn:
                conn.recv(65536)
                conn.sendall(b"totally not http\r\n\r\n")

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{listener.getsockname()[1]}"
    finally:
        stop.set()
        listener.close()
        thread.join(timeout=5)


def test_garbled_transport_is_normalized_to_oserror():
    """``http.client`` reports a garbled status line as BadStatusLine,
    which is *not* an OSError -- ``http_bytes`` must normalize it so
    every ``except OSError`` in the dist tier actually catches it."""
    with garbled_http_server() as url:
        with pytest.raises(OSError):
            http_bytes("GET", url, "/v1/health", timeout=5.0)
        # The same failure through RemoteStore degrades to a miss ...
        config = tiny_config()
        circuit = resolve_circuit("figure1")
        store = RemoteStore(url, timeout=5.0)
        assert store.get_learn(learn_digest(circuit, config.learn),
                               circuit) is None
        assert store.remote_errors == 1
        # ... and through a worker's lease call to "unreachable", not a
        # crash of the loop.
        loop = WorkerLoop(url, store=ArtifactStore(), timeout=5.0)
        assert loop.run_one() == "unreachable"


# ----------------------------------------------------------------------
# heartbeat failures: counted and announced, never silent
# ----------------------------------------------------------------------
def test_heartbeat_failures_counted_and_announced_once_per_lease(
        monkeypatch):
    import repro.dist.worker as worker_mod

    messages = []
    # Nothing listens on the coordinator port: every beat fails fast.
    loop = WorkerLoop("http://127.0.0.1:9", store=ArtifactStore(),
                      timeout=0.2, announce=messages.append)

    class _Done:
        @staticmethod
        def envelope():
            return {"ok": True}

    def slow_execute(request, store=None):
        time.sleep(0.25)  # long enough for several missed beats
        return _Done()

    monkeypatch.setattr(worker_mod, "execute", slow_execute)
    envelope = loop._execute_with_heartbeats("u1", {}, heartbeat_s=0.02)
    assert envelope == {"ok": True}
    # Every miss is counted; the announcement fires once per lease.
    assert loop.heartbeat_errors >= 2
    assert len([m for m in messages if "heartbeat" in m]) == 1

    envelope = loop._execute_with_heartbeats("u2", {}, heartbeat_s=0.02)
    assert envelope == {"ok": True}
    assert len([m for m in messages if "heartbeat" in m]) == 2


# ----------------------------------------------------------------------
# satellite: store statistics surfaced through the stats request
# ----------------------------------------------------------------------
def test_stats_request_surfaces_artifact_store_counters():
    store = ArtifactStore()
    response = execute(StatsRequest(spec="figure1"), store=store)
    assert response.ok
    counters = response.result["artifact_store"]
    for key in ("memory_hits", "disk_hits", "misses", "puts",
                "flight_waits"):
        assert key in counters
