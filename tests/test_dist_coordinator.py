"""Coordinator scheduling: leases, stealing, retries, journal, wire.

`DistJob` is driven directly with an injected fake clock, so every
lease-expiry scenario is deterministic -- no sleeps, no wall time.
The HTTP layer is exercised at the bottom with a real bound server.
"""

import json
import os
import threading
from contextlib import contextmanager

import pytest

from repro.api import (
    ArtifactStore,
    ShardRequest,
    execute,
    learn_digest,
)
from repro.core import LearnConfig
from repro.core.engine import learn
from repro.dist.coordinator import DistJob, make_coordinator
from repro.dist.protocol import (
    COMPLETE_PATH,
    HEALTH_PATH,
    HEARTBEAT_PATH,
    LEASE_PATH,
    STATUS_PATH,
    artifact_path,
    http_bytes,
    http_json,
)
from repro.flow import ATPGConfig, ConfigError, ReproConfig, normalize_jobs
from repro.flow.serialize import learn_result_to_dict
from repro.flow.session import resolve_circuit


def tiny_config(**kwargs) -> ReproConfig:
    return ReproConfig(learn=LearnConfig(max_frames=5),
                       atpg=ATPGConfig(backtrack_limit=5, max_frames=3),
                       **kwargs)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_job(specs=("figure1",), modes=("none", "known"), n_shards=2,
             **kwargs) -> DistJob:
    return DistJob(specs, config=tiny_config(), modes=modes,
                   n_shards=n_shards, **kwargs)


def drain(job: DistJob, worker_id="drain", store=None,
          max_units=1000) -> ArtifactStore:
    """In-process worker: lease, execute for real, complete."""
    store = store if store is not None else ArtifactStore()
    for _ in range(max_units):
        grant = job.lease(worker_id)
        unit = grant["unit"]
        if unit is None:
            assert grant["done"], "no work but job not done"
            return store
        envelope = execute(unit["request"], store=store).envelope()
        job.complete(worker_id, unit["unit_id"], envelope)
    raise AssertionError("drain did not converge")


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def test_plan_builds_learn_and_shard_dag():
    job = make_job()
    kinds = [job.units[unit_id].kind for unit_id in job.unit_order]
    assert kinds == ["learn", "shard", "shard", "shard", "shard"]
    learn_id = job.unit_order[0]
    for unit_id in job.unit_order[1:]:
        unit = job.units[unit_id]
        expected = (learn_id,) if unit.mode != "none" else ()
        assert unit.deps == expected


def test_plan_skips_learn_when_no_learning_mode():
    job = make_job(modes=("none",), n_shards=3)
    assert [job.units[u].kind for u in job.unit_order] == ["shard"] * 3


def test_unresolvable_spec_fails_at_planning():
    job = make_job(specs=("figure1", "no-such-circuit"))
    # The bad circuit planned no units; the good one is unaffected.
    assert {job.units[u].circuit_index for u in job.unit_order} == {0}
    assert job.circuit_errors[1]["stage"] == "resolve"
    store = drain(job)
    response = job.merge(store)
    assert response.exit_code == 1
    payload = response.result
    assert [r["circuit"] for r in payload["reports"]] == ["figure1"]
    assert payload["errors"][0]["stage"] == "resolve"


# ----------------------------------------------------------------------
# leases, expiry, heartbeats (fake clock)
# ----------------------------------------------------------------------
def test_expired_lease_reissues_unit():
    clock = FakeClock()
    job = make_job(lease_timeout_s=10.0, clock=clock)
    first = job.lease("w1")["unit"]
    assert first["unit_id"].endswith(":learn")
    clock.advance(11.0)
    second = job.lease("w2")["unit"]
    assert second["unit_id"] == first["unit_id"]
    assert job.leases_expired == 1
    assert job.attempts[first["unit_id"]] == 1


def test_heartbeat_extends_lease():
    clock = FakeClock()
    job = make_job(lease_timeout_s=10.0, clock=clock)
    unit_id = job.lease("w1")["unit"]["unit_id"]
    clock.advance(8.0)
    assert job.heartbeat("w1", unit_id)["ok"]
    clock.advance(8.0)  # 16s total: dead without the heartbeat
    job.status()  # forces a reap pass
    assert job.leases_expired == 0
    assert unit_id in job.leases
    # A heartbeat for a lease the worker no longer holds says abandon
    # only once the unit cannot be completed usefully anymore.
    assert job.heartbeat("ghost", unit_id) == {"ok": False,
                                               "abandon": False}


def test_repeated_expiry_fails_circuit_with_worker_stage():
    clock = FakeClock()
    job = make_job(specs=("figure1", "s27"), lease_timeout_s=5.0,
                   clock=clock)
    doomed = job.lease("w1")["unit"]["unit_id"]
    for _ in range(DistJob.MAX_ATTEMPTS - 1):
        clock.advance(6.0)
        assert job.lease("w1")["unit"]["unit_id"] == doomed
    clock.advance(6.0)
    # Third expiry is terminal: figure1's units all cancel, and the
    # next lease hands out s27 work instead.
    index = job.units[doomed].circuit_index
    granted = job.lease("w1")["unit"]
    assert job.circuit_errors[index]["stage"] == "worker"
    assert "expired" in job.circuit_errors[index]["error"]
    assert job.units[granted["unit_id"]].circuit_index != index
    # The healthy circuit still completes; the job never wedges.
    job.complete("w1", granted["unit_id"],
                 execute(granted["request"]).envelope())
    store = drain(job)
    response = job.merge(store)
    assert response.exit_code == 1
    assert [r["circuit"] for r in response.result["reports"]] == ["s27"]
    assert response.result["errors"][0]["spec"] == "figure1"


def test_error_envelope_bounded_retry_then_circuit_error():
    job = make_job()
    unit_id = job.lease("w1")["unit"]["unit_id"]
    bad = {"ok": False, "error": {"message": "engine exploded",
                                  "stage": "learn"}}
    for attempt in range(1, DistJob.MAX_ATTEMPTS + 1):
        reply = job.complete("w1", unit_id, bad)
        assert reply["accepted"]
        if attempt < DistJob.MAX_ATTEMPTS:
            assert reply["retrying"]
            assert job.lease("w1")["unit"]["unit_id"] == unit_id
        else:
            assert not reply["retrying"]
    # Attribution preserves the failing stage from the envelope.
    error = job.circuit_errors[0]
    assert error["stage"] == "learn"
    assert error["error"] == "engine exploded"
    assert job.done()


# ----------------------------------------------------------------------
# work stealing + duplicate completion
# ----------------------------------------------------------------------
def test_steal_duplicates_oldest_inflight_unit():
    clock = FakeClock()
    job = make_job(modes=("none",), n_shards=2, clock=clock)
    first = job.lease("w1")["unit"]["unit_id"]
    clock.advance(1.0)
    second = job.lease("w2")["unit"]["unit_id"]
    assert first != second
    # Nothing pending now; idle workers duplicate the longest-running
    # in-flight unit first.
    assert job.lease("w3")["unit"]["unit_id"] == first
    assert job.lease("w4")["unit"]["unit_id"] == second
    assert job.steals == 2
    # Both units sit at MAX_LEASES_PER_UNIT now (and a holder never
    # steals its own unit), so further askers go empty-handed.
    assert job.lease("w5")["unit"] is None
    assert job.lease("w1")["unit"] is None
    assert not job.lease("w1")["done"]


def test_duplicate_completion_first_write_wins():
    job = make_job(modes=("none",), n_shards=1)
    unit = job.lease("w1")["unit"]
    job.lease("w2")  # steal: both workers now run the same unit
    winner = execute(unit["request"]).envelope()
    assert job.complete("w1", unit["unit_id"], winner)["accepted"]
    late = job.complete("w2", unit["unit_id"], winner)
    assert late == {"accepted": False, "duplicate": True}
    assert job.duplicate_completions == 1
    assert job.completed[unit["unit_id"]] is winner
    assert job.done()


# ----------------------------------------------------------------------
# journal: coordinator restart resumes from partial results
# ----------------------------------------------------------------------
def test_restart_resumes_from_journal(tmp_path):
    journal = str(tmp_path / "journal")
    job = make_job(journal_dir=journal)
    store = ArtifactStore()
    # Crash the coordinator after only two units completed.
    for _ in range(2):
        unit = job.lease("w1")["unit"]
        job.complete("w1", unit["unit_id"],
                     execute(unit["request"], store=store).envelope())
    finished = set(job.completed)
    assert len(finished) == 2

    reborn = make_job(journal_dir=journal)
    assert set(reborn.completed) == finished  # partial results survive
    drain(reborn, store=store)
    assert reborn.done()
    assert reborn.leases_issued == len(reborn.unit_order) - 2
    # And the merge is the normal full-job answer.
    fresh = make_job()
    drain(fresh, store=store)
    assert (reborn.merge(store, canonical=True).to_json()
            == fresh.merge(store, canonical=True).to_json())


def test_journal_ignores_other_jobs(tmp_path):
    journal = str(tmp_path / "journal")
    job = make_job(journal_dir=journal)
    drain(job)
    # Same journal dir, different job parameters: nothing matches.
    other = make_job(n_shards=3, journal_dir=journal)
    assert other.completed == {}


# ----------------------------------------------------------------------
# shard request validation
# ----------------------------------------------------------------------
def test_shard_request_validation():
    ShardRequest(spec="s27", mode="none", n_shards=2,
                 shard_index=1).validate()
    with pytest.raises(ConfigError, match="shard_index"):
        ShardRequest(spec="s27", mode="none", n_shards=2,
                     shard_index=2).validate()
    with pytest.raises(ConfigError, match="n_shards"):
        ShardRequest(spec="s27", mode="none", n_shards=0).validate()
    with pytest.raises(ConfigError, match="learned_digest"):
        ShardRequest(spec="s27", mode="known").validate()


def test_shard_rejects_learned_digest_mismatch():
    request = ShardRequest(spec="figure1", config=tiny_config(),
                           mode="known", shard_index=0, n_shards=1,
                           learned_digest="f" * 64)
    response = execute(request)
    assert not response.ok
    assert "learned_digest" in response.error["message"]


# ----------------------------------------------------------------------
# satellite: jobs=0 means one worker per core, in one shared helper
# ----------------------------------------------------------------------
def test_normalize_jobs_clamp():
    assert normalize_jobs(0) == (os.cpu_count() or 1)
    assert normalize_jobs(1) == 1
    assert normalize_jobs(7) == 7


# ----------------------------------------------------------------------
# the HTTP surface
# ----------------------------------------------------------------------
@contextmanager
def running_coordinator(**kwargs):
    kwargs.setdefault("specs", ("figure1",))
    kwargs.setdefault("config", tiny_config())
    kwargs.setdefault("modes", ("none", "known"))
    kwargs.setdefault("n_shards", 2)
    server = make_coordinator(**kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_http_lease_complete_status_health():
    with running_coordinator() as server:
        status, health = http_json("GET", server.url, HEALTH_PATH)
        assert status == 200 and health["ok"]
        assert health["dist"]["units"] == 5
        assert "memory_hits" in health["artifact_store"]
        assert "flight_waits" in health["artifact_store"]

        status, grant = http_json("POST", server.url, LEASE_PATH,
                                  {"worker_id": "w1"})
        assert status == 200
        unit = grant["unit"]
        assert unit["unit_id"].endswith(":learn")
        assert grant["heartbeat_s"] > 0

        status, beat = http_json("POST", server.url, HEARTBEAT_PATH,
                                 {"worker_id": "w1",
                                  "unit_id": unit["unit_id"]})
        assert status == 200 and beat["ok"]

        envelope = execute(unit["request"]).envelope()
        status, reply = http_json(
            "POST", server.url, COMPLETE_PATH,
            {"worker_id": "w1", "unit_id": unit["unit_id"],
             "response": envelope})
        assert status == 200 and reply["accepted"]

        status, progress = http_json("GET", server.url, STATUS_PATH)
        assert status == 200
        assert progress["completed"] == 1
        assert not progress["done"]


def test_http_rejects_garbage():
    with running_coordinator() as server:
        status, _ = http_json("GET", server.url, "/nope")
        assert status == 404
        status, payload = http_json("POST", server.url, COMPLETE_PATH,
                                    {"worker_id": "w1",
                                     "unit_id": "x"})
        assert status == 400  # no response envelope
        status, payload = http_json("POST", server.url, COMPLETE_PATH,
                                    {"worker_id": "w1", "unit_id": "?",
                                     "response": {"ok": True}})
        assert status == 200
        assert payload == {"accepted": False, "unknown": True}
        status, _ = http_bytes("POST", server.url, LEASE_PATH,
                               b"not json")
        assert status == 400


def test_artifact_endpoint_round_trip(tmp_path):
    circuit = resolve_circuit("figure1")
    config = tiny_config()
    digest = learn_digest(circuit, config.learn)
    result = learn(circuit, config.learn)
    payload = (json.dumps(learn_result_to_dict(result, digest=digest),
                          indent=1) + "\n").encode()
    store = ArtifactStore(root=str(tmp_path))
    with running_coordinator(config=config, store=store) as server:
        status, _ = http_bytes("GET", server.url, artifact_path(digest))
        assert status == 404
        status, reply = http_json("PUT", server.url,
                                  artifact_path(digest),
                                  json.loads(payload))
        assert status == 200 and reply["stored"]
        status, fetched = http_bytes("GET", server.url,
                                     artifact_path(digest))
        assert status == 200
        # Byte-for-byte the canonical wire form: the GET serves the
        # atomically-written disk file, whose framing matches the
        # serialized payload exactly.
        assert fetched == payload
        # Tampered digests are refused, not stored.
        status, reply = http_json("PUT", server.url,
                                  artifact_path("0" * 64),
                                  json.loads(payload))
        assert status == 200 and not reply["stored"]


def test_put_learn_payload_rejects_digest_mismatch(tmp_path):
    store = ArtifactStore(root=str(tmp_path))
    circuit = resolve_circuit("figure1")
    config = tiny_config()
    digest = learn_digest(circuit, config.learn)
    result = learn(circuit, config.learn)
    payload = (json.dumps(learn_result_to_dict(result, digest=digest),
                          indent=1) + "\n").encode()
    assert not store.put_learn_payload("0" * 64, payload)
    assert not store.put_learn_payload(digest, b"not json")
    assert store.put_learn_payload(digest, payload)
    assert store.get_learn_payload(digest) == payload
