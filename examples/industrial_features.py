"""Real-circuit features: clock domains, partial set/reset, multi-port
latches (the paper's section 3.3).

Learning on an industrial-style netlist must classify sequential
elements into clock-domain classes, run one pass per class, refuse to
propagate through multi-port latches or both-unconstrained set/reset
FFs, and only let matching values cross partially set/reset FFs.  This
example shows the classification, the per-class passes, and that every
extracted relation stays within one class.

Run:  python examples/industrial_features.py
"""

from collections import Counter

from repro import industrial_like, learn
from repro.core import classify_ffs, learning_passes


def main() -> None:
    circuit = industrial_like("indust_demo", n_domains=3, n_ffs=48,
                              n_gates=320, seed=11)
    print(f"circuit {circuit.name}: {circuit.stats()}")

    print("\nsequential-element classes (clock, phase, kind):")
    for key, members in sorted(classify_ffs(circuit).items()):
        print(f"  {key}: {len(members)} elements")

    special = Counter()
    for fid in circuit.ffs:
        node = circuit.nodes[fid]
        if node.num_ports > 1:
            special["multi-port latches"] += 1
        if node.set_kind == "unconstrained" and \
                node.reset_kind == "unconstrained":
            special["set+reset unconstrained"] += 1
        elif node.set_kind == "unconstrained":
            special["partial set"] += 1
        elif node.reset_kind == "unconstrained":
            special["partial reset"] += 1
    print("\nspecial elements:", dict(special))

    passes = learning_passes(circuit)
    print(f"\nlearning runs {len(passes)} per-class passes")

    learned = learn(circuit)
    print("summary:", learned.summary())

    cross = 0
    for relation in learned.relations:
        a = circuit.nodes[relation.a]
        b = circuit.nodes[relation.b]
        if a.is_sequential and b.is_sequential and \
                a.domain_key() != b.domain_key():
            cross += 1
    print(f"cross-clock-domain FF-FF relations: {cross} (must be 0)")

    violations = learned.validate(n_sequences=30, seq_len=10)
    print(f"Monte-Carlo validation violations: {len(violations)}")


if __name__ == "__main__":
    main()
