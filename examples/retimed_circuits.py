"""Retimed circuits: density of encoding and the learning advantage.

Reference [9] of the paper showed that retiming lowers the density of
encoding (valid states / all states) and that sequential ATPG complexity
tracks this ratio; the paper's Table 5 shows the biggest learning wins
on retimed circuits.  This example reproduces the whole mechanism:

1. retime a circuit backward a few moves,
2. measure the density drop exactly (explicit state-space analysis),
3. show learning extracting more invalid-state relations,
4. show the ATPG benefiting.

Run:  python examples/retimed_circuits.py
"""

from repro import figure2, learn, retime_circuit, run_atpg
from repro.analysis import analyze_state_space


def main() -> None:
    base = figure2()
    print(f"base circuit {base.name}: {base.stats()}")

    print(f"\n{'moves':>5} {'FFs':>4} {'density':>8} {'FF-FF rels':>10}")
    circuits = []
    for moves in range(4):
        circuit = base if moves == 0 else retime_circuit(
            base, moves=moves, name=f"fig2_retimed_{moves}")
        space = analyze_state_space(circuit)
        learned = learn(circuit)
        circuits.append((circuit, learned))
        print(f"{moves:>5} {circuit.num_ffs:>4} "
              f"{space.density_of_encoding:>8.4f} "
              f"{len(learned.relations.invalid_state_relations()):>10}")

    most_retimed, learned = circuits[-1]
    print(f"\nATPG on {most_retimed.name} (backtrack limit 30):")
    for mode, use in (("none", None), ("forbidden", learned),
                      ("known", learned)):
        stats = run_atpg(most_retimed, learned=use, mode=mode,
                         backtrack_limit=30, max_frames=8)
        print(f"  mode={mode:9s} det={stats.detected:3d} "
              f"untest={stats.untestable:3d} abort={stats.aborted:3d} "
              f"cpu={stats.cpu_s:.2f}s")

    print("\nAll learned relations on the retimed circuit validate:",
          learned.validate(40, 10) == [])


if __name__ == "__main__":
    main()
