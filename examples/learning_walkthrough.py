"""The paper's section 3 walkthrough, step by step, on Figure 1.

Reproduces Table 1 (per-stem forward simulation), Table 2 (invalid-state
relations by phase), the tie gates G3/G8/G15 and the role of
tie/equivalence coupling in the multiple-node phase.

Run:  python examples/learning_walkthrough.py
"""

from repro.circuit import figure1
from repro.core import (
    LearnConfig,
    learn,
    run_single_node,
    ties_from_single_node,
)
from repro.sim import FrameSimulator


def main() -> None:
    circuit = figure1()

    # ---- Phase 1: single-node learning (Table 1) ----------------------
    print("=== Table 1: forward simulation per stem ===")
    simulator = FrameSimulator(circuit, active_ffs=set(circuit.ffs))
    data = run_single_node(simulator, max_frames=50)
    for (stem, value), result in sorted(
            data.runs.items(),
            key=lambda kv: (circuit.nodes[kv[0][0]].name, kv[0][1])):
        stem_name = circuit.nodes[stem].name
        print(f"\nstem {stem_name}={value} "
              f"(stopped after {result.num_frames()} frames"
              f"{', state repeated' if result.repeated else ''})")
        for frame in range(result.num_frames()):
            implied = data.implied_at(stem, value, frame)
            rendered = ", ".join(
                f"{circuit.nodes[n].name}={v}"
                for n, v in sorted(implied.items(),
                                   key=lambda kv: circuit.nodes[kv[0]].name))
            print(f"  T={frame}: {rendered or '{}'}")

    # ---- Ties from phase 1 --------------------------------------------
    ties = ties_from_single_node(data, circuit)
    print("\n=== Ties after single-node learning ===")
    for tie in ties.all():
        print(f"  {circuit.nodes[tie.nid].name} tied to {tie.value}")

    # ---- Full flow: Table 2 staging ------------------------------------
    print("\n=== Table 2: invalid-state relations by phase ===")
    single = learn(circuit, LearnConfig(use_multi_node=False,
                                        use_equivalence=False))
    full = learn(circuit)

    def ff_relations(result):
        out = set()
        for relation in result.relations:
            if result.relations.kind(relation) == "ff_ff":
                a = circuit.nodes[relation.a].name
                b = circuit.nodes[relation.b].name
                out.add(f"{a}={relation.va} -> {b}={relation.vb}")
        return out

    single_set = ff_relations(single)
    full_set = ff_relations(full)
    print("single-node phase:")
    for relation in sorted(single_set):
        print(f"  {relation}")
    print("added by multiple-node learning (with ties/equivalence):")
    for relation in sorted(full_set - single_set):
        print(f"  {relation}")

    # ---- The G15 story --------------------------------------------------
    print("\n=== G15: sequentially tied to 0 via a learning conflict ===")
    for tie in full.ties.all():
        name = circuit.nodes[tie.nid].name
        kind = "sequential" if tie.sequential else "combinational"
        print(f"  {name}: tied to {tie.value} ({kind}, phase={tie.phase}, "
              f"valid {tie.warmup} frames after power-up)")

    violations = full.validate(n_sequences=60, seq_len=12)
    print(f"\nvalidation violations: {len(violations)} (must be 0)")


if __name__ == "__main__":
    main()
