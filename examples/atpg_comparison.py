"""Table-5 style experiment: ATPG with/without learned implications.

Runs the full three-mode comparison (no learning, forbidden-value,
known-value) at two backtrack limits on a benchmark-profile circuit and
on the paper's Figure 2 decision-pruning example.

Run:  python examples/atpg_comparison.py
"""

from repro import figure2, iscas_like, learn
from repro.atpg import Fault, SequentialATPG, run_atpg


def table5_style(circuit, max_faults=60) -> None:
    print(f"\n=== {circuit.name}: {circuit.stats()} ===")
    learned = learn(circuit)
    print(f"learning: {learned.summary()}")
    header = (f"{'limit':>6} {'mode':>10} {'det':>5} {'untest':>6} "
              f"{'abort':>5} {'cov%':>6} {'cpu_s':>7}")
    print(header)
    for limit in (30, 300):
        for mode, use in (("none", None), ("forbidden", learned),
                          ("known", learned)):
            stats = run_atpg(circuit, learned=use, mode=mode,
                             backtrack_limit=limit, max_frames=8,
                             max_faults=max_faults)
            print(f"{limit:>6} {mode:>10} {stats.detected:>5} "
                  f"{stats.untestable:>6} {stats.aborted:>5} "
                  f"{100 * stats.test_coverage:>6.1f} "
                  f"{stats.cpu_s:>7.2f}")


def figure2_decision_nodes() -> None:
    """The paper's section 4 example: detecting G9 s-a-1.

    Justifying G9=0 makes G6 and G7 decision nodes (two solutions each);
    the learned relation G9=0 -> F2=0 picks the shared solution F2=0.
    """
    circuit = figure2()
    learned = learn(circuit)
    print("\n=== Figure 2: G9 stuck-at-1, decision-node pruning ===")
    print("learned relation present:",
          learned.relations.has("G9", 0, "F2", 0))
    fault = Fault(circuit.nid("G9"), None, 1)
    for mode, relations in (("none", None),
                            ("forbidden", learned.relations),
                            ("known", learned.relations)):
        atpg = SequentialATPG(circuit, relations=relations, mode=mode,
                              backtrack_limit=1000, max_frames=6)
        result = atpg.generate(fault)
        print(f"  mode={mode:9s} status={result.status:9s} "
              f"decisions={result.decisions:3d} "
              f"backtracks={result.backtracks:3d}")
        if result.status == "detected":
            print(f"    test sequence: {result.sequence}")


def main() -> None:
    figure2_decision_nodes()
    table5_style(iscas_like("s382", scale=0.4))


if __name__ == "__main__":
    main()
