"""End-to-end tour of the versioned ``repro.api`` boundary.

Three acts:

1. **In-process**: build typed requests, execute them, watch the
   streaming event protocol, reuse learning through the
   content-addressed artifact store.
2. **Wire form**: the same request as canonical JSON -- what the CLI
   builds from argv and what an HTTP client POSTs.
3. **Over HTTP**: spin up the ``repro serve`` daemon in-process, fire
   concurrent mixed requests at it, and verify the responses are
   byte-identical to one-shot runs.
4. **Streaming + cancel**: follow a request's event stream live over
   ``POST /v1/stream``, slice the byte-identical terminal envelope out
   of the NDJSON framing, then cancel a second request mid-run with
   ``POST /v1/cancel`` and watch the cancellation land in
   ``GET /v1/metrics``.

Run with::

    PYTHONPATH=src python examples/api_client.py
"""

import http.client
import json
import threading
from contextlib import closing

from repro.api import (
    ATPGRequest,
    ArtifactStore,
    LearnRequest,
    StageEvent,
    execute,
    make_server,
)
from repro.core import LearnConfig
from repro.flow import ATPGConfig, ReproConfig

CONFIG = ReproConfig(learn=LearnConfig(max_frames=20),
                     atpg=ATPGConfig(backtrack_limit=10, max_frames=5))


def act_one_in_process() -> None:
    print("=== 1. in-process: requests, events, the artifact store ===")
    store = ArtifactStore()  # in-memory; pass root=... to persist

    def narrate(event):
        if isinstance(event, StageEvent):
            print(f"  stage {event.stage:12s} {event.summary}")

    learn = execute(LearnRequest(spec="s27", config=CONFIG),
                    events=narrate, store=store)
    assert learn.ok
    print(f"  learned: {learn.result['learn']}")
    print(f"  learn digest: {learn.result['learn_digest'][:16]}...")

    # Same circuit + learning config => the store answers, no relearn.
    atpg = execute(ATPGRequest(spec="s27", config=CONFIG,
                               modes=("none", "known")), store=store)
    assert atpg.ok
    for mode, row in atpg.result["atpg"].items():
        print(f"  atpg[{mode}]: detected {row['det']}/{row['total']}")
    print(f"  store: {store.stats()}")


def act_two_wire_form() -> None:
    print("\n=== 2. the wire form: canonical JSON, versioned ===")
    request = ATPGRequest(spec="s27", config=CONFIG, modes=("known",),
                          canonical=True)
    document = request.to_canonical_json()
    print(f"  request:  {document[:72]}...")
    response = execute(json.loads(document))  # dicts execute too
    envelope = response.envelope()
    print(f"  response: schema_version={envelope['schema_version']} "
          f"command={envelope['command']} ok={envelope['ok']}")

    failure = execute({"kind": "atpg", "spec": "like:nope"})
    print(f"  failure envelope: {failure.envelope()['error']}")


def act_three_daemon() -> None:
    print("\n=== 3. repro serve: warm, concurrent, byte-identical ===")
    server = make_server(port=0, store=ArtifactStore())
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    print(f"  daemon on http://{host}:{port}")

    requests = [
        LearnRequest(spec="figure1", config=CONFIG, canonical=True),
        ATPGRequest(spec="figure1", config=CONFIG, modes=("known",),
                    canonical=True),
        LearnRequest(spec="s27", config=CONFIG, canonical=True),
        ATPGRequest(spec="s27", config=CONFIG, modes=("known",),
                    canonical=True),
    ] * 2
    one_shot = [execute(request).to_json().encode()
                for request in requests]

    answers = [None] * len(requests)

    def client(index: int, body: str) -> None:
        with closing(http.client.HTTPConnection(host, port,
                                                timeout=60)) as conn:
            conn.request("POST", "/v1/execute", body=body)
            answers[index] = conn.getresponse().read()

    threads = [threading.Thread(target=client,
                                args=(i, r.to_canonical_json()))
               for i, r in enumerate(requests)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    identical = all(a == b for a, b in zip(answers, one_shot))
    print(f"  {len(requests)} concurrent mixed requests, "
          f"byte-identical to one-shot runs: {identical}")

    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("GET", "/v1/health")
        health = json.loads(conn.getresponse().read())
    print(f"  health: served={health['requests_served']} "
          f"kernel_cache={health['kernel_cache']} "
          f"store_hits={health['artifact_store']['memory_hits']}")
    server.shutdown()
    server.server_close()
    assert identical


def act_four_streaming_and_cancel() -> None:
    print("\n=== 4. streaming + cancel: /v1/stream, /v1/cancel ===")
    server = make_server(port=0, store=ArtifactStore())
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]

    # --- follow a run live; the stream ends with the exact envelope
    # bytes a one-shot POST /v1/execute would have returned.
    request = ATPGRequest(spec="s27", config=CONFIG, modes=("known",),
                          canonical=True)
    reference = execute(request).to_json().encode()
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=120)) as conn:
        conn.request("POST", "/v1/stream",
                     body=request.to_canonical_json(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        print(f"  stream: {response.getheader('Content-Type')} "
              f"request {response.getheader('X-Request-Id')}")
        while True:
            record = json.loads(response.readline())
            if record.get("event") == "result":
                # Two-part terminal: a byte-count frame, then the raw
                # envelope -- byte identity survives streaming.
                envelope = b""
                while len(envelope) < record["bytes"]:
                    envelope += response.read(
                        record["bytes"] - len(envelope))
                break
            if record["event"] == "stage":
                print(f"  event: stage {record['stage']} done")
    print(f"  terminal envelope byte-identical to one-shot: "
          f"{envelope == reference}")

    # --- cancel a run mid-flight by its client-chosen request id.
    slow = {"kind": "atpg", "spec": "like:s382@0.5",
            "modes": ["known"], "canonical": True,
            "request_id": "demo-cancel"}
    stream_conn = http.client.HTTPConnection(host, port, timeout=120)
    stream_conn.request("POST", "/v1/stream", body=json.dumps(slow),
                        headers={"Content-Type": "application/json"})
    stream = stream_conn.getresponse()
    stream.readline()  # first event: the run is live
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("POST", "/v1/cancel",
                     body=json.dumps({"request_id": "demo-cancel"}))
        verdict = json.loads(conn.getresponse().read())
    print(f"  POST /v1/cancel -> cancelled={verdict['cancelled']}")
    while True:
        record = json.loads(stream.readline())
        if record.get("event") == "result":
            envelope = b""
            while len(envelope) < record["bytes"]:
                envelope += stream.read(record["bytes"] - len(envelope))
            break
    stream_conn.close()
    error = json.loads(envelope)["error"]
    print(f"  terminal envelope: code={error['code']} "
          f"stage={error['stage']}")

    for _ in range(100):  # cancellation counters land a beat later
        if server.metrics.counter_total("cancellations_total"):
            break
        threading.Event().wait(0.02)
    with closing(http.client.HTTPConnection(host, port,
                                            timeout=60)) as conn:
        conn.request("GET", "/v1/metrics")
        metrics = json.loads(conn.getresponse().read())
    cancels = {key: value
               for key, value in metrics["metrics"]["counters"].items()
               if key.startswith("cancellations_total")}
    print(f"  /v1/metrics: {cancels}")
    server.shutdown()
    server.server_close()
    assert envelope and error["code"] == "cancelled"


if __name__ == "__main__":
    act_one_in_process()
    act_two_wire_form()
    act_three_daemon()
    act_four_streaming_and_cancel()
