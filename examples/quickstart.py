"""Quickstart: learn invariants on the paper's Figure 1 circuit and use
them to speed up sequential ATPG.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import (
    ATPGConfig,
    ReproConfig,
    Session,
    figure1,
    learn,
    run_atpg,
)


def main() -> None:
    circuit = figure1()
    print(f"circuit: {circuit.name}  {circuit.stats()}")

    # --- Sequential learning (the paper's contribution) ---------------
    learned = learn(circuit)
    print("\nlearning summary:", learned.summary())

    print("\ntied gates (section 3.2):")
    for tie in learned.ties.all():
        kind = "sequential" if tie.sequential else "combinational"
        print(f"  {circuit.nodes[tie.nid].name} tied to {tie.value}"
              f"  [{kind}, found by {tie.phase}]")

    print("\ninvalid-state relations (FF-FF, canonical orientation):")
    for relation in learned.relations.invalid_state_relations():
        a = circuit.nodes[relation.a].name
        b = circuit.nodes[relation.b].name
        print(f"  {a}={relation.va} -> {b}={relation.vb}"
              f"  [{relation.source}]")

    # Every learned fact is checked against random real executions.
    violations = learned.validate(n_sequences=50, seq_len=12)
    print(f"\nMonte-Carlo validation: {len(violations)} violations")

    # --- ATPG with and without the learned knowledge ------------------
    print("\nATPG (backtrack limit 30):")
    for mode, use in (("none", None), ("forbidden", learned),
                      ("known", learned)):
        stats = run_atpg(circuit, learned=use, mode=mode,
                         backtrack_limit=30, max_frames=8)
        print(f"  mode={mode:9s} detected={stats.detected:3d}"
              f"  untestable={stats.untestable:2d}"
              f"  aborted={stats.aborted:2d}"
              f"  test-coverage={100 * stats.test_coverage:5.1f}%"
              f"  cpu={stats.cpu_s:5.2f}s")

    # --- The same pipeline via the Session API ------------------------
    # Learn once, save the artifact, reuse it without relearning: this
    # is the canonical flow (and what `repro learn --save` / `repro atpg
    # --learned` run under the hood).
    print("\nSession pipeline (learn once, reuse the artifact):")
    session = Session("figure1",
                      ReproConfig(atpg=ATPGConfig(mode="known")))
    with tempfile.TemporaryDirectory() as tmp:
        artifact = os.path.join(tmp, "figure1.learn.json")
        session.save_learned(artifact)

        rerun = Session("figure1",
                        ReproConfig(atpg=ATPGConfig(mode="known")))
        rerun.load_learned(artifact)         # learning stage skipped
        print(f"  {rerun.atpg().row()}")


if __name__ == "__main__":
    main()
