"""repro -- sequential learning for real circuits, with ATPG application.

A from-scratch Python reproduction of El-Maleh, Kassab and Rajski, "A
Fast Sequential Learning Technique for Real Circuits with Application to
Enhancing ATPG Performance" (DAC 1998).

Quickstart::

    from repro import figure1, learn, run_atpg

    circuit = figure1()
    learned = learn(circuit)
    print(learned.summary())                 # relations, ties, CPU
    stats = run_atpg(circuit, learned=learned, mode="forbidden",
                     backtrack_limit=30)
    print(stats.row())                       # det / untest / CPU

Packages:

* :mod:`repro.circuit` -- netlists, bench IO, built-ins, generator, retiming
* :mod:`repro.sim` -- event-driven 3-valued, bit-parallel, fault simulation
* :mod:`repro.core` -- the paper's sequential learning engine
* :mod:`repro.atpg` -- sequential PODEM ATPG with learned-implication modes
* :mod:`repro.analysis` -- density of encoding, exact state-space oracles
"""

from .circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    counter,
    equivalence_demo,
    figure1,
    figure2,
    industrial_like,
    iscas_like,
    load_bench,
    one_hot_ring,
    parse_bench,
    random_circuit,
    retime_circuit,
    s27,
)
from .core import LearnConfig, LearnResult, SequentialLearner, learn
from .atpg import (
    Fault,
    SequentialATPG,
    collapse_faults,
    compare_modes,
    compare_untestable,
    fires_untestable,
    run_atpg,
)
from .analysis import analyze_state_space
from .sim import FrameSimulator, fault_simulate, simulate_sequence

__version__ = "1.0.0"

__all__ = [
    "Circuit", "CircuitBuilder", "GateType",
    "counter", "equivalence_demo", "figure1", "figure2",
    "industrial_like", "iscas_like", "load_bench", "one_hot_ring",
    "parse_bench", "random_circuit", "retime_circuit", "s27",
    "LearnConfig", "LearnResult", "SequentialLearner", "learn",
    "Fault", "SequentialATPG", "collapse_faults", "compare_modes",
    "compare_untestable", "fires_untestable", "run_atpg",
    "analyze_state_space",
    "FrameSimulator", "fault_simulate", "simulate_sequence",
    "__version__",
]
