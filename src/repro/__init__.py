"""repro -- sequential learning for real circuits, with ATPG application.

A from-scratch Python reproduction of El-Maleh, Kassab and Rajski, "A
Fast Sequential Learning Technique for Real Circuits with Application to
Enhancing ATPG Performance" (DAC 1998).

The canonical entry point is the versioned :mod:`repro.api` boundary --
build a typed request, execute it, read the response envelope::

    from repro.api import ATPGRequest, LearnRequest, execute

    response = execute(LearnRequest(spec="figure1",
                                    save="figure1.json"))
    print(response.result["learn"])          # relations, ties, CPU

    rerun = execute(ATPGRequest(spec="figure1", modes=("forbidden",),
                                learned="figure1.json"))
    print(rerun.result["atpg"]["forbidden"]) # det / untest / CPU

The same requests drive the CLI (``repro learn figure1 --save f.json``
then ``repro atpg figure1 --learned f.json --json``) and the warm
``repro serve`` daemon (``POST /v1/execute``).  The pre-API
:class:`repro.flow.Session` facade remains as a deprecation shim, and
the original free functions (:func:`learn`, :func:`run_atpg`, ...) stay
available as the underlying primitives.

Packages:

* :mod:`repro.api` -- versioned requests, execute(), events, the daemon
* :mod:`repro.flow` -- sessions, typed configs, serializable artifacts
* :mod:`repro.circuit` -- netlists, bench IO, built-ins, generator, retiming
* :mod:`repro.sim` -- event-driven 3-valued, bit-parallel, fault simulation
* :mod:`repro.core` -- the paper's sequential learning engine
* :mod:`repro.atpg` -- sequential PODEM ATPG with learned-implication modes
* :mod:`repro.analysis` -- density of encoding, exact state-space oracles
"""

from .circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    counter,
    equivalence_demo,
    figure1,
    figure2,
    industrial_like,
    iscas_like,
    load_bench,
    one_hot_ring,
    parse_bench,
    random_circuit,
    retime_circuit,
    s27,
)
from .core import LearnConfig, LearnResult, SequentialLearner, learn
from .atpg import (
    Fault,
    SequentialATPG,
    collapse_faults,
    compare_modes,
    compare_untestable,
    fires_untestable,
    run_atpg,
)
from .analysis import analyze_state_space
from .sim import FrameSimulator, fault_simulate, simulate_sequence
from .flow import (
    ATPGConfig,
    ArtifactError,
    CircuitResolveError,
    ConfigError,
    PipelineSession,
    ReproConfig,
    Session,
    StaleArtifactError,
    SuiteReport,
    circuit_fingerprint,
    load_learn_result,
    resolve_circuit,
    run_suite,
    save_learn_result,
)
from . import api
from .api import Response, execute

__version__ = "1.1.0"

__all__ = [
    "Circuit", "CircuitBuilder", "GateType",
    "counter", "equivalence_demo", "figure1", "figure2",
    "industrial_like", "iscas_like", "load_bench", "one_hot_ring",
    "parse_bench", "random_circuit", "retime_circuit", "s27",
    "LearnConfig", "LearnResult", "SequentialLearner", "learn",
    "Fault", "SequentialATPG", "collapse_faults", "compare_modes",
    "compare_untestable", "fires_untestable", "run_atpg",
    "analyze_state_space",
    "FrameSimulator", "fault_simulate", "simulate_sequence",
    "ATPGConfig", "ArtifactError", "CircuitResolveError", "ConfigError",
    "PipelineSession", "ReproConfig", "Session", "StaleArtifactError",
    "SuiteReport", "circuit_fingerprint", "load_learn_result",
    "resolve_circuit", "run_suite", "save_learn_result",
    "api", "Response", "execute",
    "__version__",
]
