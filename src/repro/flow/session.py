"""The pipeline session -- one circuit, one config, cached stages.

The paper's workflow is *learn once, reuse across many ATPG runs*.  A
:class:`PipelineSession` makes that a first-class object: it binds one
circuit spec to one :class:`~repro.flow.config.ReproConfig` and exposes
the pipeline as named, individually cached stages::

    resolve -> learn -> untestable -> atpg[mode] -> fault_sim[mode]

Each stage runs at most once per session (per ATPG mode for the last
two); asking again returns the cached result.  Learned knowledge can be
saved to / loaded from a JSON artifact (:mod:`repro.flow.serialize`), so
the expensive learning stage is skipped entirely when a fresh artifact
exists -- this is what the CLI's ``learn --save`` / ``atpg --learned``
pair rides on.

:class:`PipelineSession` is the *internal* execution engine behind
:func:`repro.api.execute`; the public :class:`Session` name is kept as a
deprecation shim for pre-API callers (it behaves identically and emits
a :class:`DeprecationWarning` on construction).

``progress`` hooks fire as ``progress(stage, event, payload)`` with
``event`` in ``{"start", "end"}``; ``payload`` is ``None`` at start and a
small summary dict at end.  :func:`run_suite` batches sessions over many
circuit specs into a :class:`SuiteReport` with one JSON document for the
whole run.
"""

from __future__ import annotations

import re
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..atpg.driver import ATPGStats, run_atpg
from ..atpg.faults import collapse_faults
from ..atpg.untestable import UntestableComparison, compare_untestable
from ..circuit import (
    BUILTIN,
    get_builtin,
    iscas_like,
    load_bench,
    retime_circuit,
)
from ..circuit.netlist import Circuit, CircuitError
from ..core.engine import LearnResult, learn
from ..sim.compiled import make_fault_simulator
from .config import ATPG_MODES, ConfigError, ReproConfig, normalize_jobs
from .serialize import (
    load_learn_result,
    save_learn_result,
    write_json_atomic,
)

#: progress(stage_name, "start" | "end", payload_or_None)
ProgressHook = Callable[[str, str, Optional[dict]], None]


class CircuitResolveError(ValueError):
    """A circuit spec that cannot be turned into a circuit."""


#: Memory addresses in exception text (e.g. pickling errors quoting an
#: object repr) differ every run; error records are part of the
#: deterministic report contract, so they are masked.
_ADDRESSES = re.compile(r"0x[0-9a-fA-F]+")


def error_record(spec, error: str, stage: str) -> Dict[str, str]:
    """The one shape of a per-circuit failure (``SuiteReport.errors``).

    Serial and sharded suite paths must emit byte-identical records, so
    the schema lives in exactly one place.  A :class:`Circuit` spec is
    recorded by its name -- its default repr carries a memory address,
    which would differ run to run and break report determinism -- and
    addresses inside the error text are masked for the same reason.
    """
    return {"spec": str(getattr(spec, "name", spec)),
            "error": _ADDRESSES.sub("0x...", error), "stage": stage}


class StageTracker:
    """Progress passthrough that remembers the innermost started stage.

    Suite runners wrap the user's hook in one of these so a mid-pipeline
    failure can be attributed to the stage that was running
    (``SuiteReport.errors[*]["stage"]``).  Before any stage starts the
    position is ``"config"`` -- the only work that happens there is
    session construction, i.e. config validation.

    Progress hooks are UI, not data: an exception thrown by the wrapped
    hook is suppressed here, exactly as the parallel path's queue drain
    thread suppresses it, so a broken hook can never make serial and
    sharded suite reports diverge.
    """

    def __init__(self, inner: Optional[ProgressHook] = None,
                 cancel: Optional[Callable[[], None]] = None):
        self.inner = inner
        self.stage = "config"
        #: Raising checkpoint hook (the serve tier's cancellation
        #: token); unlike ``inner`` its exceptions must propagate --
        #: cancellation is control flow, not UI.
        self.cancel = cancel

    def __call__(self, stage: str, event: str,
                 payload: Optional[dict]) -> None:
        if event == "start":
            self.stage = stage
        if self.inner is not None:
            try:
                self.inner(stage, event, payload)
            except Exception:
                pass


def resolve_circuit(spec: Union[str, Circuit],
                    retime: int = 0) -> Circuit:
    """Turn a circuit spec into a :class:`Circuit`.

    ``spec`` is a built-in name (``figure1``, ``s27``, ...), a generator
    profile ``like:<name>[@scale]`` (``like:s382@0.5``), a path to an
    ISCAS-89 ``.bench`` file, or an already-built :class:`Circuit`.
    Raises :class:`CircuitResolveError` with an actionable message for
    anything else -- never a raw ``KeyError``/``FileNotFoundError``.
    """
    if isinstance(spec, Circuit):
        circuit = spec
    elif spec in BUILTIN:
        circuit = get_builtin(spec)
    elif spec.startswith("like:"):
        body = spec[len("like:"):]
        name, _, scale = body.partition("@")
        try:
            if scale:
                circuit = iscas_like(name, scale=float(scale))
            else:
                circuit = iscas_like(name)
        except KeyError as exc:
            raise CircuitResolveError(
                f"unknown profile {name!r} in {spec!r}: "
                f"{exc.args[0]}") from exc
        except ValueError as exc:
            raise CircuitResolveError(
                f"bad scale in {spec!r}: {exc}") from exc
    else:
        try:
            circuit = load_bench(spec)
        except OSError as exc:
            raise CircuitResolveError(
                f"cannot read bench file {spec!r}: {exc}; expected a "
                "built-in name, like:<profile>[@scale], or a .bench "
                "path (see `repro list`)") from exc
        except CircuitError as exc:
            raise CircuitResolveError(
                f"malformed bench file {spec!r}: {exc}") from exc
    if retime:
        circuit = retime_circuit(circuit, moves=retime,
                                 name=circuit.name + "_retimed")
    return circuit


@dataclass
class StageRecord:
    """Timing + summary of one completed pipeline stage."""

    stage: str
    elapsed: float
    summary: Dict[str, object] = field(default_factory=dict)


class PipelineSession:
    """One circuit, one config, every pipeline stage cached."""

    #: When true (set by :func:`repro.api.execute`), long ATPG stages
    #: emit throttled ``(stage, "tick", {"done", "total"})`` progress
    #: events between ``start`` and ``end``.  Off by default so legacy
    #: ``Session`` progress hooks see the historical start/end-only
    #: stream.
    emit_ticks = False

    #: Raising checkpoint callable (set by :func:`repro.api.execute`
    #: when a cancellation token is attached): checked at every stage
    #: boundary and threaded into ``run_atpg``'s fault loop, so a
    #: deadline or client disconnect stops the search mid-stage instead
    #: of after it.  ``None`` (the default) costs nothing.
    cancel_check: Optional[Callable[[], None]] = None

    def __init__(self, spec: Union[str, Circuit],
                 config: Optional[ReproConfig] = None,
                 progress: Optional[ProgressHook] = None):
        self.spec = spec
        self.config = (config or ReproConfig()).validate()
        self.progress = progress
        self.records: List[StageRecord] = []
        self._circuit: Optional[Circuit] = None
        self._learned: Optional[LearnResult] = None
        self._untestable: Optional[UntestableComparison] = None
        self._atpg: Dict[str, ATPGStats] = {}
        self._fault_sim: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def _stage(self, name: str, fn, summarize):
        if self.cancel_check is not None:
            self.cancel_check()
        if self.progress is not None:
            self.progress(name, "start", None)
        t0 = time.perf_counter()
        value = fn()
        record = StageRecord(stage=name,
                             elapsed=time.perf_counter() - t0,
                             summary=summarize(value))
        self.records.append(record)
        if self.progress is not None:
            self.progress(name, "end", dict(record.summary))
        return value

    def run_stage(self, name: str, fn, summarize=lambda value: {}):
        """Run an ad-hoc named stage: timing, record, progress events.

        The extension point for work that belongs in this session's
        report but is not one of the built-in pipeline stages (the API
        layer's ``compare`` and ``analyze`` stages ride on this).
        """
        return self._stage(name, fn, summarize)

    # ------------------------------------------------------------------
    # resolve
    # ------------------------------------------------------------------
    @property
    def circuit(self) -> Circuit:
        """The resolved circuit (stage ``resolve``, cached)."""
        if self._circuit is None:
            self._circuit = self._stage(
                "resolve",
                lambda: resolve_circuit(self.spec, self.config.retime),
                lambda c: {"circuit": c.name, **c.stats()})
        return self._circuit

    # ------------------------------------------------------------------
    # learn
    # ------------------------------------------------------------------
    def learn(self) -> LearnResult:
        """Stage ``learn`` (cached; skipped when an artifact is loaded).

        The simulation backend behind equivalence signatures follows
        ``config.atpg.sim_backend``; learned knowledge is identical for
        either backend.
        """
        if self._learned is None:
            circuit = self.circuit
            self._learned = self._stage(
                "learn",
                lambda: learn(circuit, self.config.learn,
                              sim_backend=self.config.atpg.sim_backend),
                lambda r: dict(r.summary()))
        return self._learned

    def attach_learned(self, result: LearnResult) -> None:
        """Use an existing in-memory result instead of relearning."""
        if result.circuit is not self.circuit and (
                result.circuit.fingerprint()
                != self.circuit.fingerprint()):
            raise CircuitResolveError(
                f"learned result is for {result.circuit.name!r}, not "
                f"{self.circuit.name!r}")
        self._learned = result

    def adopt_learned(self, result: LearnResult) -> LearnResult:
        """Stage ``learn`` satisfied from a cached in-memory result.

        Unlike :meth:`attach_learned` this records a ``learn`` stage
        with the same summary shape a fresh :meth:`learn` would have
        produced, so reports from cache-hit runs are canonically
        byte-identical to cold runs (only wall-clock fields differ, and
        those are volatile by contract).  The result must match this
        session's circuit fingerprint.
        """
        circuit = self.circuit

        def fetch() -> LearnResult:
            if result.circuit is not circuit and (
                    result.circuit.fingerprint()
                    != circuit.fingerprint()):
                raise CircuitResolveError(
                    f"learned result is for {result.circuit.name!r}, "
                    f"not {circuit.name!r}")
            return result

        self._learned = self._stage(
            "learn", fetch, lambda r: dict(r.summary()))
        return self._learned

    def load_learned(self, path) -> LearnResult:
        """Stage ``learn`` satisfied from a saved JSON artifact."""
        circuit = self.circuit
        self._learned = self._stage(
            "learn",
            lambda: load_learn_result(path, circuit),
            lambda r: {**r.summary(), "artifact": str(path)})
        return self._learned

    def save_learned(self, path) -> None:
        """Persist the (possibly freshly computed) learning result."""
        save_learn_result(self.learn(), path)

    # ------------------------------------------------------------------
    # untestable screen
    # ------------------------------------------------------------------
    def untestable_screen(self) -> UntestableComparison:
        """Stage ``untestable``: tie-gate vs FIRES screen (cached).

        Learning comes from the shared ``learn`` stage (depth
        ``config.learn.max_frames``, not ``compare_untestable``'s
        internal default), and its CPU is folded back into
        ``tie_cpu_s`` so the tie-vs-FIRES CPU comparison still charges
        the tie side for the learning that produced its ties.
        """
        if self._untestable is None:
            circuit = self.circuit
            learned = self.learn()

            def screen() -> UntestableComparison:
                comparison = compare_untestable(circuit, learned=learned)
                comparison.tie_cpu_s += learned.elapsed
                return comparison

            self._untestable = self._stage(
                "untestable", screen, lambda c: dict(c.row()))
        return self._untestable

    # ------------------------------------------------------------------
    # ATPG
    # ------------------------------------------------------------------
    def atpg(self, mode: Optional[str] = None) -> ATPGStats:
        """Stage ``atpg`` for one implication mode (cached per mode).

        ``mode='none'`` is the paper's true no-learning baseline: the
        learned result is withheld entirely, including the tie-gate
        untestability screen.  The PODEM engine follows
        ``config.atpg.atpg_engine`` ('incremental' by default,
        'reference' as the oracle); statistics are bit-identical for
        either engine.
        """
        mode = mode or self.config.atpg.mode
        if mode not in ATPG_MODES:
            raise ConfigError(
                f"mode must be one of {ATPG_MODES}, got {mode!r}")
        if mode not in self._atpg:
            circuit = self.circuit
            learned = None if mode == "none" else self.learn()
            config = replace(self.config.atpg, mode=mode)
            tick = None
            if self.emit_ticks and self.progress is not None:
                stage_name, hook = f"atpg[{mode}]", self.progress

                def tick(done: int, total: int) -> None:
                    # Throttled: fault loops can be long, progress is UI.
                    if done % 25 == 0 or done == total:
                        hook(stage_name, "tick",
                             {"done": done, "total": total})

            self._atpg[mode] = self._stage(
                f"atpg[{mode}]",
                lambda: run_atpg(circuit, learned=learned, config=config,
                                 progress=tick,
                                 cancel=self.cancel_check),
                lambda s: dict(s.row()))
        return self._atpg[mode]

    def compare(self, modes: Sequence[str] = ATPG_MODES
                ) -> List[ATPGStats]:
        """Run (or fetch) the ATPG stage for several modes in order."""
        return [self.atpg(mode) for mode in modes]

    def adopt_atpg(self, mode: str, stats: ATPGStats) -> ATPGStats:
        """Stage ``atpg[mode]`` satisfied from an already-merged result.

        The distributed merge path (:mod:`repro.dist`) computes
        :class:`~repro.atpg.driver.ATPGStats` outside this session --
        sharded over workers, replayed deterministically -- and adopts
        it here so the session report has the same stage records, in
        the same order, with the same summaries a locally-computed run
        would have produced (wall-clock fields aside, which canonical
        reports zero).  Mirrors :meth:`adopt_learned` for learn.
        """
        if mode not in ATPG_MODES:
            raise ConfigError(
                f"mode must be one of {ATPG_MODES}, got {mode!r}")
        if stats.circuit != self.circuit.name:
            raise CircuitResolveError(
                f"ATPG stats are for {stats.circuit!r}, not "
                f"{self.circuit.name!r}")
        self._atpg[mode] = self._stage(
            f"atpg[{mode}]", lambda: stats, lambda s: dict(s.row()))
        return self._atpg[mode]

    # ------------------------------------------------------------------
    # fault simulation
    # ------------------------------------------------------------------
    def fault_sim(self, mode: Optional[str] = None) -> Dict[str, object]:
        """Stage ``fault_sim``: grade the generated test set (cached).

        Replays the ATPG stage's kept sequences against the full
        collapsed fault list and reports independent fault coverage.
        Requires ``atpg.keep_sequences=True`` when any tests were
        generated -- grading needs the vectors.
        """
        mode = mode or self.config.atpg.mode
        if mode in self._fault_sim:
            return self._fault_sim[mode]
        stats = self.atpg(mode)
        if stats.sequences_total and not stats.sequences:
            raise ConfigError(
                "fault_sim needs the generated vectors; re-run with "
                "ATPGConfig.keep_sequences=True")
        circuit = self.circuit

        def grade() -> Dict[str, object]:
            faults = collapse_faults(circuit)
            simulator = make_fault_simulator(
                circuit, width=self.config.atpg.sim_width,
                backend=self.config.atpg.sim_backend)
            undetected = list(faults)
            for sequence in stats.sequences:
                if not undetected:
                    break
                hits = simulator.detected(sequence, undetected)
                undetected = [f for i, f in enumerate(undetected)
                              if i not in hits]
            detected = len(faults) - len(undetected)
            return {
                "circuit": circuit.name,
                "mode": mode,
                "sequences": stats.sequences_total,
                "total_faults": len(faults),
                "detected": detected,
                "fault_coverage_%": round(
                    100.0 * detected / len(faults), 2) if faults else 100.0,
            }

        self._fault_sim[mode] = self._stage(
            f"fault_sim[{mode}]", grade, lambda r: dict(r))
        return self._fault_sim[mode]

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Everything this session has computed, as one JSON-able dict."""
        out: Dict[str, object] = {
            "circuit": self.circuit.name,
            "fingerprint": self.circuit.fingerprint(),
            "config": self.config.to_dict(),
            "stages": [{"stage": r.stage,
                        "elapsed_s": round(r.elapsed, 4),
                        **r.summary} for r in self.records],
        }
        if self._learned is not None:
            out["learn"] = dict(self._learned.summary())
        if self._untestable is not None:
            out["untestable"] = dict(self._untestable.row())
        if self._atpg:
            out["atpg"] = {mode: dict(stats.row())
                           for mode, stats in self._atpg.items()}
        if self._fault_sim:
            out["fault_sim"] = {mode: dict(res)
                                for mode, res in self._fault_sim.items()}
        return out


class Session(PipelineSession):
    """Deprecated alias of the pipeline session.

    ``Session`` predates the versioned :mod:`repro.api` boundary; new
    code should build a typed request and call
    :func:`repro.api.execute` (one entrypoint, stable envelopes, shared
    caches).  This shim keeps every pre-API call site working unchanged
    -- it *is* the engine the API executes on -- but flags itself so
    callers migrate::

        from repro.api import ATPGRequest, execute
        response = execute(ATPGRequest(spec="s27"))

    The shim will be removed one major version after the API stabilizes.
    """

    def __init__(self, spec: Union[str, Circuit],
                 config: Optional[ReproConfig] = None,
                 progress: Optional[ProgressHook] = None):
        warnings.warn(
            "repro.flow.Session is deprecated; build a repro.api "
            "request and call repro.api.execute() instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(spec, config=config, progress=progress)


# ----------------------------------------------------------------------
# suites
# ----------------------------------------------------------------------
#: Wall-clock keys zeroed by :meth:`SuiteReport.canonical_dict`.  These
#: are the only report fields that vary run to run (the pipeline itself
#: is seeded); everything else must be identical for the same specs and
#: config regardless of worker count.
VOLATILE_KEYS = frozenset(
    {"elapsed_s", "cpu_s", "elapsed", "phase_times",
     "tie_cpu_s", "fires_cpu_s"})


def canonicalize_volatile(value):
    """Deep-copy ``value`` with every volatile timing field zeroed."""
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if key in VOLATILE_KEYS:
                out[key] = ({name: 0.0 for name in item}
                            if isinstance(item, dict) else 0.0)
            else:
                out[key] = canonicalize_volatile(item)
        return out
    if isinstance(value, list):
        return [canonicalize_volatile(item) for item in value]
    return value


@dataclass
class SuiteReport:
    """Batch results: one :meth:`Session.report` per circuit spec.

    ``reports`` and ``errors`` are both kept in input-spec order, so the
    document is deterministic for a given spec list and config no matter
    how the suite was executed (serially or sharded over workers).
    """

    reports: List[Dict[str, object]] = field(default_factory=list)
    errors: List[Dict[str, str]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        """Flat table: one row per (circuit, ATPG mode)."""
        rows = []
        for report in self.reports:
            for mode, stats in sorted(report.get("atpg", {}).items()):
                rows.append({"circuit": report["circuit"],
                             "mode": mode, **stats})
        return rows

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": "repro/suite-report",
            "version": 1,
            "circuits": len(self.reports),
            "errors": list(self.errors),
            "reports": list(self.reports),
        }

    def canonical_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` with wall-clock fields zeroed.

        Two runs over the same specs and config -- any ``jobs`` value,
        any machine -- produce byte-identical canonical documents; only
        the timing fields in :data:`VOLATILE_KEYS` ever differ between
        runs, and this form zeroes them (keeping the keys, so the schema
        is unchanged).
        """
        return canonicalize_volatile(self.to_dict())

    def save(self, path, canonical: bool = False) -> None:
        """Write the report as JSON, atomically (temp file + rename)."""
        write_json_atomic(
            path, self.canonical_dict() if canonical else self.to_dict())


def run_suite(specs: Sequence[Union[str, Circuit]],
              config: Optional[ReproConfig] = None,
              modes: Sequence[str] = ATPG_MODES,
              progress: Optional[ProgressHook] = None,
              keep_going: bool = True,
              jobs: Optional[int] = None) -> SuiteReport:
    """Run the full pipeline over many circuit specs.

    Each spec gets its own :class:`Session` (learning runs once per
    circuit and is shared by every ATPG mode).  The suite-wide config is
    validated eagerly -- a bad ``config``/``jobs`` raises
    :class:`ConfigError` before anything runs, since it would fail every
    spec identically.  After that, with ``keep_going`` (the default)
    *any* per-circuit failure -- resolve, a crash in the middle of
    learning/ATPG, a dying worker -- is recorded in
    :attr:`SuiteReport.errors` as ``{"spec", "error", "stage"}`` and the
    suite continues; otherwise the first error propagates.

    ``jobs`` shards the specs over a multiprocessing worker pool
    (:mod:`repro.flow.parallel_suite`): ``None`` defers to
    ``config.jobs``, ``1`` runs serially in-process, ``0`` means one
    worker per CPU core.  A single-spec suite has nothing to shard and
    always runs serially (so the parallel path's ``SuiteError``
    semantics apply only from two specs up).  The report is
    deterministic -- identical content and order -- for every ``jobs``
    value; see :meth:`SuiteReport.canonical_dict` for the byte-identical
    form.
    """
    base = config or ReproConfig()
    if jobs is not None:
        # ReproConfig.validate is the single source of the jobs rule.
        base = replace(base, jobs=jobs)
    base = base.validate()
    jobs = normalize_jobs(base.jobs)
    # Sessions always carry jobs=1: parallelism is a property of suite
    # execution, not of any one circuit's pipeline, and reports must not
    # depend on the worker count.
    session_config = replace(base, jobs=1)
    from .parallel_suite import SuiteTask, run_suite_parallel, run_task

    if jobs > 1 and len(specs) > 1:
        return run_suite_parallel(specs, config=session_config,
                                  modes=modes, progress=progress,
                                  keep_going=keep_going, jobs=jobs)
    # The serial loop runs the exact same per-circuit body as a pool
    # worker (one copy of the pipeline, in parallel_suite.run_task), so
    # reports and failure attribution cannot drift between jobs values.
    report = SuiteReport()
    for index, spec in enumerate(specs):
        result = run_task(
            SuiteTask(index=index, spec=spec, config=session_config,
                      modes=tuple(modes)),
            progress=progress, reraise=not keep_going)
        if result.error is not None:
            report.errors.append(result.error)
        else:
            report.reports.append(result.report)
    return report
