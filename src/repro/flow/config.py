"""Typed, serializable configuration for the pipeline layer.

:class:`ATPGConfig` replaces the keyword-argument soup that used to ride
on :func:`repro.atpg.run_atpg` / :func:`repro.atpg.compare_modes`;
:class:`ReproConfig` bundles it with the learning engine's
:class:`~repro.core.engine.LearnConfig` into one object a
:class:`~repro.flow.session.Session` (or a config file) can carry.  All
three round-trip through plain dicts -- ``json.dumps(cfg.to_dict())`` is
the canonical on-disk form -- and reject unknown keys on the way back in
so a typo in a config file fails loudly instead of being ignored.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from ..atpg.engine import ATPG_ENGINES
from ..core.engine import LearnConfig
from ..sim.compiled import SIM_BACKENDS

#: Legal values for :attr:`ATPGConfig.mode`.
ATPG_MODES = ("none", "forbidden", "known")

__all__ = ["ATPG_MODES", "ATPG_ENGINES", "SIM_BACKENDS", "ATPGConfig",
           "ConfigError", "ReproConfig", "canonical_json",
           "normalize_jobs"]


class ConfigError(ValueError):
    """Raised for invalid or unknown configuration values."""


def normalize_jobs(jobs: int) -> int:
    """Resolve the ``jobs`` knob to a concrete worker count.

    ``0`` means "one worker per CPU core" everywhere a worker count
    appears (``run_suite``, the parallel pool, ``repro worker --jobs``);
    this helper is the single copy of that rule, clamped to at least 1
    on platforms where ``os.cpu_count()`` is unknowable.  Validation
    (non-negative int) stays in :meth:`ReproConfig.validate`.
    """
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def canonical_json(payload) -> str:
    """The one canonical JSON form used for hashing configurations.

    Sorted keys, no whitespace, no NaN/Infinity.  Every digest in the
    system (:meth:`ATPGConfig.config_digest`, the API request digests,
    the content-addressed artifact store) hashes exactly this form, so
    two configs that round-trip to the same dict always collide -- and
    a formatting change can never silently invalidate every cache.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def _digest(prefix: str, payload) -> str:
    return hashlib.sha256(
        f"{prefix}:{canonical_json(payload)}".encode()).hexdigest()


def _from_dict(cls, data: Dict[str, object]):
    """Shared strict dict -> dataclass constructor."""
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown {cls.__name__} keys: {sorted(unknown)}")
    return cls(**data)


@dataclass
class ATPGConfig:
    """Knobs of one full-circuit ATPG run (one Table-5 cell group)."""

    #: Implication mode: 'none', 'forbidden' or 'known'.
    mode: str = "forbidden"
    #: PODEM backtrack limit per fault (the paper uses 30 and 1000).
    backtrack_limit: int = 30
    #: Maximum time-frame window during test generation.
    max_frames: int = 10
    #: Cap the collapsed fault list by random sampling (None = all).
    max_faults: Optional[int] = None
    #: Seed for don't-care fill and fault sampling.
    fill_seed: int = 12345
    #: Keep generated test vectors on :class:`~repro.atpg.ATPGStats`.
    #: Off by default so batch/suite runs over large circuits don't hold
    #: every vector in memory; ``sequences_total`` is counted either way.
    keep_sequences: bool = False
    #: Simulation backend for fault simulation and learning signatures:
    #: 'compiled' (straight-line kernels, the default), 'array'
    #: (whole-circuit vectorized kernels; numpy-accelerated with the
    #: ``repro[fast]`` extra, pure-bigint otherwise) or 'reference'
    #: (the original interpreters).  Results are bit-identical; the
    #: reference backend exists for differential testing and debugging.
    sim_backend: str = "compiled"
    #: Machine-batch width of the fault-dropping simulator (one fault
    #: machine per bit column; ``None`` = the backend's default, e.g.
    #: 4096 on the numpy array substrate).  A pure packing knob:
    #: detection sets -- and therefore every statistic -- never depend
    #: on it, which the differential harness enforces.
    sim_width: Optional[int] = None
    #: PODEM engine behind test generation: 'incremental' (event-driven
    #: window updates with trail-based backtracking, the default) or
    #: 'reference' (full window re-simulation per decision).  Results
    #: are bit-identical; the reference engine is the oracle of the
    #: differential harness.
    atpg_engine: str = "incremental"

    def validate(self) -> "ATPGConfig":
        """Raise :class:`ConfigError` on out-of-range values."""
        if self.mode not in ATPG_MODES:
            raise ConfigError(
                f"mode must be one of {ATPG_MODES}, got {self.mode!r}")
        if self.sim_backend not in SIM_BACKENDS:
            raise ConfigError(
                f"sim_backend must be one of {SIM_BACKENDS}, "
                f"got {self.sim_backend!r}")
        if self.atpg_engine not in ATPG_ENGINES:
            raise ConfigError(
                f"atpg_engine must be one of {ATPG_ENGINES}, "
                f"got {self.atpg_engine!r}")
        if self.backtrack_limit < 1:
            raise ConfigError("backtrack_limit must be >= 1")
        if self.max_frames < 1:
            raise ConfigError("max_frames must be >= 1")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigError("max_faults must be >= 1 or None")
        if self.sim_width is not None and self.sim_width < 1:
            raise ConfigError("sim_width must be >= 1 or None")
        return self

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_canonical_json(self) -> str:
        """Canonical JSON: sorted keys, defaults materialized.

        ``to_dict`` walks every dataclass field, so unset knobs appear
        with their default values -- two configs differing only in how
        they were spelled hash identically.
        """
        return canonical_json(self.to_dict())

    def config_digest(self) -> str:
        """Stable SHA-256 over :meth:`to_canonical_json`."""
        return _digest("repro/atpg-config", self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ATPGConfig":
        return _from_dict(cls, data).validate()


@dataclass
class ReproConfig:
    """Everything one pipeline run needs, in one serializable object."""

    learn: LearnConfig = field(default_factory=LearnConfig)
    atpg: ATPGConfig = field(default_factory=ATPGConfig)
    #: Backward-retiming moves applied to the circuit after resolution.
    retime: int = 0
    #: Worker processes for :func:`~repro.flow.session.run_suite`:
    #: ``1`` runs circuits serially in-process (the default), ``N > 1``
    #: shards them over N workers, ``0`` means one worker per CPU core.
    #: A suite-execution knob only -- per-circuit sessions always run
    #: (and report) with ``jobs=1``, so suite reports do not depend on
    #: the worker count.
    jobs: int = 1

    def validate(self) -> "ReproConfig":
        if self.retime < 0:
            raise ConfigError("retime must be >= 0")
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
            raise ConfigError(
                f"jobs must be an int, got {self.jobs!r}")
        if self.jobs < 0:
            raise ConfigError(
                f"jobs must be >= 0 (0 = all CPU cores), got {self.jobs}")
        if self.learn.max_frames < 1:
            raise ConfigError("learn.max_frames must be >= 1")
        self.atpg.validate()
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "learn": self.learn.to_dict(),
            "atpg": self.atpg.to_dict(),
            "retime": self.retime,
            "jobs": self.jobs,
        }

    def to_canonical_json(self) -> str:
        """Canonical JSON: sorted keys, every default materialized."""
        return canonical_json(self.to_dict())

    def config_digest(self) -> str:
        """Stable SHA-256 identifying what this config *computes*.

        ``jobs`` is normalized to 1 before hashing: it shards suite
        execution but never changes any result (per-circuit sessions
        always run with ``jobs=1``), so two runs differing only in
        worker count must share every cache entry.
        """
        payload = self.to_dict()
        payload["jobs"] = 1
        return _digest("repro/config", payload)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ReproConfig":
        data = dict(data)
        unknown = set(data) - {"learn", "atpg", "retime", "jobs"}
        if unknown:
            raise ConfigError(
                f"unknown ReproConfig keys: {sorted(unknown)}")
        learn = data.get("learn", {})
        atpg = data.get("atpg", {})
        if not isinstance(learn, LearnConfig):
            try:
                learn = LearnConfig.from_dict(learn)
            except ValueError as exc:
                # LearnConfig lives in core and raises plain ValueError;
                # normalize so callers can catch ConfigError for any typo.
                raise ConfigError(str(exc)) from exc
        return cls(
            learn=learn,
            atpg=(atpg if isinstance(atpg, ATPGConfig)
                  else ATPGConfig.from_dict(atpg)),
            retime=data.get("retime", 0),
            jobs=data.get("jobs", 1),
        ).validate()
