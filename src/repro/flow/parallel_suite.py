"""Shard a suite run across a multiprocessing worker pool.

:func:`repro.flow.session.run_suite` walks circuit specs one at a time
on one core; at benchmark-suite scale (learning + ATPG + fault
simulation over many sequential circuits) the circuits are independent,
so the suite is embarrassingly parallel.  This module is the execution
layer behind ``run_suite(jobs=N)`` / ``repro suite --jobs N``:

* :class:`SuiteTask` -- one picklable unit of work: spec index, the
  spec itself (a name string or a :class:`~repro.circuit.netlist.
  Circuit`), the :class:`~repro.flow.config.ReproConfig` and the ATPG
  modes to run.
* :func:`run_task` -- executes one task through a fresh
  :class:`~repro.flow.session.Session` and *always* returns a
  :class:`SuiteTaskResult`: either the session report or an
  ``{"spec", "error", "stage"}`` record.  A failing circuit never takes
  the suite down.
* :class:`QueueProgressAdapter` -- workers forward their ``progress``
  events into a multiprocessing queue; a parent-side drain thread
  replays them through the caller's ordinary
  :data:`~repro.flow.session.ProgressHook`.  Events from different
  workers interleave in completion order (they are UI, not data).
* :func:`run_suite_parallel` -- the pool driver.  Results are merged by
  input index, so ``SuiteReport.reports`` / ``.errors`` come out in
  spec order and the report content is identical to a serial run for
  every worker count (byte-identical via
  :meth:`~repro.flow.session.SuiteReport.canonical_dict`, which zeroes
  only wall-clock fields).

Workers are separate processes, so each warms its *own* compiled-kernel
cache (:func:`repro.sim.compiled.warm_cache`): the exec-generated
kernels are per-process state and are never shipped across the pool.

A worker that dies outright (killed, segfault) breaks the whole pool,
and every in-flight future raises ``BrokenProcessPool`` -- the culprit
circuit and its innocent pool-mates are indistinguishable at that
point.  The driver recovers in two steps: the tainted tasks are first
resubmitted together to one fresh full-width pool (innocents keep
running in parallel), and anything that pool also fails to finish is
retried alone in a single-worker pool -- a task that breaks its own
solo pool is definitively the one that killed it and is recorded as a
per-circuit error with ``stage="worker"``.  A dying worker fails its
circuit, never the suite.  The same per-circuit containment applies to
dispatch failures (``stage="dispatch"``): a spec that cannot be pickled
across the pool -- e.g. a hand-built :class:`Circuit` carrying an
unpicklable attribute -- fails that circuit only (the serial path,
which never pickles, would run it).
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.netlist import Circuit
from ..sim.compiled import warm_cache
from .config import ATPG_MODES, ReproConfig, normalize_jobs
from .session import (
    PipelineSession,
    ProgressHook,
    StageTracker,
    SuiteReport,
    error_record,
)



class SuiteError(RuntimeError):
    """First per-circuit failure of a ``keep_going=False`` parallel run.

    The serial path re-raises the original exception as it happens; a
    pool cannot (the failure is a dict shipped back from a worker), so
    it finishes the batch and raises this with the first failing spec --
    first by input order, which is deterministic, unlike completion
    order.
    """


@dataclass(frozen=True)
class SuiteTask:
    """One picklable unit of suite work: one spec through the pipeline."""

    index: int
    spec: Union[str, Circuit]
    config: ReproConfig
    modes: Tuple[str, ...]


@dataclass
class SuiteTaskResult:
    """What a worker sends back: exactly one of report / error is set."""

    index: int
    report: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, str]] = None


def run_task(task: SuiteTask,
             progress: Optional[ProgressHook] = None,
             reraise: bool = False) -> SuiteTaskResult:
    """Run one task to completion: the whole per-circuit pipeline.

    There is exactly one copy of this body -- pool workers and the
    serial loop in :func:`~repro.flow.session.run_suite` both run it,
    which is what keeps serial and sharded reports (including failure
    stage attribution) byte-identical.  By default a circuit failure is
    returned as an error record, never raised; ``reraise=True`` is the
    serial ``keep_going=False`` contract of propagating the original
    exception (workers never set it -- an exception does not reliably
    survive pickling back to the parent).
    """
    tracker = StageTracker(progress)
    try:
        session = PipelineSession(task.spec, config=task.config,
                                  progress=tracker)
        if task.config.atpg.sim_backend in ("compiled", "array"):
            # Compile kernels before the pipeline hot loops rather than
            # inside the first stage that needs them (a pool worker's
            # cache may start empty).  Passing the backend also warms
            # the array lowering + resident pattern engine for array
            # tasks instead of leaving them to the first stage.
            warm_cache(session.circuit,
                       backend=task.config.atpg.sim_backend)
        session.compare(list(task.modes))
        return SuiteTaskResult(index=task.index, report=session.report())
    except Exception as exc:
        if reraise:
            raise
        return SuiteTaskResult(
            index=task.index,
            error=error_record(task.spec, str(exc), tracker.stage))


# ----------------------------------------------------------------------
# worker-side plumbing
# ----------------------------------------------------------------------
_worker_queue = None


def _init_worker(progress_queue) -> None:
    """Pool initializer: remember the parent's progress queue, if any."""
    global _worker_queue
    _worker_queue = progress_queue


def _run_task_in_worker(task: SuiteTask) -> SuiteTaskResult:
    progress: Optional[ProgressHook] = None
    if _worker_queue is not None:
        queue = _worker_queue

        def progress(stage: str, event: str,
                     payload: Optional[dict]) -> None:
            queue.put((stage, event, payload))

    return run_task(task, progress)


# ----------------------------------------------------------------------
# parent-side plumbing
# ----------------------------------------------------------------------
class QueueProgressAdapter:
    """Replay worker progress events through a parent-side hook.

    Workers ``put`` raw ``(stage, event, payload)`` tuples on
    :attr:`queue`; :meth:`start` spins up a drain thread that calls the
    wrapped hook with the unchanged serial signature.  :meth:`close`
    (idempotent) flushes the queue, stops the thread and releases the
    queue's feeder resources -- events already enqueued are always
    delivered before ``close`` returns.
    """

    _SENTINEL = None

    def __init__(self, hook: ProgressHook, ctx=None):
        self.hook = hook
        self.queue = (ctx or multiprocessing.get_context()).Queue()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> None:
        if self._thread is None and not self._closed:
            self._thread = threading.Thread(
                target=self._drain, name="repro-suite-progress",
                daemon=True)
            self._thread.start()

    #: How long close() waits for the drain thread.  A worker killed
    #: mid-``put`` can leave the queue's shared pipe lock held forever;
    #: progress is UI, so after this deadline the daemon thread is
    #: abandoned rather than hanging the suite.
    CLOSE_TIMEOUT_S = 5.0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self.queue.put(self._SENTINEL)
            self._thread.join(timeout=self.CLOSE_TIMEOUT_S)
            self._thread = None
        # Never block on the queue's feeder either (its pipe lock may
        # be held by a dead worker); any still-buffered events are UI.
        self.queue.cancel_join_thread()
        self.queue.close()

    def _drain(self) -> None:
        while True:
            try:
                item = self.queue.get()
                if item is self._SENTINEL:
                    return
                stage, event, payload = item
            except Exception:
                # A worker killed mid-put corrupted the stream; stop
                # draining (remaining progress events are lost, the
                # suite is not) rather than risk spinning on a dead
                # pipe.
                return
            try:
                self.hook(stage, event, payload)
            except Exception:
                # A throwing UI hook must not wedge the drain thread
                # (and with it close()); the pipeline result is
                # unaffected either way.
                pass


def run_suite_parallel(specs: Sequence[Union[str, Circuit]],
                       config: Optional[ReproConfig] = None,
                       modes: Sequence[str] = ATPG_MODES,
                       progress: Optional[ProgressHook] = None,
                       keep_going: bool = True,
                       jobs: int = 0) -> SuiteReport:
    """Run the suite sharded over ``jobs`` worker processes.

    Same contract as :func:`~repro.flow.session.run_suite` with two
    parallel-specific notes: ``jobs=0`` means one worker per CPU core,
    and with ``keep_going=False`` the batch still runs to completion
    before the first failure (by input order) is raised as
    :class:`SuiteError`.
    """
    config = (config or ReproConfig()).validate()
    # ReproConfig.validate is the single source of the jobs rule;
    # normalize_jobs the single copy of the 0 -> all-cores expansion.
    jobs = normalize_jobs(replace(config, jobs=jobs).validate().jobs)
    config = replace(config, jobs=1)
    modes = tuple(modes)
    tasks = [SuiteTask(index=index, spec=spec, config=config, modes=modes)
             for index, spec in enumerate(specs)]

    ctx = multiprocessing.get_context()
    adapter = (QueueProgressAdapter(progress, ctx)
               if progress is not None else None)
    results: Dict[int, SuiteTaskResult] = {}
    initargs = (adapter.queue if adapter is not None else None,)

    def dispatch_error(task: SuiteTask, exc: BaseException) -> None:
        # The worker catches pipeline failures itself, so anything that
        # surfaces on the future besides a broken pool is a dispatch
        # problem -- typically an unpicklable spec.  It fails this
        # circuit only.
        results[task.index] = SuiteTaskResult(
            index=task.index,
            error=error_record(task.spec, str(exc), "dispatch"))

    def run_batch(batch: List[SuiteTask],
                  workers: int) -> List[SuiteTask]:
        """Run a batch in one fresh pool; return the tasks a pool break
        left unresolved (culprit and innocent alike), in input order."""
        tainted: List[SuiteTask] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(batch)),
                                 mp_context=ctx,
                                 initializer=_init_worker,
                                 initargs=initargs) as pool:
            futures = []
            for task in batch:
                try:
                    futures.append(
                        (pool.submit(_run_task_in_worker, task), task))
                except BrokenProcessPool:
                    tainted.append(task)
                except Exception as exc:
                    dispatch_error(task, exc)
            # Workers fork/spawn during submit; starting the drain
            # thread after keeps pool creation single-threaded.
            if adapter is not None:
                adapter.start()
            for future, task in futures:
                try:
                    results[task.index] = future.result()
                except BrokenProcessPool:
                    tainted.append(task)
                except Exception as exc:
                    dispatch_error(task, exc)
        return sorted(tainted, key=lambda task: task.index)

    try:
        suspects = run_batch(tasks, jobs) if tasks else []
        if suspects:
            # One wide retry first: a single death taints every
            # in-flight pool-mate, and most of those are innocents that
            # should keep running in parallel, not one-at-a-time.
            suspects = run_batch(suspects, jobs)
        # Whatever a fresh pool still could not finish gets a solo
        # single-worker pool: a task that breaks its own pool is
        # definitively the one that killed it.
        for task in suspects:
            if run_batch([task], 1):
                results[task.index] = SuiteTaskResult(
                    index=task.index,
                    error=error_record(
                        task.spec,
                        "worker process died while running this circuit",
                        "worker"))
    finally:
        if adapter is not None:
            adapter.close()

    report = SuiteReport()
    first_error: Optional[Dict[str, str]] = None
    for task in tasks:
        result = results[task.index]
        if result.error is not None:
            if first_error is None:
                first_error = result.error
            report.errors.append(dict(result.error))
        else:
            report.reports.append(result.report)
    if first_error is not None and not keep_going:
        raise SuiteError(
            f"{first_error['spec']} failed during {first_error['stage']}: "
            f"{first_error['error']}")
    return report
