"""JSON round-trip for learning artifacts and ATPG statistics.

The paper's whole point is *learn once, reuse everywhere*: the learned
implications, ties and equivalences are circuit invariants, so a
:class:`~repro.core.engine.LearnResult` computed in one process should be
reusable by every later ATPG run on the same netlist.  This module gives
it a stable on-disk form:

* :func:`learn_result_to_dict` / :func:`learn_result_from_dict` -- plain
  dicts, node references by *name* (human-diffable artifacts);
* :func:`save_learn_result` / :func:`load_learn_result` -- JSON files;
* :func:`atpg_stats_to_dict` / :func:`atpg_stats_from_dict` -- the same
  for :class:`~repro.atpg.driver.ATPGStats`.

Every artifact is keyed to the circuit's structural
:meth:`~repro.circuit.netlist.Circuit.fingerprint`.  Loading against a
circuit whose fingerprint differs raises :class:`StaleArtifactError` --
learned knowledge silently applied to the wrong netlist would be unsound,
which is the one failure mode this layer must never allow.

The phase-one ``single_node_data`` traces are deliberately *not*
serialized: they are simulation intermediates only the learning phases
themselves consume, and they dwarf the useful payload.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Dict, List, Optional

from ..atpg.driver import ATPGStats
from ..circuit.netlist import Circuit, CircuitError
from ..core.engine import LearnConfig, LearnResult
from ..core.multi_node import MultiNodeStats
from ..core.relations import RelationDB
from ..core.ties import TieSet

#: Bumped whenever the artifact layout changes incompatibly.
FORMAT_VERSION = 1

LEARN_FORMAT = "repro/learn-result"
STATS_FORMAT = "repro/atpg-stats"


class ArtifactError(ValueError):
    """Raised for malformed or incompatible serialized artifacts."""


#: Disambiguates concurrent temp files within one process; the pid in
#: the name separates processes.
_TMP_IDS = itertools.count()


def write_json_atomic(path, payload: Dict[str, object]) -> None:
    """Write ``payload`` as JSON without ever exposing a partial file.

    The document is written to a temporary file in the destination
    directory and ``os.replace``-d into place, so a crash (or full disk)
    mid-write leaves either the previous artifact or nothing -- never a
    truncated JSON document that a later load would reject.  The file is
    created with mode ``0o666`` so the kernel's umask yields the same
    permissions a plain ``open(path, "w")`` would have.
    """
    path = os.fspath(path)
    tmp_path = None
    try:
        while True:
            candidate = f"{path}.{os.getpid()}.{next(_TMP_IDS)}.tmp"
            try:
                fd = os.open(candidate,
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL,
                             0o666)
            except FileExistsError:
                continue  # stale leftover from a recycled pid
            except OSError as exc:
                # Surface the destination, not the internal temp name,
                # keeping the subclass and errno callers match on.
                raise type(exc)(
                    exc.errno, f"cannot write: {exc.strerror or exc}",
                    path) from exc
            tmp_path = candidate
            break
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
        raise


class StaleArtifactError(ArtifactError):
    """Raised when an artifact's circuit fingerprint does not match."""


def circuit_fingerprint(circuit: Circuit) -> str:
    """Structural hash keying artifacts to their netlist."""
    return circuit.fingerprint()


# ----------------------------------------------------------------------
# LearnResult
# ----------------------------------------------------------------------
def learn_result_to_dict(result: LearnResult,
                         digest: Optional[str] = None
                         ) -> Dict[str, object]:
    """Serializable form of everything the learning engine extracted.

    ``digest`` optionally stamps the artifact with its content address
    (circuit fingerprint + learning config, see
    :func:`repro.api.store.learn_digest`).  Digest-stamped artifacts can
    be validated against the *configuration* that produced them, not
    just the netlist -- the fingerprint-only check cannot tell a
    50-frame learning run from a 5-frame one.
    """
    circuit = result.circuit
    name_of = lambda nid: circuit.nodes[nid].name  # noqa: E731

    relations = [{
        "a": name_of(r.a), "va": r.va,
        "b": name_of(r.b), "vb": r.vb,
        "source": r.source, "sequential": r.sequential,
        "warmup": r.warmup,
    } for r in result.relations]
    ties = [{
        "node": name_of(t.nid), "value": t.value,
        "sequential": t.sequential, "phase": t.phase,
        "warmup": t.warmup,
    } for t in result.ties.all()]
    equivalences = [{
        "node": name_of(nid), "cls": name_of(cls), "polarity": pol,
    } for nid, (cls, pol) in sorted(result.equivalences.items())]
    multi = result.multi_stats
    payload: Dict[str, object] = {
        "format": LEARN_FORMAT,
        "version": FORMAT_VERSION,
        "circuit": {
            "name": circuit.name,
            "fingerprint": circuit.fingerprint(),
            "nodes": len(circuit),
            "ffs": circuit.num_ffs,
        },
        "config": result.config.to_dict(),
        "elapsed": result.elapsed,
        "phase_times": dict(result.phase_times),
        "relations": relations,
        "ties": ties,
        "equivalences": equivalences,
        "multi_stats": {
            "targets_run": multi.targets_run,
            "targets_skipped": multi.targets_skipped,
            "relations_added": multi.relations_added,
            "ties_found": multi.ties_found,
            "conflicts": [[name_of(nid), value]
                          for nid, value in multi.conflicts],
        },
    }
    if digest is not None:
        payload["digest"] = digest
    return payload


def _check_header(data: Dict[str, object], expected_format: str) -> None:
    if not isinstance(data, dict):
        raise ArtifactError(f"artifact must be a dict, got {type(data)}")
    if data.get("format") != expected_format:
        raise ArtifactError(
            f"not a {expected_format} artifact "
            f"(format={data.get('format')!r})")
    if data.get("version") != FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {data.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})")


def learn_result_from_dict(data: Dict[str, object],
                           circuit: Circuit,
                           expect_digest: Optional[str] = None
                           ) -> LearnResult:
    """Rebuild a :class:`LearnResult` against a live circuit.

    The circuit must structurally match the one the artifact was learned
    on; a fingerprint mismatch raises :class:`StaleArtifactError`.  When
    ``expect_digest`` is given, a digest-stamped artifact must carry
    exactly that content address (fingerprint *and* learning config) or
    :class:`StaleArtifactError` is raised; unstamped artifacts fall back
    to the fingerprint-only check for backward compatibility.
    """
    _check_header(data, LEARN_FORMAT)
    meta = data.get("circuit")
    if not isinstance(meta, dict):
        raise ArtifactError("artifact is missing its 'circuit' section")
    have = circuit.fingerprint()
    want = meta.get("fingerprint")
    if want != have:
        raise StaleArtifactError(
            f"artifact was learned on {meta.get('name')!r} "
            f"(fingerprint {str(want)[:12]}...), which does not match "
            f"circuit {circuit.name!r} (fingerprint {have[:12]}...); "
            "re-run learning for this netlist")
    stamped = data.get("digest")
    if (expect_digest is not None and stamped is not None
            and stamped != expect_digest):
        raise StaleArtifactError(
            f"artifact digest {str(stamped)[:12]}... does not match the "
            f"requested configuration (digest {expect_digest[:12]}...); "
            "it was learned with a different learning config -- re-run "
            "learning or drop the artifact")

    try:
        config = LearnConfig.from_dict(data.get("config", {}))
        return _rebuild_body(data, circuit, config)
    except CircuitError as exc:
        # Fingerprint matched but a node reference does not resolve:
        # the artifact was hand-edited or corrupted after saving.
        raise ArtifactError(
            f"artifact references a node the circuit does not have: "
            f"{exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ArtifactError):
            raise
        raise ArtifactError(
            f"malformed artifact payload: {exc!r}") from exc


def _rebuild_body(data: Dict[str, object], circuit: Circuit,
                  config: LearnConfig) -> LearnResult:
    relations = RelationDB(circuit)
    for item in data.get("relations", ()):
        relations.add(circuit.nid(item["a"]), item["va"],
                      circuit.nid(item["b"]), item["vb"],
                      source=item.get("source", "single"),
                      sequential=item.get("sequential", True),
                      warmup=item.get("warmup", 1))
    ties = TieSet(circuit)
    for item in data.get("ties", ()):
        ties.add(circuit.nid(item["node"]), item["value"],
                 sequential=item.get("sequential", True),
                 phase=item.get("phase", "single"),
                 warmup=item.get("warmup", 0))
    equivalences = {
        circuit.nid(item["node"]): (circuit.nid(item["cls"]),
                                    item["polarity"])
        for item in data.get("equivalences", ())}
    multi_raw = data.get("multi_stats", {})
    multi = MultiNodeStats(
        targets_run=multi_raw.get("targets_run", 0),
        targets_skipped=multi_raw.get("targets_skipped", 0),
        relations_added=multi_raw.get("relations_added", 0),
        ties_found=multi_raw.get("ties_found", 0),
        conflicts=[(circuit.nid(name), value)
                   for name, value in multi_raw.get("conflicts", ())])
    return LearnResult(
        circuit=circuit, config=config, relations=relations, ties=ties,
        equivalences=equivalences, single_node_data={},
        multi_stats=multi, elapsed=data.get("elapsed", 0.0),
        phase_times=dict(data.get("phase_times", {})))


def save_learn_result(result: LearnResult, path,
                      digest: Optional[str] = None) -> None:
    """Write a learning artifact as JSON (atomically)."""
    write_json_atomic(path, learn_result_to_dict(result, digest=digest))


def load_learn_result(path, circuit: Circuit,
                      expect_digest: Optional[str] = None) -> LearnResult:
    """Read a JSON learning artifact and bind it to ``circuit``."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{path}: not valid JSON ({exc})") from exc
    return learn_result_from_dict(data, circuit,
                                  expect_digest=expect_digest)


# ----------------------------------------------------------------------
# ATPGStats
# ----------------------------------------------------------------------
def atpg_stats_to_dict(stats: ATPGStats) -> Dict[str, object]:
    """Serializable form of one ATPG run's aggregate statistics."""
    return {
        "format": STATS_FORMAT,
        "version": FORMAT_VERSION,
        "circuit": stats.circuit,
        "mode": stats.mode,
        "backtrack_limit": stats.backtrack_limit,
        "total_faults": stats.total_faults,
        "detected": stats.detected,
        "untestable": stats.untestable,
        "aborted": stats.aborted,
        "collateral": stats.collateral,
        "decisions": stats.decisions,
        "backtracks": stats.backtracks,
        "cpu_s": stats.cpu_s,
        "sequences_total": stats.sequences_total,
        "sequences": [list(seq) for seq in stats.sequences],
    }


def atpg_stats_from_dict(data: Dict[str, object]) -> ATPGStats:
    """Inverse of :func:`atpg_stats_to_dict`."""
    _check_header(data, STATS_FORMAT)
    missing = {"circuit", "mode", "backtrack_limit"} - set(data)
    if missing:
        raise ArtifactError(
            f"stats artifact missing required keys: {sorted(missing)}")
    return ATPGStats(
        circuit=data["circuit"],
        mode=data["mode"],
        backtrack_limit=data["backtrack_limit"],
        total_faults=data.get("total_faults", 0),
        detected=data.get("detected", 0),
        untestable=data.get("untestable", 0),
        aborted=data.get("aborted", 0),
        collateral=data.get("collateral", 0),
        decisions=data.get("decisions", 0),
        backtracks=data.get("backtracks", 0),
        cpu_s=data.get("cpu_s", 0.0),
        sequences_total=data.get("sequences_total", 0),
        sequences=[list(seq) for seq in data.get("sequences", ())])
