"""Pipeline layer: typed configs, serializable artifacts, sessions.

This package is the execution layer under the versioned
:mod:`repro.api` boundary (the free functions in :mod:`repro.core` /
:mod:`repro.atpg` remain as the underlying primitives)::

    from repro.flow import PipelineSession, ReproConfig, ATPGConfig

    session = PipelineSession(
        "s27", ReproConfig(atpg=ATPGConfig(mode="known")))
    learned = session.learn()          # cached; run once
    session.save_learned("s27.json")   # reuse in later processes
    stats = session.atpg("known")      # uses the cached learning

New code should prefer :func:`repro.api.execute` with a typed request;
the historical :class:`Session` name is a deprecation shim over
:class:`PipelineSession`.

* :mod:`repro.flow.config` -- :class:`ReproConfig` / :class:`ATPGConfig`
* :mod:`repro.flow.serialize` -- JSON artifacts keyed to a circuit
  fingerprint
* :mod:`repro.flow.session` -- :class:`PipelineSession`,
  :func:`run_suite`
"""

from .config import (
    ATPG_ENGINES,
    ATPG_MODES,
    SIM_BACKENDS,
    ATPGConfig,
    ConfigError,
    ReproConfig,
    canonical_json,
    normalize_jobs,
)
from .serialize import (
    ArtifactError,
    StaleArtifactError,
    atpg_stats_from_dict,
    atpg_stats_to_dict,
    circuit_fingerprint,
    learn_result_from_dict,
    learn_result_to_dict,
    load_learn_result,
    save_learn_result,
    write_json_atomic,
)
from .session import (
    CircuitResolveError,
    PipelineSession,
    Session,
    StageRecord,
    StageTracker,
    SuiteReport,
    canonicalize_volatile,
    resolve_circuit,
    run_suite,
)
from .parallel_suite import (
    QueueProgressAdapter,
    SuiteError,
    SuiteTask,
    SuiteTaskResult,
    run_suite_parallel,
)

__all__ = [
    "ATPG_ENGINES", "ATPG_MODES", "SIM_BACKENDS", "ATPGConfig",
    "ConfigError", "ReproConfig", "canonical_json", "normalize_jobs",
    "ArtifactError", "StaleArtifactError",
    "atpg_stats_from_dict", "atpg_stats_to_dict",
    "circuit_fingerprint",
    "learn_result_from_dict", "learn_result_to_dict",
    "load_learn_result", "save_learn_result", "write_json_atomic",
    "CircuitResolveError", "PipelineSession", "Session", "StageRecord",
    "StageTracker", "SuiteReport", "canonicalize_volatile",
    "resolve_circuit", "run_suite",
    "QueueProgressAdapter", "SuiteError", "SuiteTask",
    "SuiteTaskResult", "run_suite_parallel",
]
