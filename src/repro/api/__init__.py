"""``repro.api`` -- the versioned request/plan/execute boundary.

One stable surface for every client.  Build a typed request, hand it to
:func:`execute`, get back a versioned response envelope::

    from repro.api import ATPGRequest, execute

    response = execute(ATPGRequest(spec="s27", modes=("known",)))
    assert response.ok and response.envelope()["schema_version"] == 2
    print(response.result["atpg"]["known"])

The CLI is a thin argv adapter over this module; ``repro serve``
(:mod:`repro.api.server`) exposes the same ``execute`` over JSON/HTTP
from one warm process.  Responses are deterministic: a daemon thread
and a one-shot CLI run produce the same envelope, byte-identical when
the request sets ``canonical=True``.

Module map:

* :mod:`repro.api.requests`  -- typed request kinds, canonical JSON,
  ``config_digest``
* :mod:`repro.api.planner`   -- request -> executable task DAG
* :mod:`repro.api.executor`  -- :func:`execute`, :class:`Response`
* :mod:`repro.api.events`    -- streaming ProgressEvent / StageEvent /
  ResultEvent protocol
* :mod:`repro.api.store`     -- content-addressed learn-artifact store
* :mod:`repro.api.errors`    -- the :class:`ReproError` taxonomy
* :mod:`repro.api.server`    -- the ``repro serve`` JSON-over-HTTP
  daemon

``__all__`` is the public API surface and is guarded by a checked-in
manifest (``tests/data/api_manifest.json``): additions and removals are
deliberate, reviewed events.
"""

from .errors import (
    ArtifactFailure,
    CancelledFailure,
    ConfigurationError,
    DeadlineExceeded,
    EngineError,
    IOFailure,
    OverloadFailure,
    PayloadTooLarge,
    ReproError,
    RequestError,
    ResolveError,
    classify_error,
)
from .events import (
    Event,
    EventSink,
    ProgressEvent,
    ResultEvent,
    StageEvent,
)
from .executor import Response, execute
from .planner import Plan, TaskNode, plan_request
from .requests import (
    PRIORITY_CLASSES,
    REQUEST_KINDS,
    SCHEMA_VERSION,
    ATPGRequest,
    AnalyzeRequest,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    ListRequest,
    Request,
    ShardRequest,
    StatsRequest,
    SuiteRequest,
    UntestableRequest,
    request_from_dict,
)
from .store import ArtifactStore, learn_digest

__all__ = [
    # versioning
    "SCHEMA_VERSION", "PRIORITY_CLASSES",
    # requests
    "Request", "LearnRequest", "UntestableRequest", "ATPGRequest",
    "FaultSimRequest", "SuiteRequest", "ShardRequest", "CompareRequest",
    "StatsRequest", "AnalyzeRequest", "ListRequest", "REQUEST_KINDS",
    "request_from_dict",
    # execution
    "Response", "execute", "Plan", "TaskNode", "plan_request",
    # events
    "Event", "EventSink", "ProgressEvent", "StageEvent", "ResultEvent",
    # store
    "ArtifactStore", "learn_digest",
    # errors
    "ReproError", "RequestError", "ConfigurationError", "ResolveError",
    "ArtifactFailure", "IOFailure", "EngineError", "PayloadTooLarge",
    "OverloadFailure", "DeadlineExceeded", "CancelledFailure",
    "classify_error",
    # server
    "make_server", "serve",
]


def __getattr__(name):
    # The server pulls in http.server; load it lazily so importing the
    # API for a one-shot run never pays for (or requires) it.
    if name in ("make_server", "serve"):
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
