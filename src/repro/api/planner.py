"""Compile a request into an executable task DAG.

The executor does not improvise: every request first becomes a
:class:`Plan` -- an ordered list of :class:`TaskNode` with explicit
dependencies -- and the plan is what runs.  This buys three things:

* **Cache visibility.**  The planner probes the artifact store, so a
  plan says up front which learn stages will be satisfied from cache
  (``cached=True``) and which must compute.
* **Introspection.**  ``Plan.to_dict()`` is JSON; clients (and the
  event stream) can see exactly what a request will cost before or
  while it runs.
* **Shared execution.**  Suite plans fan out one pipeline node per
  circuit and execute on :mod:`repro.flow.parallel_suite`'s worker
  pool -- the planner decides *what*, the pool decides *where*.

The DAG is deliberately coarse (stages, not gates): nodes mirror the
pipeline's stage names so plans, progress events and report records all
speak the same vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Circuit
from .requests import (
    ATPGRequest,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    Request,
    ShardRequest,
    SuiteRequest,
    UntestableRequest,
)
from .store import ArtifactStore, learn_digest

__all__ = ["TaskNode", "Plan", "plan_request"]


@dataclass
class TaskNode:
    """One unit of planned work."""

    task_id: str
    stage: str
    depends_on: Tuple[str, ...] = ()
    #: True when the planner found the result in the artifact store.
    cached: bool = False
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"task_id": self.task_id, "stage": self.stage,
                "depends_on": list(self.depends_on),
                "cached": self.cached, "detail": dict(self.detail)}


@dataclass
class Plan:
    """An executable DAG: topologically ordered task nodes."""

    kind: str
    nodes: List[TaskNode] = field(default_factory=list)
    #: Worker processes the execution layer will use (suites only).
    jobs: int = 1

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "jobs": self.jobs,
                "nodes": [node.to_dict() for node in self.nodes]}

    def summary(self) -> Dict[str, object]:
        """Small dict for progress events and logs."""
        return {"kind": self.kind, "nodes": len(self.nodes),
                "cached": sum(1 for n in self.nodes if n.cached),
                "jobs": self.jobs}


def _learn_nodes(request: Request, circuit: Optional[Circuit],
                 store: Optional[ArtifactStore],
                 depends_on: Tuple[str, ...]) -> List[TaskNode]:
    """resolve -> learn prefix shared by every learning consumer."""
    detail: Dict[str, object] = {}
    cached = False
    if circuit is not None:
        digest = learn_digest(circuit, request.config.learn)
        detail["learn_digest"] = digest
        cached = store is not None and store.has_learn(digest)
    return [TaskNode(task_id="learn", stage="learn",
                     depends_on=depends_on, cached=cached,
                     detail=detail)]


def plan_request(request: Request,
                 circuit: Optional[Circuit] = None,
                 store: Optional[ArtifactStore] = None) -> Plan:
    """Compile ``request`` into its task DAG.

    ``circuit`` is the already-resolved netlist for single-circuit
    requests (the planner never resolves: resolution is itself a
    pipeline stage, and for suites it happens per-worker).  When given,
    learn nodes carry their content digest and cache verdict.
    """
    plan = Plan(kind=request.KIND)
    resolve = TaskNode(task_id="resolve", stage="resolve",
                       detail={"spec": str(getattr(request, "spec", ""))})

    if isinstance(request, LearnRequest):
        plan.nodes = [resolve] + _learn_nodes(request, circuit, store,
                                              ("resolve",))
        if request.validate_sequences:
            plan.nodes.append(TaskNode(
                task_id="validate", stage="validate",
                depends_on=("learn",),
                detail={"sequences": request.validate_sequences}))
        if request.save:
            plan.nodes.append(TaskNode(
                task_id="save", stage="save", depends_on=("learn",),
                detail={"path": request.save}))
    elif isinstance(request, UntestableRequest):
        plan.nodes = [resolve] + _learn_nodes(request, circuit, store,
                                              ("resolve",))
        plan.nodes.append(TaskNode(task_id="untestable",
                                   stage="untestable",
                                   depends_on=("learn",)))
    elif isinstance(request, (ATPGRequest, FaultSimRequest)):
        modes = request.modes or (request.config.atpg.mode,)
        plan.nodes = [resolve]
        needs_learn = (getattr(request, "learned", None) is not None
                       or any(mode != "none" for mode in modes))
        after: Tuple[str, ...] = ("resolve",)
        if needs_learn:
            plan.nodes += _learn_nodes(request, circuit, store,
                                       ("resolve",))
            if getattr(request, "learned", None) is not None:
                plan.nodes[-1].detail["artifact"] = request.learned
            after = ("learn",)
        for mode in modes:
            node_id = f"atpg[{mode}]"
            plan.nodes.append(TaskNode(task_id=node_id, stage=node_id,
                                       depends_on=after))
            if isinstance(request, FaultSimRequest):
                plan.nodes.append(TaskNode(
                    task_id=f"fault_sim[{mode}]",
                    stage=f"fault_sim[{mode}]",
                    depends_on=(node_id,)))
    elif isinstance(request, CompareRequest):
        plan.nodes = [resolve] + _learn_nodes(request, circuit, store,
                                              ("resolve",))
        plan.nodes.append(TaskNode(
            task_id="compare", stage="compare", depends_on=("learn",),
            detail={"backtrack_limits": list(request.backtrack_limits)}))
    elif isinstance(request, ShardRequest):
        plan.nodes = [resolve]
        after = ("resolve",)
        if request.mode != "none":
            plan.nodes += _learn_nodes(request, circuit, store,
                                       ("resolve",))
            after = ("learn",)
        node_id = (f"shard[{request.mode}:"
                   f"{request.shard_index}/{request.n_shards}]")
        plan.nodes.append(TaskNode(
            task_id=node_id, stage=node_id, depends_on=after,
            detail={"mode": request.mode,
                    "shard_index": request.shard_index,
                    "n_shards": request.n_shards}))
    elif isinstance(request, SuiteRequest):
        jobs = request.config.jobs
        plan.jobs = jobs
        for index, spec in enumerate(request.specs):
            plan.nodes.append(TaskNode(
                task_id=f"pipeline[{index}]", stage="pipeline",
                detail={"spec": str(spec),
                        "modes": list(request.modes)}))
    else:  # stats / analyze / list: one leaf
        if hasattr(request, "spec"):
            plan.nodes = [resolve]
        plan.nodes.append(TaskNode(
            task_id=request.KIND, stage=request.KIND,
            depends_on=("resolve",) if hasattr(request, "spec") else ()))
    return plan
