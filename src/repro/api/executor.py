"""``execute(request) -> Response``: the one entrypoint of the system.

Every surface -- the CLI, the ``repro serve`` daemon, Python callers,
pool workers -- funnels through this function.  It validates the
request, compiles it into a :class:`~repro.api.planner.Plan`, runs the
plan on a :class:`~repro.flow.session.PipelineSession` (suites on the
:mod:`repro.flow.parallel_suite` pool), streams typed events, and
returns a versioned response envelope::

    {"schema_version": 1, "command": "<kind>", "ok": true, ...result}
    {"schema_version": 1, "command": "<kind>", "ok": false,
     "error": {"code", "stage", "message"}}

Failures never escape as raw exceptions (except ``BrokenPipeError``,
which is the caller's pipe, not ours): they are classified into the
:mod:`repro.api.errors` taxonomy and returned as error envelopes, so a
daemon thread and a one-shot CLI process render the identical document.

Passing an :class:`~repro.api.store.ArtifactStore` turns on
cross-request learning reuse: learn stages are keyed by
:func:`~repro.api.store.learn_digest` and satisfied from the store when
possible, which is how a warm daemon answers repeat traffic without
relearning -- with reports canonically byte-identical to cold runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from ..core.engine import LearnResult
from ..flow.config import ReproConfig
from ..flow.serialize import save_learn_result
from ..flow.session import (
    PipelineSession,
    StageTracker,
    canonicalize_volatile,
    run_suite,
)
from .errors import RequestError, classify_error
from .events import (
    EventSink,
    ProgressEvent,
    ResultEvent,
    emit,
    progress_hook_for,
)
from .planner import Plan, plan_request
from .requests import (
    SCHEMA_VERSION,
    ATPGRequest,
    AnalyzeRequest,
    CompareRequest,
    FaultSimRequest,
    LearnRequest,
    ListRequest,
    Request,
    ShardRequest,
    StatsRequest,
    SuiteRequest,
    UntestableRequest,
    request_from_dict,
)
from .store import ArtifactStore, learn_digest

__all__ = ["Response", "execute"]


@dataclass
class Response:
    """What :func:`execute` returns: a versioned, renderable envelope."""

    kind: str
    ok: bool = True
    result: Dict[str, object] = field(default_factory=dict)
    error: Optional[Dict[str, Optional[str]]] = None
    #: Process exit status for CLI adapters (0 ok, 1 failure/violations).
    exit_code: int = 0
    schema_version: int = SCHEMA_VERSION

    def envelope(self) -> Dict[str, object]:
        """The complete JSON document, result fields inlined."""
        out: Dict[str, object] = {"schema_version": self.schema_version,
                                  "command": self.kind, "ok": self.ok}
        if self.ok:
            out.update(self.result)
        else:
            out["error"] = self.error
        return out

    def to_json(self) -> str:
        """The envelope's one serialized form (CLI and daemon byte-
        identical by construction)."""
        return json.dumps(self.envelope(), indent=1) + "\n"


# ----------------------------------------------------------------------
# shared stage helpers
# ----------------------------------------------------------------------
def _session_for(request: Request, tracker: StageTracker,
                 config: Optional[ReproConfig] = None) -> PipelineSession:
    session = PipelineSession(request.spec,
                              config=config or request.config,
                              progress=tracker)
    session.emit_ticks = True
    session.cancel_check = tracker.cancel
    return session


def _learn_stage(session: PipelineSession,
                 store: Optional[ArtifactStore]
                 ) -> Tuple[LearnResult, str]:
    """Run (or adopt from the store) the learn stage; returns digest.

    With a store, the whole miss-compute-put sequence runs under the
    digest's single-flight lock: concurrent daemon requests needing the
    same learning block briefly behind the first one and then adopt its
    result, so each digest is ever learned once per store.
    """
    digest = learn_digest(session.circuit, session.config.learn)
    if store is None:
        return session.learn(), digest
    with store.flight(digest):
        cached = store.get_learn(digest, session.circuit)
        if cached is not None:
            return session.adopt_learned(cached), digest
        result = session.learn()
        try:
            store.put_learn(digest, result)
        except OSError:
            # The cache write is best-effort, symmetric with get_learn:
            # a full disk must not fail a request whose computation
            # already succeeded.
            pass
    return result, digest


def _emit_plan(sink: Optional[EventSink], plan: Plan) -> None:
    emit(sink, ProgressEvent(stage="plan", status="end",
                             payload=plan.summary()))


def _finish(request: Request, payload: Dict[str, object],
            exit_code: int = 0) -> Response:
    if getattr(request, "canonical", False):
        payload = canonicalize_volatile(payload)
    return Response(kind=request.KIND, result=payload,
                    exit_code=exit_code)


# ----------------------------------------------------------------------
# per-kind handlers
# ----------------------------------------------------------------------
def _run_learn(request: LearnRequest, tracker: StageTracker,
               store: Optional[ArtifactStore],
               sink: Optional[EventSink]) -> Response:
    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    result, digest = _learn_stage(session, store)
    if request.save:
        save_learn_result(result, request.save, digest=digest)
    violations: Optional[List[str]] = None
    if request.validate_sequences:
        violations = result.validate(
            n_sequences=request.validate_sequences)
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    payload["learn_digest"] = digest
    if request.save:
        payload["artifact"] = request.save
    if violations is not None:
        payload["validation"] = {
            "sequences": request.validate_sequences,
            "violations": violations,
        }
    if request.details:
        payload["details"] = {
            "ties": [{"node": circuit.nodes[tie.nid].name,
                      "value": tie.value,
                      "kind": "seq" if tie.sequential else "comb",
                      "phase": tie.phase}
                     for tie in result.ties.all()],
            "relations": list(result.relations.dump()),
        }
    return _finish(request, payload,
                   exit_code=1 if violations else 0)


def _run_untestable(request: UntestableRequest, tracker: StageTracker,
                    store: Optional[ArtifactStore],
                    sink: Optional[EventSink]) -> Response:
    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    _learn_stage(session, store)
    session.untestable_screen()
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    return _finish(request, payload)


def _run_atpg(request: ATPGRequest, tracker: StageTracker,
              store: Optional[ArtifactStore],
              sink: Optional[EventSink]) -> Response:
    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    # An explicit artifact is always loaded (a stale one fails loudly
    # even for the 'none' baseline); otherwise learning runs -- via the
    # store when available -- only when a learning mode needs it.
    if request.learned is not None:
        session.load_learned(request.learned)
    elif any(mode != "none" for mode in request.modes):
        _learn_stage(session, store)
    session.compare(list(request.modes))
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    if request.learned is not None:
        payload["artifact"] = request.learned
    return _finish(request, payload)


def _run_faultsim(request: FaultSimRequest, tracker: StageTracker,
                  store: Optional[ArtifactStore],
                  sink: Optional[EventSink]) -> Response:
    # Grading replays the generated vectors, so they must be kept --
    # forced here so every surface (daemon, Python, CLI) gets a working
    # faultsim by default.  The report shows the effective config.
    config = replace(request.config,
                     atpg=replace(request.config.atpg,
                                  keep_sequences=True))
    session = _session_for(request, tracker, config=config)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    modes = request.modes or (request.config.atpg.mode,)
    if any(mode != "none" for mode in modes):
        _learn_stage(session, store)
    for mode in modes:
        session.fault_sim(mode)
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    return _finish(request, payload)


def _run_compare(request: CompareRequest, tracker: StageTracker,
                 store: Optional[ArtifactStore],
                 sink: Optional[EventSink]) -> Response:
    from ..atpg.driver import compare_modes

    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    learned, _ = _learn_stage(session, store)

    def stage() -> list:
        return compare_modes(circuit, learned,
                             config=session.config.atpg,
                             backtrack_limits=request.backtrack_limits,
                             cancel=session.cancel_check)

    rows = session.run_stage("compare", stage,
                             lambda rows: {"rows": len(rows)})
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    payload["compare"] = {
        "backtrack_limits": list(request.backtrack_limits),
        "rows": [dict(stats.row()) for stats in rows],
    }
    return _finish(request, payload)


def _run_suite(request: SuiteRequest, tracker: StageTracker,
               store: Optional[ArtifactStore],
               sink: Optional[EventSink]) -> Response:
    _emit_plan(sink, plan_request(request, None, store))
    report = run_suite(list(request.specs), config=request.config,
                       modes=list(request.modes), progress=tracker)
    if request.out:
        report.save(request.out, canonical=request.canonical)
    payload = (report.canonical_dict() if request.canonical
               else report.to_dict())
    # canonical_dict already zeroed timings; skip the generic pass.
    return Response(kind=request.KIND, result=payload,
                    exit_code=1 if report.errors else 0)


def _run_shard(request: ShardRequest, tracker: StageTracker,
               store: Optional[ArtifactStore],
               sink: Optional[EventSink]) -> Response:
    from ..atpg.driver import prepare_fault_list
    from ..dist.shards import make_fault_shards, run_fault_shard

    config = replace(request.config,
                     atpg=replace(request.config.atpg,
                                  mode=request.mode))
    session = _session_for(request, tracker, config=config)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    learned: Optional[LearnResult] = None
    if request.mode != "none":
        # learned_digest pins which artifact the coordinator scheduled;
        # drift between its config and ours must fail loudly, not merge
        # outcomes computed from different knowledge.
        expected = learn_digest(circuit, config.learn)
        if request.learned_digest != expected:
            raise RequestError(
                f"learned_digest {request.learned_digest!r} does not "
                f"match this circuit+config ({expected!r})")
        learned, _ = _learn_stage(session, store)
    faults, _ = prepare_fault_list(circuit,
                                   max_faults=config.atpg.max_faults,
                                   fill_seed=config.atpg.fill_seed)
    shard = make_fault_shards(len(faults),
                              request.n_shards)[request.shard_index]

    def stage() -> Dict[int, object]:
        return run_fault_shard(circuit, shard, learned=learned,
                               config=config.atpg)

    outcomes = session.run_stage(
        f"shard[{request.mode}:{request.shard_index}/{request.n_shards}]",
        stage, lambda out: {"faults": len(out)})
    payload = session.report()
    payload["config_digest"] = request.config_digest(circuit)
    payload["shard"] = {
        "mode": request.mode,
        "shard_index": request.shard_index,
        "n_shards": request.n_shards,
        "n_faults": len(faults),
        "outcomes": {str(index): outcome.to_dict()
                     for index, outcome in sorted(outcomes.items())},
    }
    return _finish(request, payload)


def _run_stats(request: StatsRequest, tracker: StageTracker,
               store: Optional[ArtifactStore],
               sink: Optional[EventSink]) -> Response:
    from ..sim.array_backend import pattern_cache_stats

    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    payload: Dict[str, object] = {"circuit": circuit.name,
                                  "fingerprint": circuit.fingerprint()}
    payload.update(circuit.stats())
    payload["pattern_cache"] = pattern_cache_stats()
    if store is not None:
        payload["artifact_store"] = store.stats()
    return _finish(request, payload)


def _run_analyze(request: AnalyzeRequest, tracker: StageTracker,
                 store: Optional[ArtifactStore],
                 sink: Optional[EventSink]) -> Response:
    from ..analysis import analyze_state_space

    session = _session_for(request, tracker)
    circuit = session.circuit
    _emit_plan(sink, plan_request(request, circuit, store))
    space = session.run_stage(
        "analyze",
        lambda: analyze_state_space(circuit, max_ffs=request.max_ffs),
        lambda s: {"valid_states": len(s.valid_states)})
    payload = {
        "circuit": circuit.name,
        "ffs": circuit.num_ffs,
        "valid_states": len(space.valid_states),
        "density_of_encoding": space.density_of_encoding,
    }
    return _finish(request, payload)


def _run_list(request: ListRequest, tracker: StageTracker,
              store: Optional[ArtifactStore],
              sink: Optional[EventSink]) -> Response:
    from ..circuit import builtin_names

    _emit_plan(sink, plan_request(request, None, store))
    return Response(kind=request.KIND,
                    result={"circuits": builtin_names()})


_HANDLERS = {
    LearnRequest.KIND: _run_learn,
    UntestableRequest.KIND: _run_untestable,
    ATPGRequest.KIND: _run_atpg,
    FaultSimRequest.KIND: _run_faultsim,
    CompareRequest.KIND: _run_compare,
    SuiteRequest.KIND: _run_suite,
    ShardRequest.KIND: _run_shard,
    StatsRequest.KIND: _run_stats,
    AnalyzeRequest.KIND: _run_analyze,
    ListRequest.KIND: _run_list,
}


def execute(request: Union[Request, Dict[str, object]], *,
            events: Optional[EventSink] = None,
            store: Optional[ArtifactStore] = None,
            cancel=None) -> Response:
    """Run any request to completion; never raises for request faults.

    ``request`` is a typed request object or its plain-dict form (the
    daemon's parsed JSON body).  ``events`` receives the typed event
    stream (:mod:`repro.api.events`); ``store`` enables content-
    addressed learn-artifact reuse.  ``cancel`` is a raising checkpoint
    callable (the serve tier passes a
    :meth:`~repro.serve.cancel.CancelToken.check`): it is polled at
    stage boundaries and inside long ATPG fault loops, and whatever it
    raises is classified like any other failure -- a
    :class:`~repro.api.errors.CancelledFailure` or
    :class:`~repro.api.errors.DeadlineExceeded` comes back as its own
    error envelope.  The returned :class:`Response` envelope is
    deterministic for a given request: two processes (or a daemon
    thread and a one-shot run) produce the same document,
    byte-identical under ``canonical=True``.
    """
    kind: Optional[str] = None
    if isinstance(request, dict):
        raw_kind = request.get("kind")
        kind = raw_kind if isinstance(raw_kind, str) else None
    tracker = StageTracker(progress_hook_for(events), cancel=cancel)
    try:
        try:
            if isinstance(request, dict):
                request = request_from_dict(request)
            elif isinstance(request, Request):
                request.validate()
            else:
                raise RequestError(
                    f"execute() takes a Request or dict, "
                    f"got {type(request).__name__}")
        except Exception as exc:
            stage = "parse" if isinstance(exc, RequestError) else "config"
            raise classify_error(exc, stage=stage) from exc
        kind = request.KIND
        response = _HANDLERS[request.KIND](request, tracker, store,
                                           events)
    except BrokenPipeError:  # the caller's pipe broke; not our failure
        raise
    except Exception as exc:
        error = classify_error(exc, stage=tracker.stage)
        response = Response(kind=kind or "unknown", ok=False,
                            error=error.envelope(), exit_code=1)
    emit(events, ResultEvent(envelope=response.envelope()))
    return response
