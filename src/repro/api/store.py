"""Content-addressed artifact store: learn once per digest, ever.

The flow layer's artifacts (:mod:`repro.flow.serialize`) are keyed to a
circuit *fingerprint* only -- enough to reject a stale file, not enough
to know that an artifact on disk answers the exact learning request in
hand (a 5-frame learning run and a 50-frame one share a fingerprint).
This store closes that gap: learn results are addressed by
:func:`learn_digest` -- circuit fingerprint **plus** canonical learning
config -- so any process (one-shot CLI, pool worker, the ``repro
serve`` daemon) that computes the same digest can reuse the artifact
with zero risk of configuration drift.

Layout is a classic content-addressed tree under ``root``::

    <root>/learn/<digest[:2]>/<digest>.json

plus an in-memory layer of live :class:`~repro.core.engine.LearnResult`
objects for warm processes (the daemon's whole point).  All methods are
thread-safe; disk writes are atomic (temp file + rename).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional

from ..circuit.netlist import Circuit
from ..core.engine import LearnConfig, LearnResult
from ..flow.config import canonical_json
from ..flow.serialize import (
    ArtifactError,
    learn_result_from_dict,
    learn_result_to_dict,
    load_learn_result,
    save_learn_result,
    write_json_atomic,
)

__all__ = ["ArtifactStore", "learn_digest"]


def learn_digest(circuit: Circuit, config: LearnConfig) -> str:
    """Content address of one learning computation.

    Hashes the circuit fingerprint together with the canonical JSON of
    the learning config (defaults materialized, sorted keys).  The
    simulation backend is deliberately excluded: learned knowledge is
    bit-identical for every backend, so backends share cache entries.
    """
    return hashlib.sha256(
        f"repro/learn-artifact:{circuit.fingerprint()}:"
        f"{canonical_json(config.to_dict())}".encode()).hexdigest()


class ArtifactStore:
    """Digest-addressed learn-result cache (memory + optional disk).

    ``root=None`` keeps a purely in-memory store (one warm process);
    with a root directory, results also persist across processes.  The
    in-memory layer is keyed by digest, and a digest *embeds* the
    circuit fingerprint, so a hit can never hand back knowledge for a
    different netlist or config.
    """

    #: LRU bound on live in-memory results.  A LearnResult holds a full
    #: circuit plus relation/tie databases -- far heavier than the
    #: compiled-kernel cache entries (capped at 256 next door in
    #: :mod:`repro.sim.compiled`) -- so the long-running daemon must
    #: not accumulate them without bound.  Evicted entries remain on
    #: disk when a root is configured.
    MEMORY_CAP = 64
    #: Bound on the single-flight lock map; idle locks past this are
    #: pruned (a lock is tiny, but "tiny, forever, per digest" is still
    #: a leak).
    FLIGHT_LOCK_CAP = 1024

    def __init__(self, root: Optional[str] = None,
                 keep_in_memory: bool = True):
        self.root = os.fspath(root) if root is not None else None
        self.keep_in_memory = keep_in_memory
        self._memory: "OrderedDict[str, LearnResult]" = OrderedDict()
        #: Raw artifact bytes accepted by :meth:`put_learn_payload` on
        #: a store with no disk root (the coordinator's default), so a
        #: memory-only coordinator can still relay artifacts between
        #: workers.  Same LRU bound as the object tier.
        self._payload_memory: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self._flight_locks: Dict[str, threading.Lock] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0
        self.flight_waits = 0
        self.payload_hits = 0
        self.payload_misses = 0

    def flight_lock(self, digest: str) -> threading.Lock:
        """Single-flight lock for one digest's compute.

        Concurrent requests needing the same learn result hold this
        around their miss-compute-put sequence, so the daemon learns
        each digest exactly once: the first thread computes, the rest
        block briefly and then hit.  (Cheap: one small Lock per distinct
        digest this process has seen.)
        """
        with self._lock:
            if (digest not in self._flight_locks
                    and len(self._flight_locks) >= self.FLIGHT_LOCK_CAP):
                for key in [k for k, lock in self._flight_locks.items()
                            if not lock.locked()]:
                    del self._flight_locks[key]
            return self._flight_locks.setdefault(digest,
                                                 threading.Lock())

    @contextlib.contextmanager
    def flight(self, digest: str) -> Iterator[None]:
        """Hold the single-flight lock, counting contended waits.

        Same contract as ``with store.flight_lock(digest):`` plus
        accounting: a thread that finds the lock already held bumps
        ``flight_waits`` (surfaced by :meth:`stats`), which is how the
        single-flight property is observable -- N concurrent requests
        for one cold digest show 1 compute and N-1 waits.
        """
        lock = self.flight_lock(digest)
        if not lock.acquire(blocking=False):
            with self._lock:
                self.flight_waits += 1
            lock.acquire()
        try:
            yield
        finally:
            lock.release()

    # ------------------------------------------------------------------
    def learn_path(self, digest: str) -> Optional[str]:
        """On-disk location for a digest (None for memory-only)."""
        if self.root is None:
            return None
        return os.path.join(self.root, "learn", digest[:2],
                            f"{digest}.json")

    def has_learn(self, digest: str) -> bool:
        """Cheap existence probe (no deserialization)."""
        with self._lock:
            if digest in self._memory or digest in self._payload_memory:
                return True
        path = self.learn_path(digest)
        return path is not None and os.path.exists(path)

    def get_learn(self, digest: str,
                  circuit: Circuit) -> Optional[LearnResult]:
        """Fetch a learn result by digest, or None on a miss.

        A corrupt or stale on-disk entry counts as a miss (the caller
        relearns and overwrites it) -- a damaged cache file must never
        fail a request that could simply recompute.
        """
        with self._lock:
            hit = self._memory.get(digest)
            if hit is not None:
                self._memory.move_to_end(digest)
                self.memory_hits += 1
                return hit
        path = self.learn_path(digest)
        if path is not None and os.path.exists(path):
            try:
                result = load_learn_result(path, circuit,
                                           expect_digest=digest)
            except (ArtifactError, OSError):
                pass
            else:
                with self._lock:
                    self.disk_hits += 1
                    if self.keep_in_memory:
                        self._memory[digest] = result
                        self._memory.move_to_end(digest)
                        while len(self._memory) > self.MEMORY_CAP:
                            self._memory.popitem(last=False)
                return result
        with self._lock:
            raw = self._payload_memory.get(digest)
        if raw is not None:
            try:
                result = learn_result_from_dict(
                    json.loads(raw.decode()), circuit,
                    expect_digest=digest)
            except (UnicodeDecodeError, ValueError, ArtifactError):
                pass  # corrupt relayed bytes count as a miss
            else:
                with self._lock:
                    self.memory_hits += 1
                    if self.keep_in_memory:
                        self._memory[digest] = result
                        self._memory.move_to_end(digest)
                        while len(self._memory) > self.MEMORY_CAP:
                            self._memory.popitem(last=False)
                return result
        with self._lock:
            self.misses += 1
        return None

    def put_learn(self, digest: str, result: LearnResult) -> None:
        """Store a learn result under its digest (atomic on disk)."""
        with self._lock:
            self.puts += 1
            if self.keep_in_memory:
                self._memory[digest] = result
                self._memory.move_to_end(digest)
                while len(self._memory) > self.MEMORY_CAP:
                    self._memory.popitem(last=False)
        path = self.learn_path(digest)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            save_learn_result(result, path, digest=digest)

    # ------------------------------------------------------------------
    # Payload tier: raw artifact bytes, for serving over the network.
    # The coordinator's GET/PUT /v1/artifacts/<digest> endpoints move
    # artifacts as opaque canonical JSON; validation against a circuit
    # happens only where a live LearnResult is materialized (get_learn /
    # learn_result_from_dict), so the serving path never needs the
    # netlist.
    # ------------------------------------------------------------------
    def get_learn_payload(self, digest: str) -> Optional[bytes]:
        """Raw serialized artifact for a digest, or None on a miss.

        Prefers the on-disk file (already the canonical wire form);
        a memory-only hit is serialized on the fly.
        """
        path = self.learn_path(digest)
        if path is not None and os.path.exists(path):
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                pass
            else:
                with self._lock:
                    self.payload_hits += 1
                return raw
        with self._lock:
            raw = self._payload_memory.get(digest)
            if raw is not None:
                self._payload_memory.move_to_end(digest)
                self.payload_hits += 1
                return raw
            hit = self._memory.get(digest)
        if hit is not None:
            # Match write_json_atomic's framing so payload bytes do not
            # depend on which tier answered.
            with self._lock:
                self.payload_hits += 1
            return (json.dumps(learn_result_to_dict(hit, digest=digest),
                               indent=1) + "\n").encode()
        with self._lock:
            self.payload_misses += 1
        return None

    def put_learn_payload(self, digest: str, payload: bytes) -> bool:
        """Store raw artifact bytes under a digest; False if rejected.

        The payload must at least parse as a JSON object claiming this
        digest (cheap tamper check; full circuit validation happens at
        :meth:`get_learn` time).  With a disk root the bytes land in
        the content tree; without one they go to a bounded in-memory
        byte cache, so a memory-only coordinator can still relay
        artifacts between workers.
        """
        try:
            data = json.loads(payload.decode())
        except (UnicodeDecodeError, ValueError):
            return False
        if not isinstance(data, dict) or data.get("digest") != digest:
            return False
        path = self.learn_path(digest)
        if path is not None:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            write_json_atomic(path, data)
        else:
            with self._lock:
                self._payload_memory[digest] = bytes(payload)
                self._payload_memory.move_to_end(digest)
                while len(self._payload_memory) > self.MEMORY_CAP:
                    self._payload_memory.popitem(last=False)
        with self._lock:
            self.puts += 1
        return True

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (for health endpoints and tests)."""
        with self._lock:
            return {
                "memory_entries": len(self._memory),
                "payload_entries": len(self._payload_memory),
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "puts": self.puts,
                "flight_waits": self.flight_waits,
                "payload_hits": self.payload_hits,
                "payload_misses": self.payload_misses,
            }
