"""Structured exception taxonomy for the versioned API boundary.

Every failure that crosses the :func:`repro.api.execute` boundary is a
:class:`ReproError` carrying a stable machine-readable ``code`` (what
kind of failure) and a ``stage`` (where in the pipeline it happened).
The JSON error envelope is ``{"code", "stage", "message"}`` -- clients
branch on the code, humans read the message, and the CLI's legacy
``repro: error: <message>`` rendering falls out of the same object.

The underlying engines keep raising their own exception types
(:class:`~repro.flow.config.ConfigError`,
:class:`~repro.flow.session.CircuitResolveError`,
:class:`~repro.flow.serialize.ArtifactError`, ...); the executor maps
them through :func:`classify_error` at the boundary so internal code
never needs to know about envelopes, and pre-API callers keep catching
the exceptions they always caught.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "ReproError", "RequestError", "ConfigurationError", "ResolveError",
    "ArtifactFailure", "IOFailure", "EngineError", "PayloadTooLarge",
    "OverloadFailure", "DeadlineExceeded", "CancelledFailure",
    "classify_error", "HTTP_STATUS_BY_CODE",
]


class ReproError(Exception):
    """Base of every structured API failure.

    ``code`` is the stable machine-readable failure class (one per
    subclass); ``stage`` names the pipeline stage that was running
    (``"config"``, ``"resolve"``, ``"learn"``, ``"atpg[known]"``, ...);
    ``http_status`` is what :mod:`repro.api.server` answers with.
    """

    code = "error"
    http_status = 500

    def __init__(self, message: str, stage: Optional[str] = None):
        super().__init__(message)
        self.stage = stage

    @property
    def message(self) -> str:
        return str(self)

    def envelope(self) -> Dict[str, Optional[str]]:
        """The JSON error object embedded in failure responses."""
        return {"code": self.code, "stage": self.stage,
                "message": self.message}


class RequestError(ReproError):
    """The request itself cannot be parsed: bad JSON shape, unknown
    kind, unknown fields, or an incompatible ``schema_version``."""

    code = "parse"
    http_status = 400


class ConfigurationError(ReproError):
    """The request parsed but its configuration is invalid."""

    code = "config"
    http_status = 400


class ResolveError(ReproError):
    """The circuit spec cannot be turned into a circuit."""

    code = "resolve"
    http_status = 404


class ArtifactFailure(ReproError):
    """A serialized artifact is malformed, stale, or missing."""

    code = "artifact"
    http_status = 409


class IOFailure(ReproError):
    """The filesystem failed us: unreadable input, unwritable output."""

    code = "io"
    http_status = 500


class EngineError(ReproError):
    """An unexpected failure inside a pipeline engine."""

    code = "engine"
    http_status = 500


class PayloadTooLarge(ReproError):
    """A request body exceeding the daemon's byte cap."""

    code = "too_large"
    http_status = 413


class OverloadFailure(ReproError):
    """The daemon's admission queue is full: explicit backpressure.

    ``retry_after_s`` is the server's load-derived hint, surfaced as
    the HTTP ``Retry-After`` header next to the 429 envelope.
    """

    code = "overload"
    http_status = 429

    def __init__(self, message: str, stage: Optional[str] = None,
                 retry_after_s: int = 1):
        super().__init__(message, stage=stage)
        self.retry_after_s = retry_after_s

    def envelope(self) -> Dict[str, Optional[str]]:
        out = super().envelope()
        out["retry_after_s"] = self.retry_after_s
        return out


class DeadlineExceeded(ReproError):
    """The request's deadline (its own, or the server cap) expired
    before the work finished; the computation was abandoned."""

    code = "deadline"
    http_status = 504


class CancelledFailure(ReproError):
    """The request was cancelled -- explicitly (``POST /v1/cancel``) or
    because the client stalled or disconnected mid-flight.  499 is the
    de-facto 'client closed request' status."""

    code = "cancelled"
    http_status = 499


#: code -> HTTP status, derived from the taxonomy (single source).
HTTP_STATUS_BY_CODE = {
    cls.code: cls.http_status
    for cls in (ReproError, RequestError, ConfigurationError,
                ResolveError, ArtifactFailure, IOFailure, EngineError,
                PayloadTooLarge, OverloadFailure, DeadlineExceeded,
                CancelledFailure)
}


def classify_error(exc: BaseException,
                   stage: Optional[str] = None) -> ReproError:
    """Map any exception onto the taxonomy, preserving its message.

    Already-classified errors pass through (keeping their own stage if
    set).  The import is local to avoid a cycle: :mod:`repro.flow`
    never imports :mod:`repro.api`.
    """
    from ..flow import ArtifactError, CircuitResolveError, ConfigError

    if isinstance(exc, ReproError):
        if exc.stage is None:
            exc.stage = stage
        return exc
    if isinstance(exc, CircuitResolveError):
        cls = ResolveError
    elif isinstance(exc, ConfigError):
        cls = ConfigurationError
    elif isinstance(exc, ArtifactError):
        cls = ArtifactFailure
    elif isinstance(exc, OSError):
        cls = IOFailure
    else:
        cls = EngineError
    error = cls(str(exc), stage=stage)
    error.__cause__ = exc
    return error
