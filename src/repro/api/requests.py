"""Typed, versioned request objects -- the API's wire vocabulary.

Every operation the system performs is named by exactly one request
class; CLI argv, Python callers and the HTTP daemon all reduce to the
same objects, and :func:`repro.api.execute` is the only interpreter.
Requests round-trip through canonical JSON (:meth:`Request.to_dict` /
:func:`request_from_dict`), carry an explicit ``schema_version``, and
hash to a stable :meth:`Request.config_digest` (circuit fingerprint +
configuration) so results and artifacts can be cached across runs,
processes and machines.

Request kinds
-------------
``learn``       sequential learning (optionally validate / persist)
``untestable``  tie-gate vs FIRES untestability screen
``atpg``        ATPG over one or more implication modes
``faultsim``    grade generated tests against the full fault list
``suite``       the whole pipeline over many circuits (sharded pool)
``shard``       speculative ATPG over one fault-list shard (dist tier)
``compare``     the paper's Table-5 protocol over backtrack limits
``stats``       structural statistics
``analyze``     density-of-encoding state-space analysis
``list``        built-in circuit names

Unknown kinds, unknown fields and incompatible schema versions raise
:class:`~repro.api.errors.RequestError`; invalid configuration values
surface as :class:`~repro.flow.config.ConfigError` exactly as they do
everywhere else.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, Optional, Tuple, Type

from ..circuit.netlist import Circuit
from ..flow.config import (
    ATPG_MODES,
    ConfigError,
    ReproConfig,
    canonical_json,
)
from .errors import RequestError

__all__ = [
    "SCHEMA_VERSION", "PRIORITY_CLASSES", "Request", "LearnRequest",
    "UntestableRequest", "ATPGRequest", "FaultSimRequest",
    "SuiteRequest", "ShardRequest", "CompareRequest", "StatsRequest",
    "AnalyzeRequest", "ListRequest", "REQUEST_KINDS",
    "request_from_dict",
]

#: Version of the request *and* response envelope schema.  Bumped on
#: any incompatible change; responses echo it so clients can gate.
#: Version 2 added the ``shard`` kind (distributed fault-list tier).
#: Version 3 added the ``array`` value to ``config.atpg.sim_backend``
#: (older servers would reject it, so clients must be able to gate).
#: Version 4 added the width knobs (``config.atpg.sim_width``,
#: ``config.learn.signature_width``,
#: ``config.learn.single_node_batch_width``); configs carrying them are
#: rejected by older servers, and every config digest changed because
#: the canonical form materializes the new defaults.
#: Version 5 added the serve-tier fields (``priority``, ``deadline_s``,
#: ``request_id``) to every kind; they steer admission control and
#: cancellation in :mod:`repro.serve` and are excluded from config
#: digests, so cache keys and canonical results are unchanged.
SCHEMA_VERSION = 5

#: Admission classes the serve tier schedules between; earlier names
#: win ties (``interactive`` outranks ``batch``).
PRIORITY_CLASSES = ("interactive", "batch")


@dataclass
class Request:
    """Base of every API request.

    Subclasses declare their fields as ordinary dataclass fields;
    serialization, strict parsing and digests are shared here.  Fields
    named in ``_TUPLE_FIELDS`` are normalized to tuples so requests are
    hashable-by-value and JSON lists round-trip cleanly.
    """

    KIND: ClassVar[str] = ""
    _TUPLE_FIELDS: ClassVar[Tuple[str, ...]] = ()

    def __post_init__(self) -> None:
        for name in self._TUPLE_FIELDS:
            value = getattr(self, name)
            if isinstance(value, str):
                # tuple("s27") would silently explode into characters;
                # a bare string here is always a caller typo for a
                # one-element list.
                raise RequestError(
                    f"{type(self).__name__}.{name} must be a list, "
                    f"got the string {value!r}")
            setattr(self, name, tuple(value))

    # ------------------------------------------------------------------
    def validate(self) -> "Request":
        """Validate field values; returns self (chainable)."""
        config = getattr(self, "config", None)
        if config is not None:
            config.validate()
        priority = getattr(self, "priority", "interactive")
        if priority not in PRIORITY_CLASSES:
            raise RequestError(
                f"priority must be one of {PRIORITY_CLASSES}, "
                f"got {priority!r}")
        deadline = getattr(self, "deadline_s", None)
        if deadline is not None:
            if (isinstance(deadline, bool)
                    or not isinstance(deadline, (int, float))
                    or deadline <= 0):
                raise RequestError(
                    f"deadline_s must be a positive number or null, "
                    f"got {deadline!r}")
        request_id = getattr(self, "request_id", None)
        if request_id is not None:
            if (not isinstance(request_id, str) or not request_id
                    or len(request_id) > 128):
                raise RequestError(
                    "request_id must be a non-empty string of at "
                    f"most 128 characters, got {request_id!r}")
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form: ``kind`` + ``schema_version`` + fields."""
        out: Dict[str, object] = {"kind": self.KIND,
                                  "schema_version": SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, ReproConfig):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    def to_canonical_json(self) -> str:
        """Canonical JSON: sorted keys, defaults materialized."""
        return canonical_json(self.to_dict())

    #: Request fields that never change computed results: the circuit
    #: spec (subsumed by the fingerprint), output destinations,
    #: presentation toggles, and the serve-tier scheduling fields
    #: (which steer *when* work runs, never *what* it computes).
    #: Everything else -- modes, limits, artifact inputs, the config
    #: -- is part of the digest.
    _NON_RESULT_FIELDS: ClassVar[Tuple[str, ...]] = (
        "spec", "specs", "save", "out", "canonical", "details",
        "priority", "deadline_s", "request_id")

    def config_digest(self, circuit: Circuit) -> str:
        """Stable SHA-256 of (request kind, circuit, every
        result-affecting request field).

        Two requests with the same digest are guaranteed to compute the
        same results: the hash covers the full configuration
        (execution knobs like ``jobs`` normalized out by
        :meth:`~repro.flow.config.ReproConfig.config_digest`) plus
        request fields such as ``modes`` or ``backtrack_limits``; only
        output paths and presentation toggles are excluded.  This is
        what makes responses and artifacts cacheable across runs.

        Caveat: an input artifact (``ATPGRequest.learned``) is hashed
        by *path*, not content -- rewriting the file between runs
        changes results under an unchanged digest, so requests naming
        an artifact should not be response-cached by digest (the
        artifact's own stamped digest is the content address).
        """
        payload: Dict[str, object] = {}
        for f in fields(self):
            if f.name in self._NON_RESULT_FIELDS or f.name == "config":
                continue
            value = getattr(self, f.name)
            payload[f.name] = (list(value) if isinstance(value, tuple)
                               else value)
        config = getattr(self, "config", None)
        payload["config"] = (config.config_digest()
                             if config is not None else None)
        return hashlib.sha256(
            f"repro/request:{self.KIND}:{circuit.fingerprint()}:"
            f"{canonical_json(payload)}".encode()).hexdigest()

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Request":
        """Strict inverse of :meth:`to_dict` for this concrete kind."""
        if not isinstance(data, dict):
            raise RequestError(
                f"request must be a JSON object, got {type(data).__name__}")
        data = dict(data)
        kind = data.pop("kind", cls.KIND)
        if kind != cls.KIND:
            raise RequestError(
                f"expected kind {cls.KIND!r}, got {kind!r}")
        version = data.pop("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise RequestError(
                f"unsupported schema_version {version!r} "
                f"(this build speaks version {SCHEMA_VERSION})")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise RequestError(
                f"unknown {cls.__name__} fields: {sorted(unknown)}")
        if "config" in data and not isinstance(data["config"],
                                               ReproConfig):
            if not isinstance(data["config"], dict):
                raise RequestError(
                    f"{cls.__name__}.config must be an object")
            data["config"] = ReproConfig.from_dict(data["config"])
        try:
            request = cls(**data)
        except TypeError as exc:
            raise RequestError(
                f"malformed {cls.__name__}: {exc}") from exc
        request.validate()
        return request


@dataclass
class LearnRequest(Request):
    """Run sequential learning on one circuit."""

    KIND: ClassVar[str] = "learn"

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    #: Monte-Carlo soundness check with N random sequences (0 = skip).
    validate_sequences: int = 0
    #: Persist the learning artifact (digest-stamped) to this path.
    save: Optional[str] = None
    #: Include the full tie/relation listings in the result payload.
    details: bool = False
    #: Zero volatile wall-clock fields for byte-identical responses.
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "LearnRequest":
        super().validate()
        if self.validate_sequences < 0:
            raise ConfigError("validate_sequences must be >= 0")
        return self


@dataclass
class UntestableRequest(Request):
    """Tie-gate vs FIRES untestability comparison (Table 4)."""

    KIND: ClassVar[str] = "untestable"

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None


@dataclass
class ATPGRequest(Request):
    """Test generation over one or more implication modes."""

    KIND: ClassVar[str] = "atpg"
    _TUPLE_FIELDS: ClassVar[Tuple[str, ...]] = ("modes",)

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    modes: Tuple[str, ...] = ATPG_MODES
    #: Load this learning artifact instead of relearning (always
    #: validated against the circuit, even for the 'none' baseline).
    learned: Optional[str] = None
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "ATPGRequest":
        super().validate()
        _check_modes(self.modes)
        return self


@dataclass
class FaultSimRequest(Request):
    """Grade generated test sets against the collapsed fault list."""

    KIND: ClassVar[str] = "faultsim"
    _TUPLE_FIELDS: ClassVar[Tuple[str, ...]] = ("modes",)

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    #: Modes whose test sets to grade; empty means the config's mode.
    modes: Tuple[str, ...] = ()
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "FaultSimRequest":
        super().validate()
        if self.modes:
            _check_modes(self.modes)
        return self


@dataclass
class SuiteRequest(Request):
    """The whole pipeline over many circuit specs (sharded pool)."""

    KIND: ClassVar[str] = "suite"
    _TUPLE_FIELDS: ClassVar[Tuple[str, ...]] = ("specs", "modes")

    specs: Tuple[str, ...] = ()
    config: ReproConfig = field(default_factory=ReproConfig)
    modes: Tuple[str, ...] = ATPG_MODES
    #: Also write the suite report JSON to this path (atomic).
    out: Optional[str] = None
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "SuiteRequest":
        super().validate()
        if not self.specs:
            raise RequestError("SuiteRequest.specs must be non-empty")
        _check_modes(self.modes)
        return self


@dataclass
class ShardRequest(Request):
    """Speculative ATPG over one fault-list shard of one circuit.

    The distributed tier's unit of ATPG work: the worker rebuilds the
    canonical prepared fault list from (spec, config), runs PODEM for
    the shard's slice (indices ``i`` with ``i % n_shards ==
    shard_index``) and returns raw per-fault outcomes for the
    coordinator's deterministic replay merge
    (:mod:`repro.dist.shards`).  ``mode`` overrides ``config.atpg.mode``
    so one config object can fan out into per-mode shard units.
    """

    KIND: ClassVar[str] = "shard"

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    #: Implication mode for this shard (one of ATPG_MODES).
    mode: str = "forbidden"
    shard_index: int = 0
    n_shards: int = 1
    #: Learning artifact digest the worker must use for non-'none'
    #: modes (fetched from its store, normally via the coordinator's
    #: artifact tier).  None is only legal for mode='none'.
    learned_digest: Optional[str] = None
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "ShardRequest":
        super().validate()
        _check_modes((self.mode,))
        if self.n_shards < 1:
            raise ConfigError(
                f"n_shards must be >= 1, got {self.n_shards}")
        if not 0 <= self.shard_index < self.n_shards:
            raise ConfigError(
                f"shard_index must be in [0, {self.n_shards}), "
                f"got {self.shard_index}")
        if self.mode != "none" and self.learned_digest is None:
            raise ConfigError(
                f"mode {self.mode!r} requires learned_digest")
        return self


@dataclass
class CompareRequest(Request):
    """The paper's Table-5 protocol: every mode at every limit."""

    KIND: ClassVar[str] = "compare"
    _TUPLE_FIELDS: ClassVar[Tuple[str, ...]] = ("backtrack_limits",)

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    backtrack_limits: Tuple[int, ...] = (30, 1000)
    canonical: bool = False
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "CompareRequest":
        super().validate()
        if not self.backtrack_limits:
            raise ConfigError("backtrack_limits must be non-empty")
        for limit in self.backtrack_limits:
            if not isinstance(limit, int) or limit < 1:
                raise ConfigError(
                    f"backtrack limits must be ints >= 1, "
                    f"got {limit!r}")
        return self


@dataclass
class StatsRequest(Request):
    """Structural statistics of one circuit."""

    KIND: ClassVar[str] = "stats"

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None


@dataclass
class AnalyzeRequest(Request):
    """Exact state-space analysis: density of encoding."""

    KIND: ClassVar[str] = "analyze"

    spec: str = ""
    config: ReproConfig = field(default_factory=ReproConfig)
    max_ffs: int = 16
    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None

    def validate(self) -> "AnalyzeRequest":
        super().validate()
        if self.max_ffs < 1:
            raise ConfigError("max_ffs must be >= 1")
        return self


@dataclass
class ListRequest(Request):
    """List built-in circuit names."""

    KIND: ClassVar[str] = "list"

    # Serve-tier fields (schema v5): admission class, deadline, id.
    priority: str = "interactive"
    deadline_s: Optional[float] = None
    request_id: Optional[str] = None


def _check_modes(modes: Tuple[str, ...]) -> None:
    if not modes:
        raise ConfigError("modes must be non-empty")
    for mode in modes:
        if mode not in ATPG_MODES:
            raise ConfigError(
                f"mode must be one of {ATPG_MODES}, got {mode!r}")


#: kind string -> request class, for :func:`request_from_dict`.
REQUEST_KINDS: Dict[str, Type[Request]] = {
    cls.KIND: cls
    for cls in (LearnRequest, UntestableRequest, ATPGRequest,
                FaultSimRequest, SuiteRequest, ShardRequest,
                CompareRequest, StatsRequest, AnalyzeRequest,
                ListRequest)
}


def request_from_dict(data: Dict[str, object]) -> Request:
    """Parse any request kind from its plain-JSON form (strict)."""
    if not isinstance(data, dict):
        raise RequestError(
            f"request must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    if kind is None:
        raise RequestError(
            f"request is missing 'kind' (one of "
            f"{sorted(REQUEST_KINDS)})")
    if not isinstance(kind, str):
        raise RequestError(
            f"'kind' must be a string, got {type(kind).__name__}")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise RequestError(
            f"unknown request kind {kind!r} (expected one of "
            f"{sorted(REQUEST_KINDS)})")
    return cls.from_dict(data)
