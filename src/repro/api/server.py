"""``repro serve`` -- a warm, concurrent JSON-over-HTTP daemon.

One-shot CLI runs pay the same fixed costs on every invocation: Python
start-up, kernel compilation, learning.  The daemon keeps one process
warm and shares the expensive state across requests:

* the compiled-kernel cache (:mod:`repro.sim.compiled`, process-wide,
  now thread-safe),
* a content-addressed :class:`~repro.api.store.ArtifactStore` of learn
  results (in-memory, optionally disk-backed with ``--store``),
* fault-cone and fanout caches living on circuit objects.

Protocol (stdlib only -- ``http.server``; one thread per request via
``ThreadingHTTPServer``):

``POST /v1/execute``
    Body: one request document (:mod:`repro.api.requests`).  Answer:
    the same versioned envelope :func:`repro.api.execute` returns --
    byte-identical to a one-shot ``repro ... --json`` run of the same
    request (timings and all; send ``"canonical": true`` for
    reproducible bytes).  HTTP status comes from the error taxonomy
    (400 parse/config, 404 resolve, 409 artifact, 500 engine).

``GET /v1/health``
    Liveness + cache statistics (requests served, kernel-cache and
    artifact-store hit counters).

``GET /v1/kinds``
    The request vocabulary: kind names and their schema_version.

Determinism under concurrency is inherited, not bolted on: the engines
share no mutable per-run state (each request gets its own session;
caches hold immutable-after-build objects), so N parallel clients get
the same bytes as N serial runs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..sim.compiled import compile_cache_stats
from .errors import HTTP_STATUS_BY_CODE, RequestError
from .executor import Response, execute
from .requests import REQUEST_KINDS, SCHEMA_VERSION
from .store import ArtifactStore

#: Request fields naming server-side filesystem paths.  Rejected by the
#: daemon unless it was started with ``allow_file_requests=True``: a
#: network client must not get arbitrary file read/write as the daemon
#: user just by naming a path in a request document.
FILE_PATH_FIELDS = ("save", "out", "learned")

__all__ = ["ReproServer", "make_server", "serve"]

#: Largest accepted request body; a request document is small, and the
#: daemon should shrug off confused or hostile clients.
MAX_BODY_BYTES = 4 << 20


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the warm shared state."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 store: Optional[ArtifactStore] = None,
                 allow_file_requests: bool = False):
        super().__init__(address, _Handler)
        self.store = store if store is not None else ArtifactStore()
        self.allow_file_requests = allow_file_requests
        self.requests_served = 0
        self.requests_failed = 0
        self.stats_lock = threading.Lock()

    def health(self) -> dict:
        with self.stats_lock:
            served, failed = self.requests_served, self.requests_failed
        return {
            "ok": True,
            "schema_version": SCHEMA_VERSION,
            "requests_served": served,
            "requests_failed": failed,
            "kernel_cache": compile_cache_stats(),
            "artifact_store": self.store.stats(),
        }

    def count(self, ok: bool) -> None:
        with self.stats_lock:
            self.requests_served += 1
            if not ok:
                self.requests_failed += 1


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer  # typing aid; http.server sets this

    #: Silence the default per-request stderr lines; a daemon serving
    #: concurrent traffic should not interleave access logs with the
    #: owner's terminal.  Errors still surface as error envelopes.
    def log_message(self, format: str, *args) -> None:
        pass

    # ------------------------------------------------------------------
    def _send(self, status: int, payload_bytes: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload_bytes)))
        self.end_headers()
        self.wfile.write(payload_bytes)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, (json.dumps(payload, indent=1) + "\n").encode())

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        if self.path == "/v1/health":
            self._send_json(200, self.server.health())
        elif self.path == "/v1/kinds":
            self._send_json(200, {
                "schema_version": SCHEMA_VERSION,
                "kinds": sorted(REQUEST_KINDS),
            })
        else:
            self._send_json(404, {
                "schema_version": SCHEMA_VERSION,
                "ok": False,
                "error": {"code": "parse", "stage": "http",
                          "message": f"no such endpoint {self.path!r}; "
                                     "POST /v1/execute, GET /v1/health, "
                                     "GET /v1/kinds"},
            })

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        if self.path != "/v1/execute":
            self.do_GET()  # reuse the 404 envelope
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            error = RequestError(
                f"request body must be 0..{MAX_BODY_BYTES} bytes with a "
                "valid Content-Length", stage="http")
            self._respond(Response(kind="unknown", ok=False,
                                   error=error.envelope(), exit_code=1),
                          error.http_status)
            return
        body = self.rfile.read(length)
        try:
            data = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            error = RequestError(f"request body is not valid JSON: {exc}",
                                 stage="http")
            self._respond(Response(kind="unknown", ok=False,
                                   error=error.envelope(), exit_code=1),
                          error.http_status)
            return
        if not isinstance(data, dict):
            data = {"kind": data}  # let request parsing shape the error
        if not self.server.allow_file_requests:
            named = [f for f in FILE_PATH_FIELDS if data.get(f)]
            if named:
                error = RequestError(
                    f"this server does not accept requests naming "
                    f"server-side file paths ({named}); restart it with "
                    "allow_file_requests (repro serve "
                    "--allow-file-requests) to opt in", stage="http")
                self._respond(Response(
                    kind=str(data.get("kind")), ok=False,
                    error=error.envelope(), exit_code=1),
                    error.http_status)
                return
        response = execute(data, store=self.server.store)
        status = 200
        if not response.ok:
            code = (response.error or {}).get("code")
            status = HTTP_STATUS_BY_CODE.get(code, 500)
        self._respond(response, status)

    def _respond(self, response: Response, status: int) -> None:
        self.server.count(response.ok)
        self._send(status, response.to_json().encode())


def make_server(host: str = "127.0.0.1", port: int = 0,
                store: Optional[ArtifactStore] = None,
                allow_file_requests: bool = False) -> ReproServer:
    """Bind (but do not run) a daemon; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` on any thread,
    ``shutdown()`` + ``server_close()`` to stop.  Used directly by the
    concurrency tests.
    """
    return ReproServer((host, port), store=store,
                       allow_file_requests=allow_file_requests)


def serve(host: str = "127.0.0.1", port: int = 8451,
          store_dir: Optional[str] = None,
          allow_file_requests: bool = False,
          announce=print) -> None:
    """Run the daemon until interrupted (the ``repro serve`` command)."""
    store = ArtifactStore(root=store_dir)
    server = make_server(host, port, store=store,
                         allow_file_requests=allow_file_requests)
    bound_host, bound_port = server.server_address[:2]
    announce(f"repro serve: listening on http://{bound_host}:{bound_port}"
             f" (schema_version {SCHEMA_VERSION}, store: "
             f"{store_dir or 'in-memory'})")
    announce("POST /v1/execute | GET /v1/health | GET /v1/kinds "
             "-- Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
