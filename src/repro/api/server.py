"""``repro serve`` -- compatibility shim over :mod:`repro.serve`.

The daemon outgrew this module: streaming, admission control,
cancellation and metrics live in the :mod:`repro.serve` package now
(:mod:`repro.serve.daemon` in particular).  Every public name that
historically lived here -- :class:`ReproServer`, :func:`make_server`,
:func:`serve`, :data:`MAX_BODY_BYTES`, :data:`FILE_PATH_FIELDS` -- is
re-exported unchanged, so existing imports and the
``repro.api.make_server`` lazy attribute keep working.
"""

from __future__ import annotations

from ..serve.daemon import (
    FILE_PATH_FIELDS,
    MAX_BODY_BYTES,
    ReproServer,
    make_server,
    serve,
)

__all__ = ["ReproServer", "make_server", "serve",
           "MAX_BODY_BYTES", "FILE_PATH_FIELDS"]
