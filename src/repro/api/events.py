"""Unified streaming event protocol for pipeline execution.

Before the API boundary existed every surface had its own liveness
channel: ``Session`` progress hooks fired raw ``(stage, event,
payload)`` tuples, suites threaded the same tuples through a
multiprocessing queue (:class:`~repro.flow.parallel_suite.
QueueProgressAdapter`), and the CLI pattern-matched on them inline.
This module is the one shape all of those now reduce to: an
:func:`execute` caller passes a single ``events`` callable and receives
typed, JSON-serializable event objects.

* :class:`ProgressEvent` -- a stage started, ticked, or ended.  Ticks
  are throttled liveness beats inside long ATPG loops
  (``payload={"done", "total"}``).
* :class:`StageEvent` -- a stage completed, with its summary dict; the
  stream-level twin of :class:`~repro.flow.session.StageRecord`.
* :class:`ResultEvent` -- terminal: carries the full response envelope
  that :func:`repro.api.execute` is about to return.

Events are UI, not data: sinks that raise are suppressed (exactly as
legacy progress hooks were), and no result ever depends on whether a
sink was attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..flow.session import ProgressHook

__all__ = ["Event", "ProgressEvent", "StageEvent", "ResultEvent",
           "EventSink", "progress_hook_for"]


@dataclass
class Event:
    """Base event; ``to_dict`` yields the wire form (``event`` key)."""

    KIND = "event"

    def to_dict(self) -> Dict[str, object]:
        return {"event": self.KIND}


@dataclass
class ProgressEvent(Event):
    """A pipeline stage started, ticked, or ended."""

    KIND = "progress"

    stage: str = ""
    #: ``"start"``, ``"tick"`` or ``"end"``.
    status: str = "start"
    payload: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        return {"event": self.KIND, "stage": self.stage,
                "status": self.status, "payload": self.payload}


@dataclass
class StageEvent(Event):
    """A pipeline stage finished, with its summary."""

    KIND = "stage"

    stage: str = ""
    summary: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"event": self.KIND, "stage": self.stage,
                "summary": dict(self.summary)}


@dataclass
class ResultEvent(Event):
    """Terminal event: the response envelope of the whole request."""

    KIND = "result"

    envelope: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"event": self.KIND, "envelope": self.envelope}


#: An execute() caller's event callback.
EventSink = Callable[[Event], None]


def emit(sink: Optional[EventSink], event: Event) -> None:
    """Deliver one event, swallowing sink failures (events are UI)."""
    if sink is None:
        return
    try:
        sink(event)
    except Exception:
        pass


def progress_hook_for(sink: Optional[EventSink]) -> Optional[ProgressHook]:
    """Adapt an event sink to the legacy ``(stage, event, payload)``
    hook signature the pipeline engines speak.

    Stage ``end`` fans out as *two* events -- a :class:`ProgressEvent`
    closing the stage and a :class:`StageEvent` carrying its summary --
    so stream consumers can treat StageEvents as the durable record and
    ProgressEvents as pure liveness.
    """
    if sink is None:
        return None

    def hook(stage: str, event: str, payload: Optional[dict]) -> None:
        emit(sink, ProgressEvent(stage=stage, status=event,
                                 payload=payload))
        if event == "end":
            emit(sink, StageEvent(stage=stage, summary=payload or {}))

    return hook
