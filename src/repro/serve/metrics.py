"""Thread-safe metrics registry for the serve tier.

One :class:`Metrics` instance per daemon, shared by every handler
thread.  Two instrument families cover everything the serve tier needs
to answer "is it healthy and where does the time go":

* **counters** -- monotonically increasing event counts
  (``requests_total``, ``rejections_total``, ``cancellations_total``),
  labelled so per-kind / per-class / per-reason rates fall out.
* **histograms** -- fixed-bucket distributions (request latency, queue
  wait, queue depth).  Buckets are cumulative-at-export, Prometheus
  style: bucket ``le=b`` counts observations ``<= b``, with a final
  ``+Inf`` catch-all, plus ``_sum`` and ``_count`` so averages and
  quantile estimates need no raw samples.

The registry is a single dict-per-family guarded by one lock; every
access takes it (lint R003 enforces this).  Export is deterministic:
both :meth:`Metrics.to_dict` (JSON) and
:meth:`Metrics.render_prometheus` (text exposition format) emit series
in sorted order, never hash order.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Metrics", "histogram_quantile",
           "LATENCY_BUCKETS_S", "DEPTH_BUCKETS"]

#: Default upper bounds (seconds) for latency-flavoured histograms:
#: sub-5ms cache hits through minutes-long batch ATPG runs.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0)

#: Upper bounds for queue-depth observations (entries, not seconds).
DEPTH_BUCKETS: Tuple[float, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

#: (name, sorted (label, value) pairs) -- one series' identity.
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str,
                labels: Optional[Dict[str, str]]) -> _SeriesKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((str(k), str(v))
                               for k, v in labels.items())))


def _render_labels(pairs: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[Tuple[str, str], ...]] = None
                   ) -> str:
    items = list(pairs) + list(extra or ())
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def _bound_label(bound: float) -> str:
    """Prometheus ``le`` label text: integral bounds without ``.0``."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class Metrics:
    """Counters + fixed-bucket histograms behind one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[_SeriesKey, int] = {}
        #: series key -> [per-bucket counts (+Inf last), sum, count]
        self._histograms: Dict[_SeriesKey, List[object]] = {}
        #: histogram name -> its immutable bucket upper bounds
        self._bounds: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, labels: Optional[Dict[str, str]] = None,
            value: int = 1) -> None:
        """Add ``value`` to a counter series (creating it at 0)."""
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def observe(self, name: str, value: float,
                labels: Optional[Dict[str, str]] = None,
                buckets: Optional[Sequence[float]] = None) -> None:
        """Record one observation into a histogram series.

        ``buckets`` fixes the upper bounds the first time a name is
        seen (default :data:`LATENCY_BUCKETS_S`); later calls for the
        same name reuse them, so every series of one name is
        comparable.
        """
        key = _series_key(name, labels)
        with self._lock:
            bounds = self._bounds.get(name)
            if bounds is None:
                bounds = tuple(buckets) if buckets is not None \
                    else LATENCY_BUCKETS_S
                self._bounds[name] = bounds
            cell = self._histograms.get(key)
            if cell is None:
                cell = [[0] * (len(bounds) + 1), 0.0, 0]
                self._histograms[key] = cell
            cell[0][bisect_left(bounds, value)] += 1
            cell[1] += value
            cell[2] += 1

    # ------------------------------------------------------------------
    def counter_value(self, name: str,
                      labels: Optional[Dict[str, str]] = None) -> int:
        """Current value of one counter series (0 if never bumped)."""
        key = _series_key(name, labels)
        with self._lock:
            return self._counters.get(key, 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all of its label series."""
        with self._lock:
            return sum(value for (key_name, _), value
                       in self._counters.items() if key_name == name)

    def histogram_snapshot(self, name: str,
                           labels: Optional[Dict[str, str]] = None
                           ) -> Optional[Dict[str, object]]:
        """One histogram series as ``{bounds, counts, sum, count}``."""
        key = _series_key(name, labels)
        with self._lock:
            cell = self._histograms.get(key)
            if cell is None:
                return None
            return {"bounds": list(self._bounds[name]),
                    "counts": list(cell[0]),
                    "sum": cell[1], "count": cell[2]}

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON export: sorted series names, raw bucket counts."""
        with self._lock:
            counters = {
                name + _render_labels(pairs): value
                for (name, pairs), value in sorted(
                    self._counters.items())}
            histograms = {}
            for (name, pairs), cell in sorted(self._histograms.items()):
                bounds = self._bounds[name]
                buckets = {_bound_label(b): cell[0][i]
                           for i, b in enumerate(bounds)}
                buckets["+Inf"] = cell[0][-1]
                histograms[name + _render_labels(pairs)] = {
                    "buckets": buckets,
                    "sum": round(float(cell[1]), 6),
                    "count": cell[2],
                }
        return {"counters": counters, "histograms": histograms}

    def render_prometheus(self,
                          gauges: Optional[Dict[str, float]] = None,
                          prefix: str = "repro_") -> str:
        """Prometheus text exposition format (version 0.0.4).

        ``gauges`` are point-in-time values sampled by the caller at
        scrape time (cache sizes, queue depths); they are rendered as
        gauge series alongside the registry's own counters and
        histograms.
        """
        lines: List[str] = []
        with self._lock:
            counter_items = sorted(self._counters.items())
            histogram_items = [
                ((name, pairs),
                 self._bounds[name], list(cell[0]), cell[1], cell[2])
                for (name, pairs), cell in sorted(
                    self._histograms.items())]
        seen_types = set()
        for (name, pairs), value in counter_items:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {prefix}{name} counter")
            lines.append(
                f"{prefix}{name}{_render_labels(pairs)} {value}")
        for (name, pairs), bounds, counts, total, count \
                in histogram_items:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {prefix}{name} histogram")
            cumulative = 0
            for i, bound in enumerate(bounds):
                cumulative += counts[i]
                lines.append(
                    f"{prefix}{name}_bucket"
                    f"{_render_labels(pairs, (('le', _bound_label(bound)),))}"
                    f" {cumulative}")
            cumulative += counts[-1]
            lines.append(
                f"{prefix}{name}_bucket"
                f"{_render_labels(pairs, (('le', '+Inf'),))}"
                f" {cumulative}")
            lines.append(f"{prefix}{name}_sum{_render_labels(pairs)}"
                         f" {round(float(total), 6)}")
            lines.append(f"{prefix}{name}_count{_render_labels(pairs)}"
                         f" {count}")
        for gauge_name in sorted(gauges or {}):
            lines.append(f"# TYPE {prefix}{gauge_name} gauge")
            lines.append(f"{prefix}{gauge_name} {gauges[gauge_name]}")
        return "\n".join(lines) + "\n"


def histogram_quantile(bounds: Sequence[float],
                       counts: Sequence[int], q: float) -> float:
    """Estimate the q-quantile from fixed-bucket counts.

    Returns the upper bound of the bucket holding the q-th observation
    (the standard conservative estimate; the ``+Inf`` bucket reports
    the largest finite bound).  Used by the bench harness and tests to
    turn exported histograms back into p50/p99 figures.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            if i < len(bounds):
                return float(bounds[i])
            return float(bounds[-1])
    return float(bounds[-1])
