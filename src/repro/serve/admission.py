"""Bounded, two-class weighted admission control for the daemon.

Every request must acquire one of ``max_active`` execution slots before
:func:`repro.api.execute` runs.  When all slots are busy the request
waits in its priority class's bounded FIFO queue; when that queue is
full the request is rejected immediately with
:class:`~repro.api.errors.OverloadFailure` (HTTP 429 + ``Retry-After``)
-- explicit backpressure beats an unbounded backlog every time.

Scheduling between the two classes is weighted, not absolute:
``interactive`` requests win up to :data:`INTERACTIVE_BURST` grants in
a row while ``batch`` work is waiting, then one ``batch`` request is
granted.  Interactive latency stays bounded under a saturated batch
queue, and batch can never be starved outright.

Waiters poll their grant event with a short timeout so a queued
request's :class:`~repro.serve.cancel.CancelToken` still fires (a
client that gives up while queued should not occupy a slot later);
abandoned waiters are skipped lazily at grant time.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from typing import Dict, Iterator, Optional

from ..api.errors import OverloadFailure

__all__ = ["AdmissionController", "INTERACTIVE_BURST"]

#: Consecutive interactive grants allowed while batch work waits.
INTERACTIVE_BURST = 4

#: Seconds between cancellation polls while queued.
_WAIT_POLL_S = 0.05


class _Waiter:
    """One queued request: its grant event + cancellation state.

    Mutated only under the owning controller's lock; the Event is the
    sole cross-thread signal.
    """

    __slots__ = ("event", "priority", "abandoned", "granted")

    def __init__(self, priority: str):
        self.event = threading.Event()
        self.priority = priority
        self.abandoned = False
        self.granted = False


class AdmissionController:
    """``max_active`` slots + two bounded priority queues."""

    def __init__(self, max_active: int = 4, queue_depth: int = 16):
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if queue_depth < 0:
            raise ValueError(
                f"queue_depth must be >= 0, got {queue_depth}")
        self.max_active = max_active
        self.queue_depth = queue_depth
        self._lock = threading.Lock()
        self._active = 0
        self._waiting: Dict[str, "deque[_Waiter]"] = {
            "interactive": deque(), "batch": deque()}
        self._since_batch = 0

    # ------------------------------------------------------------------
    def acquire(self, priority: str = "interactive",
                cancel: Optional[object] = None) -> None:
        """Take one slot, waiting in the class queue if necessary.

        Raises :class:`OverloadFailure` when the class queue is full,
        or whatever ``cancel.check()`` raises if the request is
        cancelled (deadline, disconnect, explicit) while queued.
        """
        queue = self._queue_for(priority)
        with self._lock:
            if self._active < self.max_active and not self._any_waiting():
                self._active += 1
                return
            if len(queue) >= self.queue_depth:
                raise OverloadFailure(
                    f"server is at capacity ({self.max_active} active, "
                    f"{len(queue)} queued {priority}); try again later",
                    stage="admission",
                    retry_after_s=self._retry_after_locked())
            waiter = _Waiter(priority)
            queue.append(waiter)
            # Abandoned heads may be masking free slots; sweep now so a
            # fresh waiter can never deadlock behind ghosts.
            self._grant_next_locked()
        while True:
            if waiter.event.wait(_WAIT_POLL_S):
                return
            if cancel is None:
                continue
            try:
                cancel.check()
            except BaseException:
                with self._lock:
                    waiter.abandoned = True
                    if waiter.granted:
                        # Grant raced the cancellation: hand the slot
                        # straight to the next waiter.
                        self._active -= 1
                        self._grant_next_locked()
                raise

    def release(self) -> None:
        """Return one slot and grant it onward."""
        with self._lock:
            self._active -= 1
            self._grant_next_locked()

    @contextlib.contextmanager
    def slot(self, priority: str = "interactive",
             cancel: Optional[object] = None) -> Iterator[None]:
        """``with admission.slot(...):`` -- acquire/release pairing."""
        self.acquire(priority, cancel=cancel)
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------
    def depths(self) -> Dict[str, int]:
        """Point-in-time occupancy (live waiters only)."""
        with self._lock:
            return {
                "active": self._active,
                "interactive": sum(
                    1 for w in self._waiting["interactive"]
                    if not w.abandoned),
                "batch": sum(1 for w in self._waiting["batch"]
                             if not w.abandoned),
            }

    # ------------------------------------------------------------------
    def _queue_for(self, priority: str) -> "deque[_Waiter]":
        with self._lock:
            queue = self._waiting.get(priority)
        if queue is None:
            # Admission must not 500 on a typo'd class; request
            # validation inside execute() owns rejecting it.
            with self._lock:
                queue = self._waiting["interactive"]
        return queue

    def _any_waiting(self) -> bool:
        # Effectively locked: called only under self._lock.
        return any(w for q in self._waiting.values() for w in q
                   if not w.abandoned)

    def _retry_after_locked(self) -> int:
        # Effectively locked: called only under self._lock.
        waiting = sum(len(q) for q in self._waiting.values())
        return max(1, (self._active + waiting) // self.max_active)

    def _grant_next_locked(self) -> None:
        # Effectively locked: called only under self._lock.
        while self._active < self.max_active:
            waiter = self._pick_locked()
            if waiter is None:
                return
            waiter.granted = True
            self._active += 1
            waiter.event.set()

    def _pick_locked(self) -> Optional[_Waiter]:
        # Effectively locked: called only under self._lock.
        interactive = self._waiting["interactive"]
        batch = self._waiting["batch"]
        for queue in (interactive, batch):
            while queue and queue[0].abandoned:
                queue.popleft()
        if interactive and batch:
            if self._since_batch >= INTERACTIVE_BURST:
                self._since_batch = 0
                return batch.popleft()
            self._since_batch += 1
            return interactive.popleft()
        if interactive:
            self._since_batch += 1
            return interactive.popleft()
        if batch:
            self._since_batch = 0
            return batch.popleft()
        return None
