"""Cooperative cancellation tokens for in-flight requests.

A :class:`CancelToken` is created per request by the daemon and handed
to :func:`repro.api.execute` as its ``cancel`` checkpoint callable (via
:meth:`CancelToken.check`).  The engines poll it at stage boundaries
and inside ``run_atpg``'s per-fault loop; when the token has been
cancelled the poll raises the matching taxonomy error
(:class:`~repro.api.errors.DeadlineExceeded` for expired deadlines,
:class:`~repro.api.errors.CancelledFailure` for everything else), which
:func:`~repro.api.errors.classify_error` passes straight through into
the error envelope.

Cancellation reasons (first cancel wins, later ones are ignored):

``explicit``            ``POST /v1/cancel`` named this request
``deadline``            the request's deadline (or server cap) expired
``client_disconnect``   the client's socket reported EOF / reset
``client_stalled``      a stream write timed out on a wedged reader

Deadlines are checked on every poll; client liveness is checked through
an optional *probe* callable (a throttled non-blocking socket peek
installed by the daemon), so an abandoned search stops burning cores
within one checkpoint of the client vanishing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..api.errors import CancelledFailure, DeadlineExceeded

__all__ = ["CancelToken",
           "REASON_EXPLICIT", "REASON_DEADLINE",
           "REASON_CLIENT_DISCONNECT", "REASON_CLIENT_STALLED"]

REASON_EXPLICIT = "explicit"
REASON_DEADLINE = "deadline"
REASON_CLIENT_DISCONNECT = "client_disconnect"
REASON_CLIENT_STALLED = "client_stalled"

#: Minimum seconds between client-liveness probe calls; a probe is a
#: syscall, and ``check`` fires once per targeted fault.
PROBE_INTERVAL_S = 0.2


class CancelToken:
    """Set-once cancellation flag with deadline + liveness probing."""

    def __init__(self, deadline_s: Optional[float] = None):
        self._lock = threading.Lock()
        self._callbacks: List[Callable[[str], None]] = []
        self._reason: Optional[str] = None
        #: Absolute monotonic instant the deadline expires (None = no
        #: deadline).  Immutable after construction.
        self.deadline_at = (time.perf_counter() + deadline_s
                            if deadline_s is not None else None)
        self._probe: Optional[Callable[[], Optional[str]]] = None
        self._next_probe_at = 0.0

    # ------------------------------------------------------------------
    @property
    def reason(self) -> Optional[str]:
        """Why this token was cancelled, or None while live."""
        with self._lock:
            return self._reason

    def cancelled(self) -> bool:
        return self.reason is not None

    def cancel(self, reason: str) -> bool:
        """Cancel (first call wins); returns whether this call won.

        Registered callbacks run exactly once, outside the lock, with
        their exceptions suppressed -- a callback is notification, not
        control flow.
        """
        with self._lock:
            if self._reason is not None:
                return False
            self._reason = reason
            callbacks = list(self._callbacks)
        for callback in callbacks:
            try:
                callback(reason)
            except Exception:
                pass
        return True

    def on_cancel(self, callback: Callable[[str], None]) -> None:
        """Register a callback; fires immediately if already cancelled."""
        with self._lock:
            if self._reason is None:
                self._callbacks.append(callback)
                return
            reason = self._reason
        try:
            callback(reason)
        except Exception:
            pass

    def set_probe(self,
                  probe: Optional[Callable[[], Optional[str]]]) -> None:
        """Install a liveness probe: returns a cancel reason or None.

        Called from :meth:`check`, throttled to
        :data:`PROBE_INTERVAL_S`; probe exceptions are treated as "no
        verdict" (an undecidable peek must not kill a healthy run).
        """
        with self._lock:
            self._probe = probe

    # ------------------------------------------------------------------
    def check(self) -> None:
        """The checkpoint callable threaded into the engines; raises
        when the request must stop, returns None otherwise."""
        with self._lock:
            reason = self._reason
            probe = self._probe
        if reason is None and self.deadline_at is not None \
                and time.perf_counter() > self.deadline_at:
            self.cancel(REASON_DEADLINE)
            reason = REASON_DEADLINE
        if reason is None and probe is not None:
            now = time.perf_counter()
            if now >= self._next_probe_at:
                self._next_probe_at = now + PROBE_INTERVAL_S
                try:
                    verdict = probe()
                except Exception:
                    verdict = None
                if verdict is not None:
                    self.cancel(verdict)
                    reason = verdict
        if reason is None:
            return
        if reason == REASON_DEADLINE:
            raise DeadlineExceeded("request deadline expired")
        raise CancelledFailure(f"request cancelled ({reason})")
