"""The production daemon behind ``repro serve``.

This module grew out of :mod:`repro.api.server` (which now re-exports
it) when the daemon became a real serving tier instead of a thin HTTP
shim.  On top of the original warm-process contract -- shared kernel
cache, shared :class:`~repro.api.store.ArtifactStore`, byte-identical
envelopes -- it adds three production capabilities:

**Streaming.**  ``POST /v1/stream`` (or ``POST /v1/execute`` with
``Accept: application/x-ndjson``) emits the typed event protocol live
while the request executes -- NDJSON lines by default, SSE with
``Accept: text/event-stream`` -- terminated by the exact byte-identical
envelope a one-shot run would return (see
:mod:`repro.serve.streaming`).

**Admission control.**  Every request passes the
:class:`~repro.serve.admission.AdmissionController`: bounded per-class
queues, ``interactive`` weighted over ``batch``, 429 +
``Retry-After`` on overflow.  Per-request deadlines (``deadline_s``
request field, capped by the server's ``deadline_cap``) and client
disconnects propagate into the engines through a
:class:`~repro.serve.cancel.CancelToken`, so abandoned ATPG searches
stop burning cores mid-fault-loop.  ``POST /v1/cancel`` cancels by
request id (server-assigned ``r-<n>``, echoed in ``X-Request-Id``, or
client-chosen via the ``request_id`` field).

**Observability.**  A :class:`~repro.serve.metrics.Metrics` registry
records per-kind latency, queue wait/depth, rejections and
cancellations; ``GET /v1/metrics`` exports it as JSON (default) or
Prometheus text (``?format=prometheus`` / ``Accept: text/plain``),
alongside point-in-time cache-tier stats (kernel cache, artifact
store, pattern cache).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..api.errors import (
    HTTP_STATUS_BY_CODE,
    OverloadFailure,
    PayloadTooLarge,
    ReproError,
    RequestError,
)
from ..api.executor import Response, execute
from ..api.requests import PRIORITY_CLASSES, REQUEST_KINDS, SCHEMA_VERSION
from ..api.store import ArtifactStore
from ..sim.array_backend import pattern_cache_stats
from ..sim.compiled import compile_cache_stats
from .admission import AdmissionController
from .cancel import REASON_CLIENT_DISCONNECT, REASON_EXPLICIT, CancelToken
from .metrics import DEPTH_BUCKETS, Metrics
from .streaming import (
    NDJSON_CONTENT_TYPE,
    SSE_CONTENT_TYPE,
    EventStreamWriter,
)

__all__ = ["ReproServer", "make_server", "serve",
           "MAX_BODY_BYTES", "FILE_PATH_FIELDS"]

#: Request fields naming server-side filesystem paths.  Rejected by the
#: daemon unless it was started with ``allow_file_requests=True``: a
#: network client must not get arbitrary file read/write as the daemon
#: user just by naming a path in a request document.
FILE_PATH_FIELDS = ("save", "out", "learned")

#: Largest accepted request body; a request document is small, and the
#: daemon should shrug off confused or hostile clients.
MAX_BODY_BYTES = 4 << 20


def _default_max_active() -> int:
    return max(2, min(8, os.cpu_count() or 2))


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the warm shared state."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 store: Optional[ArtifactStore] = None,
                 allow_file_requests: bool = False,
                 queue_depth: int = 16,
                 max_active: Optional[int] = None,
                 deadline_cap: Optional[float] = None,
                 allow_streaming: bool = True):
        super().__init__(address, _Handler)
        self.store = store if store is not None else ArtifactStore()
        self.allow_file_requests = allow_file_requests
        self.allow_streaming = allow_streaming
        #: Server-wide ceiling on any request's deadline (seconds);
        #: also the deadline applied to requests that name none.
        self.deadline_cap = deadline_cap
        #: Per-write socket timeout on streams: a reader stalled longer
        #: than this cancels the request instead of wedging the worker.
        self.stream_write_timeout = 10.0
        self.metrics = Metrics()
        self.admission = AdmissionController(
            max_active=(max_active if max_active is not None
                        else _default_max_active()),
            queue_depth=queue_depth)
        self.requests_served = 0
        self.requests_failed = 0
        self._request_counter = 0
        self._tokens: Dict[str, CancelToken] = {}
        self.stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    def health(self) -> dict:
        with self.stats_lock:
            served, failed = self.requests_served, self.requests_failed
        return {
            "ok": True,
            "schema_version": SCHEMA_VERSION,
            "requests_served": served,
            "requests_failed": failed,
            "streaming": self.allow_streaming,
            "admission": self.admission.depths(),
            "kernel_cache": compile_cache_stats(),
            "artifact_store": self.store.stats(),
            "pattern_cache": pattern_cache_stats(),
        }

    def count(self, ok: bool) -> None:
        with self.stats_lock:
            self.requests_served += 1
            if not ok:
                self.requests_failed += 1

    # ------------------------------------------------------------------
    def next_request_id(self) -> str:
        """Deterministic server-assigned id (``r-1``, ``r-2``, ...)."""
        with self.stats_lock:
            self._request_counter += 1
            return f"r-{self._request_counter}"

    def register_token(self, request_id: str,
                       token: CancelToken) -> None:
        with self.stats_lock:
            self._tokens[request_id] = token

    def unregister_token(self, request_id: str) -> None:
        with self.stats_lock:
            self._tokens.pop(request_id, None)

    def cancel_request(self, request_id: str) -> bool:
        """``POST /v1/cancel`` entry: True iff this call cancelled a
        live request (False: unknown id or already cancelled)."""
        with self.stats_lock:
            token = self._tokens.get(request_id)
        if token is None:
            return False
        return token.cancel(REASON_EXPLICIT)

    # ------------------------------------------------------------------
    def effective_deadline(self,
                           requested: Optional[float]
                           ) -> Optional[float]:
        """Request deadline clamped by the server cap."""
        if requested is None:
            return self.deadline_cap
        if self.deadline_cap is None:
            return requested
        return min(requested, self.deadline_cap)

    def metrics_payload(self) -> dict:
        """The ``GET /v1/metrics`` JSON document."""
        return {
            "schema_version": SCHEMA_VERSION,
            "metrics": self.metrics.to_dict(),
            "caches": {
                "kernel_cache": compile_cache_stats(),
                "artifact_store": self.store.stats(),
                "pattern_cache": pattern_cache_stats(),
            },
            "admission": self.admission.depths(),
        }

    def metrics_gauges(self) -> Dict[str, float]:
        """Point-in-time gauge values for the Prometheus export."""
        out: Dict[str, float] = {}
        for prefix, stats in (("kernel_cache", compile_cache_stats()),
                              ("artifact_store", self.store.stats()),
                              ("pattern_cache", pattern_cache_stats())):
            for key in sorted(stats):
                value = stats[key]
                if isinstance(value, (int, float)):
                    out[f"{prefix}_{key}"] = value
        depths = self.admission.depths()
        for key in sorted(depths):
            out[f"admission_{key}"] = depths[key]
        with self.stats_lock:
            out["requests_served"] = self.requests_served
            out["requests_failed"] = self.requests_failed
        return out


class _Handler(BaseHTTPRequestHandler):
    server: ReproServer  # typing aid; http.server sets this

    #: Per-socket-operation timeout: a sender that stalls forever
    #: mid-body (or mid-chunk) is cut loose instead of pinning a
    #: worker thread.
    timeout = 60.0

    #: Silence the default per-request stderr lines; a daemon serving
    #: concurrent traffic should not interleave access logs with the
    #: owner's terminal.  Errors still surface as error envelopes.
    def log_message(self, format: str, *args) -> None:
        pass

    # ------------------------------------------------------------------
    def _send(self, status: int, payload_bytes: bytes,
              content_type: str = "application/json",
              headers: Optional[Dict[str, str]] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload_bytes)))
        for name in sorted(headers or {}):
            self.send_header(name, headers[name])
        self.end_headers()
        self.wfile.write(payload_bytes)

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        self._send(status, (json.dumps(payload, indent=1) + "\n").encode(),
                   headers=headers)

    def _respond(self, response: Response, status: int,
                 headers: Optional[Dict[str, str]] = None) -> None:
        self.server.count(response.ok)
        self._send(status, response.to_json().encode(), headers=headers)

    def _respond_error(self, error: ReproError, kind: str = "unknown",
                       headers: Optional[Dict[str, str]] = None) -> None:
        self._respond(Response(kind=kind, ok=False,
                               error=error.envelope(), exit_code=1),
                      error.http_status, headers=headers)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        path, _, query = self.path.partition("?")
        if path == "/v1/health":
            self._send_json(200, self.server.health())
        elif path == "/v1/kinds":
            self._send_json(200, {
                "schema_version": SCHEMA_VERSION,
                "kinds": sorted(REQUEST_KINDS),
            })
        elif path == "/v1/metrics":
            accept = self.headers.get("Accept", "")
            if "format=prometheus" in query or "text/plain" in accept:
                self._send(200,
                           self.server.metrics.render_prometheus(
                               gauges=self.server.metrics_gauges()
                           ).encode(),
                           content_type="text/plain; version=0.0.4")
            else:
                self._send_json(200, self.server.metrics_payload())
        else:
            self._send_json(404, {
                "schema_version": SCHEMA_VERSION,
                "ok": False,
                "error": {"code": "parse", "stage": "http",
                          "message": f"no such endpoint {self.path!r}; "
                                     "POST /v1/execute, /v1/stream, "
                                     "/v1/cancel; GET /v1/health, "
                                     "/v1/kinds, /v1/metrics"},
            })

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        if self.path == "/v1/cancel":
            self._handle_cancel()
        elif self.path == "/v1/stream":
            if not self.server.allow_streaming:
                self._respond_error(RequestError(
                    "streaming is disabled on this server (restart "
                    "without --no-stream to enable /v1/stream)",
                    stage="http"))
                return
            self._handle_execute(stream_default=True)
        elif self.path == "/v1/execute":
            self._handle_execute(stream_default=False)
        else:
            self.do_GET()  # reuse the 404 envelope

    # ------------------------------------------------------------------
    # body reading (Content-Length and chunked, both bounded)
    # ------------------------------------------------------------------
    def _read_body(self) -> bytes:
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            return self._read_chunked()
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            raise RequestError(
                "Content-Length is not an integer", stage="http")
        if length < 0:
            raise RequestError(
                "Content-Length must be >= 0", stage="http")
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit", stage="http")
        return self.rfile.read(length)

    def _read_chunked(self) -> bytes:
        """Strict, bounded chunked-transfer decoding.

        ``http.server`` never decodes chunked bodies itself; without
        this, a chunked POST would be misread as an empty body.  Any
        malformation is a 400 (:class:`RequestError`); exceeding
        :data:`MAX_BODY_BYTES` across chunks is a 413 -- never a bare
        connection drop.
        """
        parts = []
        total = 0
        while True:
            line = self.rfile.readline(34)
            if not line.endswith(b"\n"):
                raise RequestError(
                    "malformed chunked body: oversized or truncated "
                    "chunk-size line", stage="http")
            size_token = line.strip().split(b";", 1)[0]
            try:
                size = int(size_token, 16)
            except ValueError:
                raise RequestError(
                    f"malformed chunked body: bad chunk size "
                    f"{size_token!r}", stage="http")
            if size < 0:
                raise RequestError(
                    "malformed chunked body: negative chunk size",
                    stage="http")
            total += size
            if total > MAX_BODY_BYTES:
                raise PayloadTooLarge(
                    f"chunked request body exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit", stage="http")
            chunk = self.rfile.read(size)
            if len(chunk) != size:
                raise RequestError(
                    "malformed chunked body: truncated chunk",
                    stage="http")
            terminator = self.rfile.read(2)
            if terminator != b"\r\n":
                raise RequestError(
                    "malformed chunked body: missing CRLF after chunk "
                    "(trailers are not supported)", stage="http")
            if size == 0:
                return b"".join(parts)
            parts.append(chunk)

    # ------------------------------------------------------------------
    def _handle_cancel(self) -> None:
        try:
            body = self._read_body()
            data = json.loads(body or b"null")
        except ReproError as error:
            self._respond_error(error)
            return
        except json.JSONDecodeError as exc:
            self._respond_error(RequestError(
                f"request body is not valid JSON: {exc}", stage="http"))
            return
        request_id = (data or {}).get("request_id") \
            if isinstance(data, dict) else None
        if not isinstance(request_id, str) or not request_id:
            self._respond_error(RequestError(
                "cancel body must be {\"request_id\": \"<id>\"}",
                stage="http"))
            return
        cancelled = self.server.cancel_request(request_id)
        self._send_json(200, {
            "schema_version": SCHEMA_VERSION,
            "ok": True,
            "request_id": request_id,
            "cancelled": cancelled,
        })

    # ------------------------------------------------------------------
    def _stream_format(self, stream_default: bool) -> Optional[str]:
        if not self.server.allow_streaming:
            return None
        accept = self.headers.get("Accept", "")
        if SSE_CONTENT_TYPE in accept:
            return "sse"
        if NDJSON_CONTENT_TYPE in accept:
            return "ndjson"
        return "ndjson" if stream_default else None

    def _disconnect_probe(self):
        """Throttled liveness peek: recv on a socket whose peer closed
        returns b'' (EOF) without blocking; a healthy idle peer raises
        BlockingIOError.  Run from CancelToken.check."""
        connection = self.connection

        def probe() -> Optional[str]:
            previous = connection.gettimeout()
            try:
                connection.settimeout(0.0)
                try:
                    chunk = connection.recv(1)
                finally:
                    connection.settimeout(previous)
            except (BlockingIOError, InterruptedError):
                return None
            except OSError:
                return REASON_CLIENT_DISCONNECT
            if not chunk:
                return REASON_CLIENT_DISCONNECT
            return None

        return probe

    # ------------------------------------------------------------------
    def _handle_execute(self, stream_default: bool) -> None:
        server = self.server
        started = time.perf_counter()
        kind = "unknown"
        priority = "interactive"
        outcome = "error"
        token: Optional[CancelToken] = None
        try:
            try:
                body = self._read_body()
                data = json.loads(body or b"null")
            except ReproError as error:
                self._respond_error(error)
                return
            except json.JSONDecodeError as exc:
                self._respond_error(RequestError(
                    f"request body is not valid JSON: {exc}",
                    stage="http"))
                return
            if not isinstance(data, dict):
                data = {"kind": data}  # let request parsing shape the error
            kind = str(data.get("kind"))
            if not server.allow_file_requests:
                named = [f for f in FILE_PATH_FIELDS if data.get(f)]
                if named:
                    self._respond_error(RequestError(
                        f"this server does not accept requests naming "
                        f"server-side file paths ({named}); restart it "
                        "with allow_file_requests (repro serve "
                        "--allow-file-requests) to opt in",
                        stage="http"), kind=kind)
                    return
            raw_priority = data.get("priority", "interactive")
            if raw_priority in PRIORITY_CLASSES:
                # An invalid class is admitted as interactive and then
                # rejected properly by request validation.
                priority = raw_priority
            raw_deadline = data.get("deadline_s")
            deadline = server.effective_deadline(
                raw_deadline if isinstance(raw_deadline, (int, float))
                and not isinstance(raw_deadline, bool)
                and raw_deadline > 0 else None)
            token = CancelToken(deadline_s=deadline)
            raw_id = data.get("request_id")
            request_id = (raw_id if isinstance(raw_id, str) and raw_id
                          else server.next_request_id())
            server.register_token(request_id, token)
            try:
                depths = server.admission.depths()
                server.metrics.observe(
                    "queue_depth", depths.get(priority, 0),
                    {"class": priority}, buckets=DEPTH_BUCKETS)
                queued_at = time.perf_counter()
                try:
                    server.admission.acquire(priority, cancel=token)
                except OverloadFailure as error:
                    outcome = "rejected"
                    server.metrics.inc("rejections_total",
                                       {"class": priority})
                    self._respond_error(
                        error, kind=kind,
                        headers={"Retry-After": str(error.retry_after_s),
                                 "X-Request-Id": request_id})
                    return
                except ReproError as error:
                    # Cancelled (deadline/disconnect/explicit) while
                    # still queued: never held a slot.
                    outcome = "cancelled"
                    self._respond_error(
                        error, kind=kind,
                        headers={"X-Request-Id": request_id})
                    return
                server.metrics.observe(
                    "queue_wait_s", time.perf_counter() - queued_at,
                    {"class": priority})
                try:
                    fmt = self._stream_format(stream_default)
                    if fmt is None:
                        token.set_probe(self._disconnect_probe())
                        response = execute(data, store=server.store,
                                           cancel=token.check)
                        status = 200
                        if not response.ok:
                            code = (response.error or {}).get("code")
                            status = HTTP_STATUS_BY_CODE.get(code, 500)
                        self._respond(response, status,
                                      headers={"X-Request-Id":
                                               request_id})
                        ok = response.ok
                    else:
                        ok = self._run_stream(data, fmt, token,
                                              request_id)
                    outcome = "ok" if ok else "error"
                finally:
                    server.admission.release()
            finally:
                server.unregister_token(request_id)
        finally:
            if token is not None and token.reason is not None:
                outcome = ("rejected" if outcome == "rejected"
                           else "cancelled")
                server.metrics.inc("cancellations_total",
                                   {"reason": token.reason})
            server.metrics.inc("requests_total",
                               {"kind": kind, "class": priority,
                                "outcome": outcome})
            server.metrics.observe("request_latency_s",
                                   time.perf_counter() - started,
                                   {"kind": kind})

    def _run_stream(self, data: dict, fmt: str, token: CancelToken,
                    request_id: str) -> bool:
        """Stream one request; returns whether it fully succeeded
        (envelope ok *and* delivered to a live client)."""
        server = self.server
        content_type = (NDJSON_CONTENT_TYPE if fmt == "ndjson"
                        else SSE_CONTENT_TYPE)
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Cache-Control", "no-store")
        self.send_header("X-Request-Id", request_id)
        self.send_header("Connection", "close")
        self.end_headers()
        # From here the stream is close-delimited: no Content-Length,
        # the envelope's framing carries its own byte count.
        self.connection.settimeout(server.stream_write_timeout)
        token.set_probe(self._disconnect_probe())
        writer = EventStreamWriter(self.wfile, fmt, token=token)
        server.metrics.inc("streams_total", {"format": fmt})
        response = execute(data, events=writer, store=server.store,
                           cancel=token.check)
        delivered = writer.finish(response.to_json().encode())
        ok = bool(response.ok and delivered)
        server.count(ok)
        return ok


def make_server(host: str = "127.0.0.1", port: int = 0,
                store: Optional[ArtifactStore] = None,
                allow_file_requests: bool = False,
                queue_depth: int = 16,
                max_active: Optional[int] = None,
                deadline_cap: Optional[float] = None,
                allow_streaming: bool = True) -> ReproServer:
    """Bind (but do not run) a daemon; ``port=0`` picks a free port.

    The caller owns the lifecycle: ``serve_forever()`` on any thread,
    ``shutdown()`` + ``server_close()`` to stop.  Used directly by the
    concurrency tests.
    """
    return ReproServer((host, port), store=store,
                       allow_file_requests=allow_file_requests,
                       queue_depth=queue_depth, max_active=max_active,
                       deadline_cap=deadline_cap,
                       allow_streaming=allow_streaming)


def serve(host: str = "127.0.0.1", port: int = 8451,
          store_dir: Optional[str] = None,
          allow_file_requests: bool = False,
          queue_depth: int = 16,
          max_active: Optional[int] = None,
          deadline_cap: Optional[float] = None,
          allow_streaming: bool = True,
          announce=print) -> None:
    """Run the daemon until interrupted (the ``repro serve`` command)."""
    store = ArtifactStore(root=store_dir)
    server = make_server(host, port, store=store,
                         allow_file_requests=allow_file_requests,
                         queue_depth=queue_depth, max_active=max_active,
                         deadline_cap=deadline_cap,
                         allow_streaming=allow_streaming)
    bound_host, bound_port = server.server_address[:2]
    announce(f"repro serve: listening on http://{bound_host}:{bound_port}"
             f" (schema_version {SCHEMA_VERSION}, store: "
             f"{store_dir or 'in-memory'}, "
             f"{server.admission.max_active} slots x "
             f"{server.admission.queue_depth} queued)")
    announce("POST /v1/execute /v1/stream /v1/cancel | "
             "GET /v1/health /v1/kinds /v1/metrics -- Ctrl-C to stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
