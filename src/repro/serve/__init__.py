"""``repro.serve`` -- the production serving tier.

Wraps the one :func:`repro.api.execute` entrypoint in a daemon built
for sustained traffic: streamed event protocol
(:mod:`~repro.serve.streaming`), bounded two-class admission control
(:mod:`~repro.serve.admission`), cooperative cancellation
(:mod:`~repro.serve.cancel`) and a scrapeable metrics registry
(:mod:`~repro.serve.metrics`).  :mod:`repro.api.server` remains as a
thin compatibility shim over :mod:`~repro.serve.daemon`.

The serving tier never changes *what* a request computes -- envelopes
stay byte-identical to one-shot CLI runs (streams terminate with the
exact same bytes); it only changes *when* work runs and what happens
to work nobody is waiting for anymore.
"""

from .admission import AdmissionController
from .cancel import CancelToken
from .daemon import ReproServer, make_server, serve
from .metrics import Metrics, histogram_quantile
from .streaming import EventStreamWriter

__all__ = [
    "AdmissionController", "CancelToken", "EventStreamWriter",
    "Metrics", "histogram_quantile",
    "ReproServer", "make_server", "serve",
]
