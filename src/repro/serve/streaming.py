"""Wire encodings for the streamed event protocol.

The daemon streams :mod:`repro.api.events` objects live while
``execute`` runs, then terminates the stream with the request's full
response envelope.  Two formats:

**NDJSON** (``application/x-ndjson``, the default).  Each event is one
compact JSON line (sorted keys).  The terminal record is *two-part* so
the canonical-bytes contract survives streaming:

1. a framing line ``{"bytes": N, "event": "result"}``
2. exactly ``N`` raw bytes -- the response envelope precisely as
   ``POST /v1/execute`` (and ``repro ... --json``) would have written
   it, ``indent=1`` newline-terminated and all.

A client slices those N bytes out and has the byte-identical envelope;
CI ``cmp``'s them against a one-shot run.

**SSE** (``text/event-stream``).  Standard ``event:``/``data:`` blocks;
the terminal block carries the envelope as compact JSON on one data
line (SSE is line-oriented, so the envelope's multi-line form cannot be
framed verbatim -- byte identity is an NDJSON-only guarantee, the SSE
envelope is canonically *equal* but re-serialized).

:class:`EventStreamWriter` is the ``events`` sink handed to
``execute``: it serializes events straight onto the client socket.  A
write that times out or fails flips the writer into a failed state,
cancels the request's token (``client_stalled`` / ``client_disconnect``)
and swallows everything after -- a vanished reader must stop the
computation, never wedge the worker thread.
"""

from __future__ import annotations

import json
import socket
from typing import IO, Optional

from ..api.events import Event, ResultEvent
from .cancel import (
    REASON_CLIENT_DISCONNECT,
    REASON_CLIENT_STALLED,
    CancelToken,
)

__all__ = ["EventStreamWriter", "encode_event", "encode_terminal",
           "NDJSON_CONTENT_TYPE", "SSE_CONTENT_TYPE", "FORMATS"]

NDJSON_CONTENT_TYPE = "application/x-ndjson"
SSE_CONTENT_TYPE = "text/event-stream"
FORMATS = ("ndjson", "sse")


def _compact(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def encode_event(event: Event, fmt: str) -> bytes:
    """One non-terminal event in its wire form."""
    payload = event.to_dict()
    if fmt == "sse":
        return (f"event: {event.KIND}\n"
                f"data: {_compact(payload)}\n\n").encode()
    return (_compact(payload) + "\n").encode()


def encode_terminal(envelope_bytes: bytes, fmt: str) -> bytes:
    """The stream terminator carrying the response envelope.

    ``envelope_bytes`` must be exactly ``Response.to_json().encode()``;
    NDJSON embeds them verbatim behind a byte-count framing line.
    """
    if fmt == "sse":
        envelope = json.loads(envelope_bytes.decode())
        return (f"event: result\n"
                f"data: {_compact(envelope)}\n\n").encode()
    frame = _compact({"event": "result",
                      "bytes": len(envelope_bytes)}) + "\n"
    return frame.encode() + envelope_bytes


class EventStreamWriter:
    """An ``execute`` event sink writing one client's stream.

    Not thread-safe by design: events for one request are emitted from
    the one handler thread executing it.  ``ResultEvent`` is skipped --
    the terminal envelope is written by :meth:`finish` from the
    response object itself, which is what guarantees byte identity.
    """

    def __init__(self, wfile: IO[bytes], fmt: str = "ndjson",
                 token: Optional[CancelToken] = None):
        if fmt not in FORMATS:
            raise ValueError(f"format must be one of {FORMATS}, "
                             f"got {fmt!r}")
        self.wfile = wfile
        self.fmt = fmt
        self.token = token
        self.failed = False
        self.events_written = 0

    # The sink contract: called with each typed event, exceptions
    # swallowed upstream by emit() -- so failure is recorded as state
    # here, not signalled by raising.
    def __call__(self, event: Event) -> None:
        if isinstance(event, ResultEvent):
            return
        if self._write(encode_event(event, self.fmt)):
            self.events_written += 1

    def finish(self, envelope_bytes: bytes) -> bool:
        """Write the terminal record; returns False if the client is
        gone (the caller then counts the request as failed)."""
        return self._write(encode_terminal(envelope_bytes, self.fmt))

    # ------------------------------------------------------------------
    def _write(self, data: bytes) -> bool:
        if self.failed:
            return False
        try:
            self.wfile.write(data)
            self.wfile.flush()
        except socket.timeout:
            self._fail(REASON_CLIENT_STALLED)
            return False
        except (OSError, ValueError):
            # ValueError: write to a closed SocketIO after shutdown.
            self._fail(REASON_CLIENT_DISCONNECT)
            return False
        return True

    def _fail(self, reason: str) -> None:
        self.failed = True
        if self.token is not None:
            self.token.cancel(reason)
