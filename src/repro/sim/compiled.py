"""Compiled levelized simulation backend.

:class:`CompiledCircuit` lowers a frozen :class:`~repro.circuit.netlist.
Circuit` into flat, topo-ordered arrays -- an integer-opcode gate
schedule with contiguous fanin id tuples plus PI/FF/PO maps -- and then
*compiles* that schedule to straight-line Python (the classic
"compiled-code simulation" move of ATPG systems): one generated
statement per gate, ``exec``-ed once and cached, so the hot loops carry
no per-gate dispatch, no dict lookups and no tuple traffic.  Lowering is
cached process-wide, keyed on :meth:`Circuit.fingerprint`, so repeated
simulator construction over the same netlist is free.

Two evaluators ride on the lowered form:

* :meth:`CompiledCircuit.simulate_patterns` -- packed binary pattern
  simulation, bit-for-bit compatible with
  :func:`repro.sim.parallel.simulate_patterns` (used for learning
  signatures);
* :class:`CompiledFaultSimulator` -- two-plane ``(m0, m1)``
  three-valued, fault-parallel sequential simulation with per-batch
  fault dropping, detection-set compatible with
  :class:`repro.sim.faultsim.FaultSimulator`.

The reference implementations stay in :mod:`repro.sim.parallel` /
:mod:`repro.sim.faultsim`; the differential test harness pits the two
against each other (``tests/test_backend_differential.py``).

Caveat: the cache assumes circuits are not mutated after ``freeze()``.
A circuit edited in place after compilation must be re-frozen (which
changes its fingerprint via the rewired fanins) before re-simulation.

The cache is also *per-process* state: generated kernels are never
pickled across processes.  A spawn-started worker of a parallel suite
run begins cold; a fork-started worker inherits only what the parent
had compiled before the fork.  Either way each worker warms its own
cache (see :func:`warm_cache`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import GateType, ONE, X, ZERO
from ..circuit.netlist import Circuit
from .faultsim import FaultSimulator

#: Selectable simulation backends (`ATPGConfig.sim_backend`, CLI
#: ``--backend``).  "array" lives in :mod:`repro.sim.array_backend`
#: (whole-circuit vectorized kernels, numpy-accelerated when the
#: ``repro[fast]`` extra is installed, pure-bigint otherwise).
SIM_BACKENDS = ("reference", "compiled", "array")

#: Integer opcodes of the lowered gate schedule.
OP_AND, OP_NAND, OP_OR, OP_NOR, OP_NOT, OP_BUF, OP_XOR, OP_XNOR, \
    OP_TIE0, OP_TIE1 = range(10)

_OPCODE_OF = {
    GateType.AND: OP_AND, GateType.NAND: OP_NAND,
    GateType.OR: OP_OR, GateType.NOR: OP_NOR,
    GateType.NOT: OP_NOT, GateType.BUF: OP_BUF,
    GateType.XOR: OP_XOR, GateType.XNOR: OP_XNOR,
    GateType.TIE0: OP_TIE0, GateType.TIE1: OP_TIE1,
}

#: Generated statements per kernel function; very large circuits are
#: split into several functions called in sequence so no single code
#: object grows pathological.
_CHUNK_GATES = 4000


def _join(template: str, operator: str, fanins: Sequence[int]) -> str:
    return operator.join(template.format(f) for f in fanins)


def _pattern_lines(op: int, nid: int, fis: Tuple[int, ...]) -> List[str]:
    """Statements computing the packed binary mask of one gate."""
    if op == OP_AND:
        return [f" v[{nid}] = " + _join("v[{}]", " & ", fis)]
    if op == OP_NAND:
        return [f" v[{nid}] = full ^ (" + _join("v[{}]", " & ", fis) + ")"]
    if op == OP_OR:
        return [f" v[{nid}] = " + _join("v[{}]", " | ", fis)]
    if op == OP_NOR:
        return [f" v[{nid}] = full ^ (" + _join("v[{}]", " | ", fis) + ")"]
    if op == OP_NOT:
        return [f" v[{nid}] = full ^ v[{fis[0]}]"]
    if op == OP_BUF:
        return [f" v[{nid}] = v[{fis[0]}]"]
    if op == OP_XOR:
        return [f" v[{nid}] = " + _join("v[{}]", " ^ ", fis)]
    if op == OP_XNOR:
        return [f" v[{nid}] = full ^ (" + _join("v[{}]", " ^ ", fis) + ")"]
    if op == OP_TIE0:
        return [f" v[{nid}] = 0"]
    if op == OP_TIE1:
        return [f" v[{nid}] = full"]
    raise AssertionError(op)


def _plane_lines(op: int, nid: int, fis: Tuple[int, ...]) -> List[str]:
    """Statements computing the two-plane (m0, m1) value of one gate.

    Planes live in local variables ``a<nid>`` (the 0-plane) and
    ``b<nid>`` (the 1-plane) so the generated code runs on LOAD_FAST /
    STORE_FAST instead of list subscripts.  Bit semantics match
    :func:`repro.sim.faultsim._eval_planes`: bit set in the 0-plane
    means that machine sees 0, in the 1-plane 1, neither means X.
    """
    zeros = _join("a{}", " | ", fis)    # some fanin is 0
    ones = _join("b{}", " & ", fis)     # every fanin is 1
    anyone = _join("b{}", " | ", fis)   # some fanin is 1
    allzero = _join("a{}", " & ", fis)  # every fanin is 0
    if op == OP_AND:
        return [f" a{nid} = {zeros}", f" b{nid} = {ones}"]
    if op == OP_NAND:
        return [f" a{nid} = {ones}", f" b{nid} = {zeros}"]
    if op == OP_OR:
        return [f" a{nid} = {allzero}", f" b{nid} = {anyone}"]
    if op == OP_NOR:
        return [f" a{nid} = {anyone}", f" b{nid} = {allzero}"]
    if op == OP_NOT:
        return [f" a{nid} = b{fis[0]}", f" b{nid} = a{fis[0]}"]
    if op == OP_BUF:
        return [f" a{nid} = a{fis[0]}", f" b{nid} = b{fis[0]}"]
    if op in (OP_XOR, OP_XNOR):
        # Pairwise 3-valued XOR chain; X (neither bit) stays X.
        lines = [f" t0 = a{fis[0]}", f" t1 = b{fis[0]}"]
        for f in fis[1:]:
            lines.append(f" t0, t1 = (t0 & a{f}) | (t1 & b{f}), "
                         f"(t0 & b{f}) | (t1 & a{f})")
        if op == OP_XNOR:
            lines += [f" a{nid} = t1", f" b{nid} = t0"]
        else:
            lines += [f" a{nid} = t0", f" b{nid} = t1"]
        return lines
    if op == OP_TIE0:
        return [f" a{nid} = full", f" b{nid} = 0"]
    if op == OP_TIE1:
        return [f" a{nid} = 0", f" b{nid} = full"]
    raise AssertionError(op)


def _compile_pattern_kernels(schedule) -> List[Callable]:
    """exec straight-line packed-binary kernels over the gate schedule."""
    kernels: List[Callable] = []
    for start in range(0, len(schedule), _CHUNK_GATES):
        chunk = schedule[start:start + _CHUNK_GATES]
        name = f"_pattern_kernel_{start}"
        lines = [f"def {name}(v, full):"]
        for op, nid, fis in chunk:
            lines.extend(_pattern_lines(op, nid, fis))
        if len(lines) == 1:
            lines.append(" pass")
        namespace: Dict[str, object] = {}
        exec(compile("\n".join(lines), "<repro.sim.compiled:pattern>",
                     "exec"), namespace)
        kernels.append(namespace[name])
    return kernels


def _compile_plane_kernels(schedule, keep: Set[int],
                           trace: bool) -> List[Callable]:
    """exec straight-line two-plane kernels over the gate schedule.

    Each gate is followed by ``if nid in hot: fix(nid, planes, fanin
    planes...)`` so a fault simulator can patch values mid-schedule; the
    clean path pays one set-membership test per gate.  Planes are local
    variables; chunk preambles load what a chunk reads but does not
    compute from the ``m0``/``m1`` arrays, epilogues store what later
    chunks or the caller (``keep``: POs, FF data inputs) need.  With
    ``trace`` every computed plane is stored back -- the diagnostic
    variant behind the ``on_frame`` hook.
    """
    chunks = [schedule[start:start + _CHUNK_GATES]
              for start in range(0, len(schedule), _CHUNK_GATES)]
    read_by_later: List[Set[int]] = [set() for _ in chunks]
    seen: Set[int] = set()
    for index in range(len(chunks) - 1, -1, -1):
        read_by_later[index] = set(seen)
        for _op, _nid, fis in chunks[index]:
            seen.update(fis)
    kernels: List[Callable] = []
    for index, chunk in enumerate(chunks):
        computed = {nid for _op, nid, _f in chunk}
        reads = {f for _op, _nid, fis in chunk for f in fis}
        name = f"_plane_kernel_{index}"
        lines = [f"def {name}(m0, m1, full, hot, fix):"]
        for nid in sorted(reads - computed):
            lines.append(f" a{nid} = m0[{nid}]; b{nid} = m1[{nid}]")
        for op, nid, fis in chunk:
            lines.extend(_plane_lines(op, nid, fis))
            fanin_args = "".join(f", a{f}, b{f}" for f in fis)
            lines.append(f" if {nid} in hot: a{nid}, b{nid} = "
                         f"fix({nid}, a{nid}, b{nid}{fanin_args})")
        stores = computed if trace else (
            computed & (keep | read_by_later[index]))
        for nid in sorted(stores):
            lines.append(f" m0[{nid}] = a{nid}; m1[{nid}] = b{nid}")
        if len(lines) == 1:
            lines.append(" pass")
        namespace: Dict[str, object] = {}
        exec(compile("\n".join(lines), "<repro.sim.compiled:plane>",
                     "exec"), namespace)
        kernels.append(namespace[name])
    return kernels


class CompiledCircuit:
    """Flat lowered form of one frozen circuit plus its compiled kernels.

    Build via :func:`compile_circuit` (cached); direct construction
    always re-lowers and re-compiles.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.fingerprint = circuit.fingerprint()
        self.n = len(circuit.nodes)
        #: Topo-ordered gate schedule: (opcode, nid, fanin ids).
        self.schedule: List[Tuple[int, int, Tuple[int, ...]]] = [
            (_OPCODE_OF[circuit.nodes[nid].gate_type], nid,
             tuple(circuit.nodes[nid].fanins))
            for nid in circuit.topo_order]
        #: Opcode per node id (None for PIs and sequential elements).
        self.opcode: List[Optional[int]] = [None] * self.n
        for op, nid, _fis in self.schedule:
            self.opcode[nid] = op
        #: (nid, name) of every primary input, in circuit order.
        self.input_pairs: Tuple[Tuple[int, str], ...] = tuple(
            (nid, circuit.nodes[nid].name) for nid in circuit.inputs)
        self.inputs: Tuple[int, ...] = tuple(circuit.inputs)
        self.ffs: Tuple[int, ...] = tuple(circuit.ffs)
        #: D-input node id of each FF, aligned with :attr:`ffs`.
        self.ff_data: Tuple[int, ...] = tuple(
            circuit.nodes[fid].fanins[0] for fid in circuit.ffs)
        self.outputs: Tuple[int, ...] = tuple(circuit.outputs)
        scheduled = {nid for _op, nid, _f in self.schedule}
        self.gate_nids: Tuple[int, ...] = tuple(
            nid for _op, nid, _f in self.schedule)
        #: PI/FF sources the schedule actually reads (missing ones must
        #: raise ``KeyError``, like the reference pattern simulator).
        self.required_sources: Tuple[int, ...] = tuple(sorted(
            {f for _op, _nid, fis in self.schedule for f in fis}
            - scheduled))
        #: Planes the fault simulator reads back out of a frame.
        self._keep = set(self.outputs) | set(self.ff_data)
        self._pattern_kernels = _compile_pattern_kernels(self.schedule)
        self._plane_kernels = _compile_plane_kernels(
            self.schedule, self._keep, trace=False)
        self._plane_kernels_traced: Optional[List[Callable]] = None

    # ------------------------------------------------------------------
    def simulate_patterns(self, source_masks: Dict[int, int],
                          width: int) -> Dict[int, int]:
        """Packed binary pattern evaluation of all combinational gates.

        Drop-in for :func:`repro.sim.parallel.simulate_patterns`:
        identical masks, identical ``KeyError`` on a missing source.
        """
        full = (1 << width) - 1
        v = [0] * self.n
        for nid in self.required_sources:
            v[nid] = source_masks[nid]
        for kernel in self._pattern_kernels:
            kernel(v, full)
        masks = dict(source_masks)
        for nid in self.gate_nids:
            masks[nid] = v[nid]
        return masks

    def eval_planes(self, m0: List[int], m1: List[int], full: int,
                    hot=frozenset(), fix=None, trace: bool = False
                    ) -> None:
        """Run the two-plane kernel over preloaded PI/FF planes.

        ``m0``/``m1`` are length-``n`` lists holding PI and FF planes;
        ``hot`` names gates whose value must be patched mid-schedule by
        ``fix(nid, plane0, plane1, *fanin_planes)`` (fault injection).
        The lean kernels store back only primary-output and FF-data
        planes; ``trace`` switches to variants storing every node's
        planes (diagnostics, property tests).
        """
        if trace:
            if self._plane_kernels_traced is None:
                self._plane_kernels_traced = _compile_plane_kernels(
                    self.schedule, self._keep, trace=True)
            kernels = self._plane_kernels_traced
        else:
            kernels = self._plane_kernels
        for kernel in kernels:
            kernel(m0, m1, full, hot, fix)


# ----------------------------------------------------------------------
# process-wide lowering cache
# ----------------------------------------------------------------------
_CACHE: "OrderedDict[str, CompiledCircuit]" = OrderedDict()
_CACHE_CAP = 256
#: Serializes cache access: the ``repro serve`` daemon compiles from
#: concurrent request threads, and without the lock two threads could
#: exec-compile the same circuit twice (wasted work) or interleave the
#: OrderedDict LRU bookkeeping mid-update.
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Lower (or fetch) the compiled form, keyed on the fingerprint.

    Thread-safe: concurrent callers for the same circuit compile it
    exactly once and share the kernels (they are stateless after
    construction; per-run state lives in the simulator objects).
    """
    global _CACHE_HITS, _CACHE_MISSES
    key = circuit.fingerprint()
    with _CACHE_LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _CACHE.move_to_end(key)
            _CACHE_HITS += 1
            return hit
        # Compile inside the lock: correctness does not require it, but
        # a duplicate exec-compile is pure waste and compilation is
        # milliseconds.
        compiled = CompiledCircuit(circuit)
        _CACHE[key] = compiled
        _CACHE_MISSES += 1
        while len(_CACHE) > _CACHE_CAP:
            _CACHE.popitem(last=False)
        return compiled


def compile_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of this process's kernel cache."""
    with _CACHE_LOCK:
        return {"entries": len(_CACHE), "hits": _CACHE_HITS,
                "misses": _CACHE_MISSES}


def clear_compile_cache() -> None:
    """Drop every cached lowering (tests, memory pressure)."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def warm_cache(circuit: Circuit, backend: str = "compiled"
               ) -> CompiledCircuit:
    """Pre-compile ``circuit``'s kernels in *this* process.

    The lowering cache is plain module state and therefore per-process:
    the exec-generated kernels are never pickled across a suite pool
    (:mod:`repro.flow.parallel_suite`).  A spawn-started worker begins
    with an empty cache; a fork-started worker inherits only what the
    parent had compiled before the pool started.  Workers call this
    once per assigned circuit so compilation happens up front rather
    than inside the first pipeline stage; in an already-warm process it
    is a cache hit and free.

    ``backend='array'`` additionally builds the array lowering and the
    resident pattern engine (on the numpy substrate), so array suite
    workers don't pay the grouped lowering inside their first stage
    either; every other backend value just warms the compiled kernels
    the array backend sits on anyway.
    """
    cc = compile_circuit(circuit)
    if backend == "array":
        from . import array_backend
        array_backend.array_form(circuit)
        if array_backend.HAVE_NUMPY:
            array_backend.pattern_engine(circuit)
    return cc


# ----------------------------------------------------------------------
# fault-parallel sequential simulation
# ----------------------------------------------------------------------
class CompiledFaultSimulator:
    """Bit-parallel sequential fault simulator over the compiled form.

    Same contract as :class:`repro.sim.faultsim.FaultSimulator` -- same
    detection sets on any (sequence, faults) input -- plus per-batch
    fault dropping: a batch whose machines are all detected stops
    simulating remaining frames.
    """

    def __init__(self, circuit: Circuit, width: int = 128):
        if width < 1:
            raise ValueError(f"word width must be >= 1, got {width}")
        self.circuit = circuit
        self.width = width
        self.compiled = compile_circuit(circuit)

    # ------------------------------------------------------------------
    def detected(self, sequence: Sequence[Dict[str, int]],
                 faults: Sequence) -> Set[int]:
        """Indices (into ``faults``) detected by ``sequence``."""
        sequence = list(sequence)
        if not faults or not sequence:
            return set()
        good_frames = self._good_output_frames(sequence)
        hit: Set[int] = set()
        for start in range(0, len(faults), self.width):
            batch = list(faults[start:start + self.width])
            for local in self.run_batch(sequence, batch, good_frames):
                hit.add(start + local)
        return hit

    # ------------------------------------------------------------------
    def _good_output_frames(self, sequence: Sequence[Dict[str, int]]
                            ) -> List[List[int]]:
        """Fault-free 3-valued output values, one list per frame."""
        cc = self.compiled
        m0 = [0] * cc.n
        m1 = [0] * cc.n
        s0 = [0] * len(cc.ffs)
        s1 = [0] * len(cc.ffs)
        frames: List[List[int]] = []
        for vector in sequence:
            get = vector.get
            for nid, name in cc.input_pairs:
                value = get(name, X)
                if value == ZERO:
                    m0[nid], m1[nid] = 1, 0
                elif value == ONE:
                    m0[nid], m1[nid] = 0, 1
                else:
                    m0[nid], m1[nid] = 0, 0
            for j, fid in enumerate(cc.ffs):
                m0[fid], m1[fid] = s0[j], s1[j]
            cc.eval_planes(m0, m1, 1)
            frames.append([ZERO if m0[oid] else (ONE if m1[oid] else X)
                           for oid in cc.outputs])
            for j, src in enumerate(cc.ff_data):
                s0[j], s1[j] = m0[src], m1[src]
        return frames

    # ------------------------------------------------------------------
    def run_batch(self, sequence: Sequence[Dict[str, int]],
                  batch: List, good_frames: List[List[int]],
                  on_frame=None) -> Set[int]:
        """Simulate one packed batch; returns detected local indices.

        ``on_frame(frame, m0, m1, detected_mask)`` is a diagnostic hook
        (property tests assert plane invariants through it); it receives
        snapshots after the frame's detection pass.
        """
        cc = self.compiled
        width = len(batch)
        full = (1 << width) - 1
        # Aggregate forces: each machine carries exactly one fault, so a
        # bit lands in at most one of (zero-mask, one-mask) per node and
        # pin faults fold into per-(gate, pin) bit groups.
        out_zero: Dict[int, int] = {}
        out_one: Dict[int, int] = {}
        pin_bits: Dict[Tuple[int, int], List[int]] = {}
        for i, fault in enumerate(batch):
            if fault.pin is None:
                target = out_zero if fault.value == ZERO else out_one
                target[fault.node] = target.get(fault.node, 0) | (1 << i)
            else:
                group = pin_bits.setdefault((fault.node, fault.pin),
                                            [0, 0])
                group[0 if fault.value == ZERO else 1] |= 1 << i
        #: gate nid -> [(pin, zero bits, one bits, all bits), ...]
        pin_groups: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for (nid, pin), (z, o) in pin_bits.items():
            pin_groups.setdefault(nid, []).append((pin, z, o, z | o))
        source_set = set(cc.inputs) | set(cc.ffs)
        src_forces = [(nid, out_zero.get(nid, 0), out_one.get(nid, 0))
                      for nid in sorted(
                          (set(out_zero) | set(out_one)) & source_set)]
        # FF pin faults act at the frame boundary (the D input is stuck).
        ff_forces: Dict[int, Tuple[int, int]] = {}
        for fid in cc.ffs:
            groups = pin_groups.pop(fid, None)
            if groups is not None:
                z = o = 0
                for _pin, gz, go, _all in groups:
                    z |= gz
                    o |= go
                ff_forces[fid] = (z, o)
        # Mid-schedule hooks: gates carrying an output or a pin fault.
        hot = frozenset(
            ((set(out_zero) | set(out_one)) - source_set)
            | set(pin_groups))
        m0 = [0] * cc.n
        m1 = [0] * cc.n

        opcodes = cc.opcode

        def fix(nid: int, c0: int, c1: int, *fp: int) -> Tuple[int, int]:
            """Patch a just-evaluated gate for its faulty machines.

            ``(c0, c1)`` is the clean value, ``fp`` the fanin planes
            interleaved ``(a0, b0, a1, b1, ...)``.  Pin faults
            re-evaluate the gate bit-parallel with the stuck pin's plane
            patched -- inlined per opcode family -- then splice only the
            faulty machines' bits: column-for-column what the reference
            backend derives one machine at a time.
            """
            groups = pin_groups.get(nid)
            if groups is not None:
                op = opcodes[nid]
                end = len(fp)
                for pin, z, o, bits in groups:
                    keep = ~(z | o)
                    pi = pin << 1
                    if op < 4:  # AND / NAND / OR / NOR
                        and_like = op < 2
                        r0 = 0 if and_like else full
                        r1 = full if and_like else 0
                        for i in range(0, end, 2):
                            f0 = fp[i]
                            f1 = fp[i + 1]
                            if i == pi:
                                f0 = (f0 & keep) | z
                                f1 = (f1 & keep) | o
                            if and_like:
                                r0 |= f0
                                r1 &= f1
                            else:
                                r0 &= f0
                                r1 |= f1
                        if op == OP_NAND or op == OP_NOR:
                            r0, r1 = r1, r0
                    elif op < 6:  # NOT / BUF
                        r0 = (fp[0] & keep) | z
                        r1 = (fp[1] & keep) | o
                        if op == OP_NOT:
                            r0, r1 = r1, r0
                    else:  # XOR / XNOR (TIE gates carry no pin faults)
                        r0, r1 = full, 0
                        for i in range(0, end, 2):
                            f0 = fp[i]
                            f1 = fp[i + 1]
                            if i == pi:
                                f0 = (f0 & keep) | z
                                f1 = (f1 & keep) | o
                            r0, r1 = (r0 & f0) | (r1 & f1), \
                                (r0 & f1) | (r1 & f0)
                        if op == OP_XNOR:
                            r0, r1 = r1, r0
                    c0 = (c0 & ~bits) | (r0 & bits)
                    c1 = (c1 & ~bits) | (r1 & bits)
            z = out_zero.get(nid)
            o = out_one.get(nid)
            if z is not None or o is not None:
                z = z or 0
                o = o or 0
                keep = ~(z | o)
                c0 = (c0 & keep) | z
                c1 = (c1 & keep) | o
            return c0, c1

        s0 = [0] * len(cc.ffs)
        s1 = [0] * len(cc.ffs)
        detected: Set[int] = set()
        detected_mask = 0
        for frame, vector in enumerate(sequence):
            get = vector.get
            for nid, name in cc.input_pairs:
                value = get(name, X)
                if value == ZERO:
                    m0[nid], m1[nid] = full, 0
                elif value == ONE:
                    m0[nid], m1[nid] = 0, full
                else:
                    m0[nid], m1[nid] = 0, 0
            for j, fid in enumerate(cc.ffs):
                m0[fid], m1[fid] = s0[j], s1[j]
            # Faults on PIs / FF outputs apply before gate evaluation.
            for nid, z, o in src_forces:
                keep = ~(z | o)
                m0[nid] = (m0[nid] & keep) | z
                m1[nid] = (m1[nid] & keep) | o
            cc.eval_planes(m0, m1, full, hot, fix,
                           trace=on_frame is not None)
            # Detection at primary outputs against the good machine.
            good = good_frames[frame]
            for k, oid in enumerate(cc.outputs):
                gv = good[k]
                if gv == X:
                    continue
                diff = (m1[oid] if gv == ZERO else m0[oid]) & ~detected_mask
                if diff:
                    detected_mask |= diff
                    while diff:
                        low = diff & -diff
                        detected.add(low.bit_length() - 1)
                        diff ^= low
            if on_frame is not None:
                on_frame(frame, list(m0), list(m1), detected_mask)
            if detected_mask == full:
                # Per-batch fault dropping: every machine already showed
                # its fault; later frames cannot change the verdict.
                break
            # Frame boundary: FFs capture their (possibly stuck) D input.
            for j, fid in enumerate(cc.ffs):
                src = cc.ff_data[j]
                a0, a1 = m0[src], m1[src]
                force = ff_forces.get(fid)
                if force is not None:
                    z, o = force
                    keep = ~(z | o)
                    a0 = (a0 & keep) | z
                    a1 = (a1 & keep) | o
                s0[j], s1[j] = a0, a1
        return detected


def make_fault_simulator(circuit: Circuit, width: Optional[int] = None,
                         backend: str = "compiled"):
    """Factory over :data:`SIM_BACKENDS`; all share one contract.

    ``width=None`` picks the backend's default batch width (128 for the
    reference and compiled engines; the array backend chooses by
    substrate -- wide for numpy, 128 for the bigint fallback).  Safe
    because detection sets are width-independent: each fault occupies
    its own machine, so batch packing never changes a verdict.
    """
    if backend == "compiled":
        return CompiledFaultSimulator(
            circuit, width=128 if width is None else width)
    if backend == "reference":
        return FaultSimulator(
            circuit, width=128 if width is None else width)
    if backend == "array":
        # Imported lazily: array_backend builds on this module.
        from .array_backend import ArrayFaultSimulator
        return ArrayFaultSimulator(circuit, width=width)
    raise ValueError(
        f"unknown sim backend {backend!r}; expected one of {SIM_BACKENDS}")
