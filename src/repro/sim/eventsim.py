"""Event-driven three-valued simulation across time frames.

This is the learning engine's workhorse (paper section 3): values are
injected on selected nodes at selected frames and propagated *forward
only*, event-driven, through the combinational logic and across sequential
elements into later frames.  Everything starts at X, so only the cone
actually reached by known values is ever touched -- that sparsity is what
makes the technique "fast" and it is preserved here.

Real-circuit rules (paper section 3.3) are enforced at the frame boundary:

* no propagation across multi-port latches,
* no propagation across FFs with both set and reset unconstrained,
* with one unconstrained line, only the value the line would itself
  produce may propagate (set -> only 1, reset -> only 0),
* an optional ``active_ffs`` set restricts propagation to one
  clock-domain class (learning runs once per class).

A :class:`Coupling` carries knowledge from earlier learning phases: tied
gates become per-frame constants and combinationally equivalent gates copy
values to each other, exactly how the paper's multiple-node phase benefits
from phase-one results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..circuit.gates import GateType, ONE, X, ZERO, eval_gate, inv
from ..circuit.netlist import Circuit

#: An assignment request: node id -> value, at some frame.
Assignment = Tuple[int, int]


@dataclass
class Conflict:
    """A known value contradicted during propagation."""

    nid: int
    frame: int
    existing: int
    attempted: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"conflict on node {self.nid} at frame {self.frame}: "
                f"{self.existing} vs {self.attempted}")


@dataclass
class Coupling:
    """Knowledge injected into simulation from earlier learning phases.

    ``ties`` maps node id -> constant value (combinational ties).
    ``equiv`` maps node id -> (class id, polarity); two nodes with the
    same class id always carry equal (same polarity) or complementary
    (different polarity) values.
    """

    ties: Dict[int, int] = field(default_factory=dict)
    equiv: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    _members: Dict[int, List[int]] = field(default_factory=dict)

    def finalize(self) -> "Coupling":
        """Index equivalence-class members for fast lookup."""
        self._members = {}
        for nid, (cls, _pol) in self.equiv.items():
            self._members.setdefault(cls, []).append(nid)
        return self

    def classmates(self, nid: int) -> List[Tuple[int, int]]:
        """(other node, relative polarity) pairs for ``nid``'s class."""
        if nid not in self.equiv:
            return []
        cls, pol = self.equiv[nid]
        out = []
        for other in self._members.get(cls, ()):
            if other != nid:
                out.append((other, pol ^ self.equiv[other][1]))
        return out


@dataclass
class InjectionResult:
    """Outcome of one forward-injection simulation."""

    #: Known values per frame, node id -> value.  Includes propagated FF
    #: state and implied gates; includes injected values too (see
    #: ``injected`` to filter them out).
    frames: List[Dict[int, int]]
    #: (frame, nid) pairs that were externally injected.
    injected: Set[Tuple[int, int]]
    #: First contradiction met, or None.
    conflict: Optional[Conflict]
    #: True when simulation stopped because the implied state repeated.
    repeated: bool

    def implied(self, frame: int) -> Dict[int, int]:
        """Values at ``frame`` that were derived, not injected."""
        return {nid: v for nid, v in self.frames[frame].items()
                if (frame, nid) not in self.injected}

    def num_frames(self) -> int:
        return len(self.frames)


class FrameSimulator:
    """Forward event-driven 3-valued simulator with value injection."""

    def __init__(self, circuit: Circuit, coupling: Optional[Coupling] = None,
                 active_ffs: Optional[Set[int]] = None):
        self.circuit = circuit
        self.coupling = (coupling or Coupling()).finalize()
        self.active_ffs = active_ffs
        self._constants = self._build_constants()

    # ------------------------------------------------------------------
    def _build_constants(self) -> Dict[int, int]:
        consts = dict(self.coupling.ties)
        for node in self.circuit.nodes:
            if node.gate_type is GateType.TIE0:
                consts[node.nid] = ZERO
            elif node.gate_type is GateType.TIE1:
                consts[node.nid] = ONE
        return consts

    def _transfer_ok(self, ff_node, value: int) -> bool:
        """May ``value`` propagate across this sequential element?"""
        if self.active_ffs is not None and ff_node.nid not in self.active_ffs:
            return False
        if ff_node.num_ports > 1:
            return False
        set_u = ff_node.set_kind == "unconstrained"
        reset_u = ff_node.reset_kind == "unconstrained"
        if set_u and reset_u:
            return False
        if set_u:
            return value == ONE
        if reset_u:
            return value == ZERO
        return True

    # ------------------------------------------------------------------
    def run(self, injections: Dict[int, Iterable[Assignment]],
            max_frames: int = 50,
            stop_on_repeat: bool = True) -> InjectionResult:
        """Simulate forward with ``injections[frame] = [(nid, value), ...]``.

        Stops at ``max_frames``, on a conflict, or (like the paper) when
        the implied FF state repeats between consecutive frames and no
        later injections are pending.
        """
        circuit = self.circuit
        frames: List[Dict[int, int]] = []
        injected: Set[Tuple[int, int]] = set()
        conflict: Optional[Conflict] = None
        repeated = False
        last_injection_frame = max(injections) if injections else 0
        state: Dict[int, int] = {}
        frame = 0
        while frame < max_frames:
            values: Dict[int, int] = {}
            frames.append(values)
            queue: deque = deque()

            def _set(nid: int, value: int) -> bool:
                """Record a known value; returns False on conflict."""
                nonlocal conflict
                existing = values.get(nid, self._constants.get(nid, X))
                if existing != X:
                    if existing != value:
                        conflict = Conflict(nid, frame, existing, value)
                        return False
                    return True
                values[nid] = value
                queue.append(nid)
                for other, pol in self.coupling.classmates(nid):
                    if not _set(other, value ^ pol if value != X else X):
                        return False
                return True

            ok = True
            # 1. frame-constant ties seed propagation
            for nid, value in self._constants.items():
                values[nid] = value
                queue.append(nid)
            # 2. state carried over from the previous frame
            for nid, value in state.items():
                if not _set(nid, value):
                    ok = False
                    break
            # 3. external injections for this frame
            if ok:
                for nid, value in injections.get(frame, ()):
                    injected.add((frame, nid))
                    if not _set(nid, value):
                        ok = False
                        break
            # 4. event propagation
            while ok and queue:
                nid = queue.popleft()
                for fo in circuit.nodes[nid].fanouts:
                    fo_node = circuit.nodes[fo]
                    if not fo_node.is_combinational:
                        continue
                    fanin_values = [
                        values.get(f, self._constants.get(f, X))
                        for f in fo_node.fanins]
                    out = eval_gate(fo_node.gate_type, fanin_values)
                    if out == X:
                        continue
                    # _set also detects conflicts with an already-known
                    # (e.g. injected) value -- that is how multiple-node
                    # learning proves tie gates.
                    if not _set(fo, out):
                        ok = False
                        break
            if not ok:
                break
            # 5. frame boundary: sample FF data inputs
            next_state: Dict[int, int] = {}
            for fid in circuit.ffs:
                ff_node = circuit.nodes[fid]
                data = values.get(ff_node.fanins[0],
                                  self._constants.get(ff_node.fanins[0], X))
                if data != X and self._transfer_ok(ff_node, data):
                    next_state[fid] = data
            if (stop_on_repeat and frame >= last_injection_frame
                    and next_state == state):
                repeated = True
                break
            if not next_state and frame >= last_injection_frame:
                # Nothing will ever become known again.
                repeated = True
                break
            state = next_state
            frame += 1
        return InjectionResult(frames=frames, injected=injected,
                               conflict=conflict, repeated=repeated)

    # convenience -------------------------------------------------------
    def inject_single(self, nid: int, value: int,
                      max_frames: int = 50) -> InjectionResult:
        """Inject one value at frame 0 and simulate forward."""
        return self.run({0: [(nid, value)]}, max_frames=max_frames)


def simulate_sequence(circuit: Circuit,
                      sequence: List[Dict[str, int]],
                      init_state: Optional[Dict[str, int]] = None
                      ) -> List[Dict[str, int]]:
    """Plain full-circuit 3-valued simulation of an input sequence.

    ``sequence`` is a list of {input name: value} vectors; missing inputs
    are X.  The power-up state is all-X unless ``init_state`` gives FF
    values by name.  Returns the full value map (by node name) per frame.
    Used by tests as an oracle and by examples.  Unlike
    :class:`FrameSimulator` this applies *no* learning-propagation
    restrictions: it models what the real hardware does, which is exactly
    what learned relations must never contradict.
    """
    state: Dict[int, int] = {}
    if init_state:
        for name, value in init_state.items():
            state[circuit.nid(name)] = value
    out: List[Dict[str, int]] = []
    for vector in sequence:
        values: Dict[int, int] = {}
        for node in circuit.nodes:
            if node.gate_type is GateType.TIE0:
                values[node.nid] = ZERO
            elif node.gate_type is GateType.TIE1:
                values[node.nid] = ONE
        for name, value in vector.items():
            values[circuit.nid(name)] = value
        for fid in circuit.ffs:
            values[fid] = state.get(fid, X)
        for nid in circuit.topo_order:
            node = circuit.nodes[nid]
            if node.gate_type in (GateType.TIE0, GateType.TIE1):
                continue
            values[nid] = eval_gate(
                node.gate_type,
                [values.get(f, X) for f in node.fanins])
        for pid in circuit.inputs:
            values.setdefault(pid, X)
        out.append({circuit.nodes[n].name: values.get(n, X)
                    for n in range(len(circuit.nodes))})
        state = {fid: values.get(circuit.nodes[fid].fanins[0], X)
                 for fid in circuit.ffs}
    return out
