"""Resident fault-dropping simulators for the ATPG driver.

:func:`repro.atpg.driver.run_atpg` fault-simulates every generated
sequence against the still-open faults so collateral detections drop
out of the target list (HITEC-style dropping).  Re-slicing the open
subset per sequence is what made that loop simulation-bound on the
array backend: the subset shrinks after almost every sequence, so the
batch composition -- and with it the cache key of every injection plan
in :meth:`~repro.sim.array_backend.ArrayFaultSimulator._plan_for` --
changed on every call, and the plans (splice tables, virtual-branch
routing, fanin overrides) were rebuilt from scratch each time.

A *resident dropper* instead freezes the fault batches once, at the
start of the run, and keeps them (plans included) alive across the
whole dropping loop:

* dropped faults keep their machine column but are **compacted in
  place** -- their column bit is pre-seeded into the run's detection
  mask, so they are never reported again, cost nothing at detection
  time, and let the all-detected early exit fire on live machines
  alone (a dropped fault can never resurface by construction);
* the fault-free good machine runs once per sequence and its output
  frames are shared by every batch;
* when at least half the original columns have been dropped the
  batches are **repacked** over the survivors, so plan work over the
  whole run stays O(total columns) while late, mostly-empty batches
  shrink back to dense ones.

Droppers are owned by one driver loop and are deliberately
single-threaded (no locks): each ``run_atpg`` call builds its own.

The reference and compiled backends keep their historical per-call
subset slicing behind the same interface -- their per-batch setup is a
few bigint dict folds, not worth freezing -- so the driver code is
backend-agnostic and the detection sets (and therefore every
:class:`~repro.atpg.driver.ATPGStats` field) stay bit-identical across
all three backends by the same batch-independence contract the
differential harness enforces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuit.netlist import Circuit
from .array_backend import ArrayFaultSimulator
from .compiled import SIM_BACKENDS, make_fault_simulator

__all__ = ["ArrayResidentDropper", "SubsetResidentDropper",
           "make_resident_dropper"]


class _ResidentBatch:
    """One frozen column batch: global fault indices + injection plan."""

    __slots__ = ("indices", "plan", "det", "live")

    def __init__(self, indices: List[int], plan, det, live: int):
        self.indices = indices
        self.plan = plan
        self.det = det      # pre-seeded detection mask (np row / int)
        self.live = live


class ArrayResidentDropper:
    """Persistent live-fault array simulator for one dropping loop.

    ``faults`` is the run's canonical fault list, ``live`` the indices
    into it that are still open when the dropper is built (ascending).
    ``drop`` simulates one sequence against every live column and
    returns the newly-detected global indices (removing them);
    ``discard`` retires a column whose verdict was decided elsewhere
    (the targeted fault itself, whatever its outcome).
    """

    def __init__(self, circuit: Circuit, faults: Sequence, live:
                 Sequence[int], width: Optional[int] = None,
                 use_numpy: Optional[bool] = None):
        self._sim = ArrayFaultSimulator(circuit, width=width,
                                        use_numpy=use_numpy)
        self._faults = faults
        self.width = self._sim.width
        self.use_numpy = self._sim.use_numpy
        self.drop_calls = 0
        self.drop_hits = 0
        self.repacks = 0
        self._build(list(live))

    # ------------------------------------------------------------------
    def _build(self, live: List[int]) -> None:
        """(Re)pack ``live`` into dense width-wide column batches."""
        sim = self._sim
        faults = self._faults
        self._batches: List[_ResidentBatch] = []
        #: global fault index -> (batch position, column) while live.
        self._pos: Dict[int, tuple] = {}
        self.capacity = len(live)
        self.live_count = len(live)
        for start in range(0, len(live), self.width):
            indices = live[start:start + self.width]
            batch = [faults[i] for i in indices]
            plan = sim._plan_for(batch)
            det = (_np_zero_row(plan.words) if sim.use_numpy else 0)
            rb = _ResidentBatch(indices, plan, det, len(indices))
            for col, gidx in enumerate(indices):
                self._pos[gidx] = (rb, col)
            self._batches.append(rb)

    def _retire(self, index: int) -> None:
        rb, col = self._pos.pop(index)
        if self._sim.use_numpy:
            rb.det[col >> 6] |= _np_bit(col)
        else:
            rb.det |= 1 << col
        rb.live -= 1
        self.live_count -= 1

    def _maybe_repack(self) -> None:
        # Halving rule: total plan-(re)build work stays linear in the
        # original column count, while batches become dense again once
        # dropping has hollowed them out.
        if self.live_count and self.live_count <= self.capacity // 2:
            self.repacks += 1
            self._build(sorted(self._pos))

    # ------------------------------------------------------------------
    def discard(self, index: int) -> None:
        """Retire one column decided outside the dropper (if live)."""
        if index in self._pos:
            self._retire(index)
            self._maybe_repack()

    def drop(self, sequence: Sequence[Dict[str, int]]) -> List[int]:
        """Newly-detected global fault indices for one sequence."""
        self.drop_calls += 1
        if not self.live_count or not sequence:
            return []
        sequence = list(sequence)
        sim = self._sim
        # One good machine serves every batch of this sequence.
        good_frames = sim._good_output_frames(sequence)
        hits: List[int] = []
        for rb in self._batches:
            if not rb.live:
                continue
            if sim.use_numpy:
                locals_ = sim._run_plan_np(sequence, rb.plan,
                                           good_frames, pre_det=rb.det)
            else:
                locals_ = sim._run_plan_int(
                    sequence, rb.plan, len(rb.indices), good_frames,
                    pre_det=rb.det)
            for col in locals_:
                hits.append(rb.indices[col])
        for index in hits:
            self._retire(index)
        self.drop_hits += len(hits)
        self._maybe_repack()
        return hits

    def stats(self) -> Dict[str, int]:
        """Counters for benches and the regression tests."""
        return {"backend": "array", "drop_calls": self.drop_calls,
                "drop_hits": self.drop_hits, "repacks": self.repacks,
                "batches": len(self._batches), "live": self.live_count,
                "capacity": self.capacity,
                "plan_cache_misses": self._sim.plan_cache_misses}


class SubsetResidentDropper:
    """Reference/compiled dropper: historical per-call subset slicing.

    Same interface as :class:`ArrayResidentDropper`; each ``drop``
    re-slices the live subset exactly the way the driver loop used to,
    so behavior (and batch composition) on these backends is unchanged.
    """

    def __init__(self, circuit: Circuit, faults: Sequence,
                 live: Sequence[int], backend: str = "compiled",
                 width: Optional[int] = None):
        self._sim = make_fault_simulator(circuit, width=width,
                                         backend=backend)
        self._backend = backend
        self._faults = faults
        self._live = set(live)
        self.drop_calls = 0
        self.drop_hits = 0

    def discard(self, index: int) -> None:
        self._live.discard(index)

    def drop(self, sequence: Sequence[Dict[str, int]]) -> List[int]:
        self.drop_calls += 1
        if not self._live:
            return []
        open_indices = sorted(self._live)
        subset = [self._faults[i] for i in open_indices]
        hits = [open_indices[local]
                for local in self._sim.detected(sequence, subset)]
        for index in hits:
            self._live.discard(index)
        self.drop_hits += len(hits)
        return hits

    def stats(self) -> Dict[str, int]:
        return {"backend": self._backend,
                "drop_calls": self.drop_calls,
                "drop_hits": self.drop_hits, "repacks": 0,
                "batches": 0, "live": len(self._live),
                "capacity": len(self._live)}


def make_resident_dropper(circuit: Circuit, faults: Sequence,
                          live: Sequence[int], *,
                          backend: str = "compiled",
                          width: Optional[int] = None,
                          use_numpy: Optional[bool] = None):
    """Dropper factory over :data:`~repro.sim.compiled.SIM_BACKENDS`.

    ``backend='array'`` builds the resident column engine; 'reference'
    and 'compiled' get the subset dropper.  ``width`` is a pure batch
    packing knob (``None`` = backend default) and never changes any
    detection set; ``use_numpy`` is forwarded to the array substrate
    probe.
    """
    if backend == "array":
        return ArrayResidentDropper(circuit, faults, live, width=width,
                                    use_numpy=use_numpy)
    if backend not in SIM_BACKENDS:
        raise ValueError(f"unknown sim backend {backend!r}; "
                         f"expected one of {SIM_BACKENDS}")
    return SubsetResidentDropper(circuit, faults, live,
                                 backend=backend, width=width)


# ----------------------------------------------------------------------
# numpy shims (kept here so the module imports without numpy)
# ----------------------------------------------------------------------
def _np_zero_row(words: int):
    from .array_backend import _np

    return _np.zeros(words, dtype=_np.uint64)


def _np_bit(col: int):
    from .array_backend import _np

    return _np.uint64(1 << (col & 63))
