"""Logic value helpers shared by the simulators.

Three-valued scalar values come from :mod:`repro.circuit.gates` (``ZERO``,
``ONE``, ``X``).  This module adds the composite good/faulty pair used by
the ATPG's five-valued D-algebra:

==========  ==========  =========
good value  fault value  D-symbol
==========  ==========  =========
1           0            D
0           1            D'
v           v            v
any X       --           X
==========  ==========  =========
"""

from __future__ import annotations

from typing import Tuple

from ..circuit.gates import ONE, X, ZERO, inv, value_name

#: Composite five-valued symbols as (good, faulty) pairs.
V0: Tuple[int, int] = (ZERO, ZERO)
V1: Tuple[int, int] = (ONE, ONE)
VD: Tuple[int, int] = (ONE, ZERO)
VDBAR: Tuple[int, int] = (ZERO, ONE)
VX: Tuple[int, int] = (X, X)


def composite_name(pair: Tuple[int, int]) -> str:
    """Printable D-algebra symbol for a (good, faulty) pair."""
    good, faulty = pair
    if good == ONE and faulty == ZERO:
        return "D"
    if good == ZERO and faulty == ONE:
        return "D'"
    if good == faulty and good != X:
        return value_name(good)
    if good == faulty:
        return "X"
    return f"{value_name(good)}/{value_name(faulty)}"


def is_fault_effect(pair: Tuple[int, int]) -> bool:
    """True for D or D' (a visible good/faulty difference)."""
    good, faulty = pair
    return good != X and faulty != X and good != faulty


__all__ = [
    "ZERO", "ONE", "X", "inv", "value_name",
    "V0", "V1", "VD", "VDBAR", "VX",
    "composite_name", "is_fault_effect",
]
