"""Vectorized array-kernel simulation backend ("array").

The compiled backend (:mod:`repro.sim.compiled`) removed per-gate
*dispatch* but still executes one straight-line Python statement per
gate, so its hot loops stay bytecode-bound.  This module lowers the same
flat opcode/fanin schedule one step further, into a **levelized,
opcode-grouped** form evaluated with whole-matrix bitwise operations:

* two-plane values live in an ``(n_nodes + 2, n_words)`` matrix of
  unsigned 64-bit words -- ``m0`` rows say "this machine sees 0",
  ``m1`` rows "sees 1", neither means X (exactly the packed encoding of
  :mod:`repro.sim.faultsim`) -- with fault-batch machines as bit
  columns;
* every gate of one opcode inside one topological level advances in a
  single vectorized statement (a gather over the group's fanin index
  matrix, a bitwise reduction, a scatter), so one step moves an entire
  fault batch per *opcode group* instead of per gate;
* the two extra matrix rows are constant pads -- a stuck-0 row and a
  stuck-1 row -- letting groups of mixed fanin count pad short gates
  with the opcode's neutral element (1 for AND-reduction, 0 for
  OR/XOR-reduction).

The wide-word substrate is chosen **at import time**: with ``numpy``
installed (the ``repro[fast]`` extra) the matrix is a real
``numpy.uint64`` array and the default batch width grows to
:data:`DEFAULT_NUMPY_WIDTH` machines; without it a pure-bigint
interpreter walks the same lowered arrays with Python integers as the
packed words, so the stdlib-only install keeps working with identical
results.  Setting ``REPRO_ARRAY_DISABLE_NUMPY=1`` in the environment
forces the bigint path even when numpy is importable (the CI leg that
proves the fallback).

Like the other backends, detection sets and every downstream
:class:`~repro.atpg.driver.ATPGStats` field are bit-identical by
contract; ``tests/test_backend_differential.py`` pits all three against
each other across the generated corpus, word widths and both array
substrates.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import ONE, X, ZERO
from ..circuit.netlist import Circuit
from .compiled import (
    CompiledCircuit,
    OP_AND, OP_BUF, OP_NAND, OP_NOR, OP_NOT, OP_OR, OP_TIE0, OP_TIE1,
    OP_XNOR, OP_XOR,
    compile_circuit,
)

__all__ = ["HAVE_NUMPY", "ArrayCircuit", "ArrayFaultSimulator",
           "ArrayPatternEngine", "array_form", "clear_pattern_cache",
           "pattern_cache_stats", "pattern_engine",
           "simulate_patterns_array"]

try:
    if os.environ.get("REPRO_ARRAY_DISABLE_NUMPY"):
        raise ImportError("numpy disabled by REPRO_ARRAY_DISABLE_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy leg
    _np = None

#: True when the vectorized numpy substrate is active for this process.
HAVE_NUMPY = _np is not None

#: Default machines per batch on each substrate.  The numpy path gets
#: faster per fault the wider the batch (matrix op cost is dominated by
#: per-call overhead at these sizes), so it defaults wide; the bigint
#: fallback pays per-limb cost linear in the width and keeps the
#: compiled backend's classic 128.
DEFAULT_NUMPY_WIDTH = 4096
DEFAULT_BIGINT_WIDTH = 128

#: Injection plans retained per simulator instance (LRU).  ATPG fault
#: grading re-runs ``detected()`` over the same fault list for every
#: candidate sequence, so a handful of batch plans covers the whole
#: campaign; the cap only matters when callers stream arbitrary batches.
PLAN_CACHE_CAP = 32

#: Resident pattern engines retained per process, LRU by circuit
#: fingerprint; see :func:`pattern_engine`.  A suite run touches a
#: handful of circuits, the cap only matters for callers streaming
#: arbitrary netlists.
PATTERN_CACHE_CAP = 64


#: Gate pins beyond a gate's fanin count are padded with the opcode's
#: neutral row so one index matrix covers a whole mixed-fanin group.
_AND_LIKE = (OP_AND, OP_NAND)
_OR_LIKE = (OP_OR, OP_NOR)
_XOR_LIKE = (OP_XOR, OP_XNOR)


class _Group:
    """All gates of one opcode inside one topological level."""

    __slots__ = ("op", "out", "fanin", "max_fanin", "F2")

    def __init__(self, op: int, out, fanin, max_fanin: int, F2=None):
        self.op = op
        self.out = out          # output node ids (list or np.intp array)
        self.fanin = fanin      # per-pin fanin id lists (len max_fanin)
        self.max_fanin = max_fanin
        self.F2 = F2            # (max_fanin, n_gates) intp index matrix


class ArrayCircuit:
    """Levelized, opcode-grouped lowering of one compiled circuit.

    Two extra plane rows follow the real nodes: row ``zero_row`` is a
    constant logic-0 (``m0`` all ones), row ``one_row`` a constant
    logic-1 -- the padding targets for short fanin tuples and the value
    source for TIE gates.
    """

    def __init__(self, cc: CompiledCircuit):
        self.cc = cc
        self.zero_row = cc.n
        self.one_row = cc.n + 1
        self.rows = cc.n + 2
        #: Topological level of every scheduled gate (sources are 0).
        self.gate_level: Dict[int, int] = {}
        #: fanin tuple per scheduled gate (pin-fault re-evaluation).
        self.fanins: Dict[int, Tuple[int, ...]] = {}
        self.tie0: List[int] = []
        self.tie1: List[int] = []
        #: nid -> (level index, group index, row inside the group), so a
        #: batch can turn its hot-gate set into per-group patch tables.
        self.gate_pos: Dict[int, Tuple[int, int, int]] = {}
        per_level: Dict[int, Dict[int, List[Tuple[int, Tuple[int, ...]]]]] = {}
        for op, nid, fis in cc.schedule:
            self.fanins[nid] = fis
            if op == OP_TIE0:
                self.tie0.append(nid)
                self.gate_level[nid] = 0
                continue
            if op == OP_TIE1:
                self.tie1.append(nid)
                self.gate_level[nid] = 0
                continue
            level = 1 + max((self.gate_level.get(f, 0) for f in fis),
                            default=0)
            self.gate_level[nid] = level
            per_level.setdefault(level, {}).setdefault(op, []).append(
                (nid, fis))
        #: One list of groups per level, in ascending level order.
        self.levels: List[List[_Group]] = []
        for li, level in enumerate(sorted(per_level)):
            groups = []
            for gi, (op, gates) in enumerate(
                    sorted(per_level[level].items())):
                pad = (self.one_row if op in _AND_LIKE else self.zero_row)
                max_fanin = max(len(fis) for _nid, fis in gates)
                out = [nid for nid, _fis in gates]
                for row, nid in enumerate(out):
                    self.gate_pos[nid] = (li, gi, row)
                fanin = [[(fis[j] if j < len(fis) else pad)
                          for _nid, fis in gates]
                         for j in range(max_fanin)]
                F2 = None
                if _np is not None:
                    out = _np.asarray(out, dtype=_np.intp)
                    F2 = _np.asarray(fanin, dtype=_np.intp)
                groups.append(_Group(op, out, fanin, max_fanin, F2))
            self.levels.append(groups)


# ----------------------------------------------------------------------
# lowering cache (piggybacks on the compiled-circuit LRU: one array
# form per live CompiledCircuit, same fingerprint keying and lifetime)
# ----------------------------------------------------------------------
_FORM_LOCK = threading.Lock()


def array_form(circuit: Circuit) -> ArrayCircuit:
    """Fetch (or build) the array lowering for a frozen circuit."""
    cc = compile_circuit(circuit)
    form = getattr(cc, "_array_form", None)
    if form is None:
        with _FORM_LOCK:
            form = getattr(cc, "_array_form", None)
            if form is None:
                form = ArrayCircuit(cc)
                cc._array_form = form
    return form


# ----------------------------------------------------------------------
# word helpers (numpy substrate)
# ----------------------------------------------------------------------
def _int_to_words(value: int, words: int):
    """Pack a bigint mask into little-endian 64-bit word rows."""
    raw = value.to_bytes(words * 8, "little")
    return _np.frombuffer(raw, dtype="<u8").astype(_np.uint64)


def _words_to_int(row) -> int:
    return int.from_bytes(row.astype("<u8").tobytes(), "little")


# ----------------------------------------------------------------------
# per-batch fault aggregation (shared by both substrates)
# ----------------------------------------------------------------------
class _BatchForces:
    """Bigint force masks of one packed fault batch.

    Mirrors the aggregation of
    :meth:`repro.sim.compiled.CompiledFaultSimulator.run_batch`: each
    machine carries exactly one fault, so a bit lands in at most one of
    (zero-mask, one-mask) per node, pin faults fold into per-(gate, pin)
    bit groups, faults on PIs / FF outputs apply before gate evaluation
    and a stuck FF data input acts at the frame boundary.
    """

    __slots__ = ("src", "ff", "out_zero", "out_one", "pin_groups", "hot")

    def __init__(self, cc: CompiledCircuit, batch: List):
        out_zero: Dict[int, int] = {}
        out_one: Dict[int, int] = {}
        pin_bits: Dict[Tuple[int, int], List[int]] = {}
        for i, fault in enumerate(batch):
            if fault.pin is None:
                target = out_zero if fault.value == ZERO else out_one
                target[fault.node] = target.get(fault.node, 0) | (1 << i)
            else:
                group = pin_bits.setdefault((fault.node, fault.pin),
                                            [0, 0])
                group[0 if fault.value == ZERO else 1] |= 1 << i
        pin_groups: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for (nid, pin), (z, o) in pin_bits.items():
            pin_groups.setdefault(nid, []).append((pin, z, o, z | o))
        source_set = set(cc.inputs) | set(cc.ffs)
        #: (nid, zero bits, one bits) forced onto PI / FF-output planes.
        self.src = [(nid, out_zero.get(nid, 0), out_one.get(nid, 0))
                    for nid in sorted(
                        (set(out_zero) | set(out_one)) & source_set)]
        #: FF position -> (zero bits, one bits) stuck D inputs.
        self.ff: List[Tuple[int, int, int]] = []
        for j, fid in enumerate(cc.ffs):
            groups = pin_groups.pop(fid, None)
            if groups is not None:
                z = o = 0
                for _pin, gz, go, _all in groups:
                    z |= gz
                    o |= go
                self.ff.append((j, z, o))
        self.out_zero = out_zero
        self.out_one = out_one
        self.pin_groups = pin_groups
        #: Gates needing a mid-schedule patch after their level runs.
        self.hot = (((set(out_zero) | set(out_one)) - source_set)
                    | set(pin_groups))


class _NumpyPlan:
    """Precompiled numpy injection tables for one fault batch.

    Everything the numpy run loop needs that depends only on the
    (circuit, fault-batch) pair and not on the input sequence: splice
    tables, virtual-branch routing, batch-local fanin index overrides
    and the packed-word constants.  All members are read-only during
    evaluation -- the run loop only ever assigns *into* the plane
    matrices it allocates per call -- which is what makes the plan safe
    to cache on the simulator and reuse across ``detected()`` calls.
    """

    __slots__ = ("width", "words", "full_int", "fullw", "forces",
                 "src_patch", "ff_patch", "tie_splices", "level_virt",
                 "level_out", "f2_overrides", "n_virt")


class ArrayFaultSimulator:
    """Whole-circuit array-kernel sequential fault simulator.

    Same contract as :class:`repro.sim.faultsim.FaultSimulator` and
    :class:`repro.sim.compiled.CompiledFaultSimulator` -- identical
    detection sets on any (sequence, faults) input, per-batch fault
    dropping included.  ``width=None`` picks the substrate default
    (:data:`DEFAULT_NUMPY_WIDTH` / :data:`DEFAULT_BIGINT_WIDTH`);
    ``use_numpy=None`` follows the import-time probe, ``False`` forces
    the pure-bigint interpreter, ``True`` requires numpy.
    """

    def __init__(self, circuit: Circuit, width: Optional[int] = None,
                 use_numpy: Optional[bool] = None):
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:
            raise ValueError(
                "use_numpy=True but numpy is not importable here; "
                "install the repro[fast] extra or pass use_numpy=None")
        self.use_numpy = bool(use_numpy)
        if width is None:
            width = (DEFAULT_NUMPY_WIDTH if self.use_numpy
                     else DEFAULT_BIGINT_WIDTH)
        if width < 1:
            raise ValueError(f"word width must be >= 1, got {width}")
        self.circuit = circuit
        self.width = width
        self.compiled = compile_circuit(circuit)
        self.array = array_form(circuit)
        #: (node, pin, value)-keyed LRU of injection plans; see
        #: :meth:`_plan_for`.  Hit/miss counters feed the benchmark's
        #: ``inject_setup`` row and the cache tests.
        self._plan_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------
    def detected(self, sequence: Sequence[Dict[str, int]],
                 faults: Sequence) -> Set[int]:
        """Indices (into ``faults``) detected by ``sequence``."""
        sequence = list(sequence)
        if not faults or not sequence:
            return set()
        good_frames = self._good_output_frames(sequence)
        run = (self._run_batch_np if self.use_numpy
               else self._run_batch_int)
        hit: Set[int] = set()
        for start in range(0, len(faults), self.width):
            batch = list(faults[start:start + self.width])
            for local in run(sequence, batch, good_frames):
                hit.add(start + local)
        return hit

    # ------------------------------------------------------------------
    def _good_output_frames(self, sequence: Sequence[Dict[str, int]]
                            ) -> List[List[int]]:
        """Fault-free 3-valued output values, one list per frame.

        One scalar machine through the compiled plane kernels -- shared
        verbatim with the compiled backend so the good machine can never
        disagree between them.
        """
        cc = self.compiled
        m0 = [0] * cc.n
        m1 = [0] * cc.n
        s0 = [0] * len(cc.ffs)
        s1 = [0] * len(cc.ffs)
        frames: List[List[int]] = []
        for vector in sequence:
            get = vector.get
            for nid, name in cc.input_pairs:
                value = get(name, X)
                if value == ZERO:
                    m0[nid], m1[nid] = 1, 0
                elif value == ONE:
                    m0[nid], m1[nid] = 0, 1
                else:
                    m0[nid], m1[nid] = 0, 0
            for j, fid in enumerate(cc.ffs):
                m0[fid], m1[fid] = s0[j], s1[j]
            cc.eval_planes(m0, m1, 1)
            frames.append([ZERO if m0[oid] else (ONE if m1[oid] else X)
                           for oid in cc.outputs])
            for j, src in enumerate(cc.ff_data):
                s0[j], s1[j] = m0[src], m1[src]
        return frames

    # ------------------------------------------------------------------
    # injection-plan cache
    # ------------------------------------------------------------------
    def _plan_for(self, batch: List):
        """The injection plan for one fault batch, LRU-cached.

        ATPG fault grading calls :meth:`detected` once per candidate
        sequence over the *same* fault list, so the batch slices -- and
        therefore the splice tables, virtual-branch routing and fanin
        overrides, which depend only on each fault's (node, pin, value)
        identity -- repeat exactly.  Rebuilding them per call is pure
        overhead; this returns the cached :class:`_NumpyPlan` (numpy
        substrate) or :class:`_BatchForces` (bigint substrate) instead.
        """
        key = tuple((fault.node, fault.pin, fault.value)
                    for fault in batch)
        plan = self._plan_cache.get(key)
        if plan is not None:
            self._plan_cache.move_to_end(key)
            self.plan_cache_hits += 1
            return plan
        self.plan_cache_misses += 1
        plan = (self._build_plan_np(batch) if self.use_numpy
                else _BatchForces(self.compiled, batch))
        self._plan_cache[key] = plan
        while len(self._plan_cache) > PLAN_CACHE_CAP:
            self._plan_cache.popitem(last=False)
        return plan

    # ------------------------------------------------------------------
    # numpy substrate
    # ------------------------------------------------------------------
    def _build_plan_np(self, batch: List) -> _NumpyPlan:
        np = _np
        cc = self.compiled
        ac = self.array
        plan = _NumpyPlan()
        width = len(batch)
        words = (width + 63) >> 6
        full_int = (1 << width) - 1
        forces = _BatchForces(cc, batch)
        fullw = _int_to_words(full_int, words)

        def to_words(mask: int):
            return _int_to_words(mask, words)

        # --- vectorized fault-injection tables -------------------------
        # Per-gate fixups priced per *call* would dominate here (unlike
        # the compiled backend's bigint fix, a tiny numpy op costs
        # microseconds), so every injection becomes a row-indexed masked
        # splice: ``plane[rows] = (plane[rows] & K) | V``, a constant
        # number of numpy statements per force family per frame,
        # whatever the fault count.
        def splice_table(entries):
            """[(row, z, o), ...] -> (rows, K, Z, O) numpy tables."""
            rows = np.asarray([row for row, _z, _o in entries],
                              dtype=np.intp)
            K = np.stack([to_words(full_int & ~(z | o))
                          for _row, z, o in entries])
            Z = np.stack([to_words(z) for _row, z, _o in entries])
            O = np.stack([to_words(o) for _row, _z, o in entries])
            return rows, K, Z, O

        src_patch = (splice_table(forces.src) if forces.src else None)
        ff_patch = (splice_table(forces.ff) if forces.ff else None)
        # A faulted (gate, pin) becomes a *virtual branch row* appended
        # after the real nodes: the faulty gate's fanin index is
        # redirected to it in a batch-local copy of the group's index
        # matrix, and the row's value -- the source plane with the
        # faulted machines' columns stuck -- is refreshed by one splice
        # per level each frame, just before that level evaluates.  The
        # splice patches only the faulted machines' bit columns, so
        # every other machine (and every other consumer of the source
        # line) sees the clean value.  Output-stuck gates are spliced
        # in place, once per level, right after their level evaluates
        # and before any consumer level reads them.
        tie_hot: List[Tuple[int, int, int]] = []
        virt_by_level: Dict[int, List] = {}
        out_by_level: Dict[int, List] = {}
        f2_overrides: Dict[Tuple[int, int], object] = {}
        tie_set = set(ac.tie0) | set(ac.tie1)
        n_virt = 0
        for nid in sorted(forces.hot):
            if nid in tie_set:
                # Constant planes, never re-evaluated: splice once
                # after allocation (TIEs carry no pin faults).
                tie_hot.append((nid, forces.out_zero.get(nid, 0),
                                forces.out_one.get(nid, 0)))
                continue
            li, gi, row = ac.gate_pos[nid]
            pgroups = forces.pin_groups.get(nid)
            if pgroups:
                fis = ac.fanins[nid]
                for pin, z, o, _bits in pgroups:
                    dst = ac.rows + n_virt
                    n_virt += 1
                    virt_by_level.setdefault(li, []).append(
                        (fis[pin], dst, z, o))
                    F2b = f2_overrides.get((li, gi))
                    if F2b is None:
                        F2b = ac.levels[li][gi].F2.copy()
                        f2_overrides[(li, gi)] = F2b
                    F2b[pin, row] = dst
            z = forces.out_zero.get(nid, 0)
            o = forces.out_one.get(nid, 0)
            if z or o:
                out_by_level.setdefault(li, []).append((nid, z, o))
        level_virt = {}
        for li, entries in virt_by_level.items():
            src_idx = np.asarray([s for s, _d, _z, _o in entries],
                                 dtype=np.intp)
            dst_idx = np.asarray([d for _s, d, _z, _o in entries],
                                 dtype=np.intp)
            _rows, K, Z, O = splice_table(
                [(0, z, o) for _s, _d, z, o in entries])
            level_virt[li] = (src_idx, dst_idx, K, Z, O)
        level_out = {li: splice_table(entries)
                     for li, entries in out_by_level.items()}

        plan.width = width
        plan.words = words
        plan.full_int = full_int
        plan.fullw = fullw
        plan.forces = forces
        plan.src_patch = src_patch
        plan.ff_patch = ff_patch
        plan.tie_splices = [
            (nid, to_words(z), to_words(o),
             ~(_int_to_words(z | o, words)))
            for nid, z, o in tie_hot]
        plan.level_virt = level_virt
        plan.level_out = level_out
        plan.f2_overrides = f2_overrides
        plan.n_virt = n_virt
        return plan

    def _run_batch_np(self, sequence: Sequence[Dict[str, int]],
                      batch: List, good_frames: List[List[int]]
                      ) -> Set[int]:
        return self._run_plan_np(sequence, self._plan_for(batch),
                                 good_frames)

    def _run_plan_np(self, sequence: Sequence[Dict[str, int]],
                     plan: "_NumpyPlan", good_frames: List[List[int]],
                     pre_det=None) -> Set[int]:
        """Run one prebuilt injection plan over a sequence.

        ``pre_det`` (a words-long uint64 row) pre-seeds the detection
        mask: those machine columns are treated as already decided, so
        they are never reported again and the all-detected early exit
        fires as soon as every *other* machine has shown its fault.
        This is the resident dropper's column compaction -- dropped
        faults keep their column but cost nothing and cannot resurface.
        """
        np = _np
        cc = self.compiled
        ac = self.array
        words = plan.words
        fullw = plan.fullw
        src_patch = plan.src_patch
        ff_patch = plan.ff_patch
        level_virt = plan.level_virt
        level_out = plan.level_out
        f2_overrides = plan.f2_overrides
        n_virt = plan.n_virt

        M0 = np.zeros((ac.rows + n_virt, words), dtype=np.uint64)
        M1 = np.zeros((ac.rows + n_virt, words), dtype=np.uint64)
        M0[ac.zero_row] = fullw
        M1[ac.one_row] = fullw
        for nid in ac.tie0:
            M0[nid] = fullw
        for nid in ac.tie1:
            M1[nid] = fullw
        for nid, zw, ow, keep in plan.tie_splices:
            M0[nid] = (M0[nid] & keep) | zw
            M1[nid] = (M1[nid] & keep) | ow

        n_ffs = len(cc.ffs)
        if n_ffs:
            ff_idx = np.asarray(cc.ffs, dtype=np.intp)
            ffd_idx = np.asarray(cc.ff_data, dtype=np.intp)
            s0 = np.zeros((n_ffs, words), dtype=np.uint64)
            s1 = np.zeros((n_ffs, words), dtype=np.uint64)
        detected: Set[int] = set()
        det = (np.zeros(words, dtype=np.uint64) if pre_det is None
               else pre_det.copy())
        for frame, vector in enumerate(sequence):
            get = vector.get
            for nid, name in cc.input_pairs:
                value = get(name, X)
                if value == ZERO:
                    M0[nid] = fullw
                    M1[nid] = 0
                elif value == ONE:
                    M0[nid] = 0
                    M1[nid] = fullw
                else:
                    M0[nid] = 0
                    M1[nid] = 0
            if n_ffs:
                M0[ff_idx] = s0
                M1[ff_idx] = s1
            # Faults on PIs / FF outputs apply before gate evaluation.
            if src_patch is not None:
                rows, K, Z, O = src_patch
                M0[rows] = (M0[rows] & K) | Z
                M1[rows] = (M1[rows] & K) | O
            for li, groups in enumerate(ac.levels):
                lv = level_virt.get(li)
                if lv is not None:
                    src_idx, dst_idx, K, Z, O = lv
                    M0[dst_idx] = (M0[src_idx] & K) | Z
                    M1[dst_idx] = (M1[src_idx] & K) | O
                for gi, g in enumerate(groups):
                    _eval_group_np(g, M0, M1,
                                   f2_overrides.get((li, gi)))
                lo = level_out.get(li)
                if lo is not None:
                    rows, K, Z, O = lo
                    M0[rows] = (M0[rows] & K) | Z
                    M1[rows] = (M1[rows] & K) | O
            # Detection at primary outputs against the good machine.
            # ``& fullw`` guards the verdict against ghost columns of a
            # partial final batch; the planes are provably confined to
            # live machines, but a detection must never depend on that
            # proof staying true.
            good = good_frames[frame]
            for k, oid in enumerate(cc.outputs):
                gv = good[k]
                if gv == X:
                    continue
                row = M1[oid] if gv == ZERO else M0[oid]
                diff = row & ~det & fullw
                if diff.any():
                    det = det | diff
                    for w in np.flatnonzero(diff):
                        bits = int(diff[w])
                        base = int(w) << 6
                        while bits:
                            low = bits & -bits
                            detected.add(base + low.bit_length() - 1)
                            bits ^= low
            if np.array_equal(det, fullw):
                # Per-batch fault dropping: every machine already showed
                # its fault; later frames cannot change the verdict.
                break
            # Frame boundary: FFs capture their (possibly stuck) D input.
            if n_ffs:
                s0 = M0[ffd_idx]
                s1 = M1[ffd_idx]
                if ff_patch is not None:
                    rows, K, Z, O = ff_patch
                    s0[rows] = (s0[rows] & K) | Z
                    s1[rows] = (s1[rows] & K) | O
        return detected

    # ------------------------------------------------------------------
    # pure-bigint substrate (stdlib-only fallback, identical results)
    # ------------------------------------------------------------------
    def _run_batch_int(self, sequence: Sequence[Dict[str, int]],
                       batch: List, good_frames: List[List[int]]
                       ) -> Set[int]:
        return self._run_plan_int(sequence, self._plan_for(batch),
                                  len(batch), good_frames)

    def _run_plan_int(self, sequence: Sequence[Dict[str, int]],
                      forces: "_BatchForces", width: int,
                      good_frames: List[List[int]],
                      pre_det: int = 0) -> Set[int]:
        """Bigint twin of :meth:`_run_plan_np`; ``pre_det`` is the
        packed mask of already-decided machine columns."""
        cc = self.compiled
        ac = self.array
        full = (1 << width) - 1
        out_zero = forces.out_zero
        out_one = forces.out_one
        pin_groups = forces.pin_groups
        hot = forces.hot
        m0 = [0] * ac.rows
        m1 = [0] * ac.rows
        m0[ac.zero_row] = full
        m1[ac.one_row] = full
        for nid in ac.tie0:
            m0[nid] = full
        for nid in ac.tie1:
            m1[nid] = full
        opcodes = cc.opcode

        def fix(nid: int) -> None:
            c0 = m0[nid]
            c1 = m1[nid]
            groups = pin_groups.get(nid)
            if groups is not None:
                op = opcodes[nid]
                fis = ac.fanins[nid]
                for pin, z, o, bits in groups:
                    keep = ~(z | o)
                    if op < 4:  # AND / NAND / OR / NOR
                        and_like = op < 2
                        r0 = 0 if and_like else full
                        r1 = full if and_like else 0
                        for i, f in enumerate(fis):
                            f0 = m0[f]
                            f1 = m1[f]
                            if i == pin:
                                f0 = (f0 & keep) | z
                                f1 = (f1 & keep) | o
                            if and_like:
                                r0 |= f0
                                r1 &= f1
                            else:
                                r0 &= f0
                                r1 |= f1
                        if op == OP_NAND or op == OP_NOR:
                            r0, r1 = r1, r0
                    elif op < 6:  # NOT / BUF
                        f = fis[0]
                        r0 = (m0[f] & keep) | z
                        r1 = (m1[f] & keep) | o
                        if op == OP_NOT:
                            r0, r1 = r1, r0
                    else:  # XOR / XNOR
                        r0, r1 = full, 0
                        for i, f in enumerate(fis):
                            f0 = m0[f]
                            f1 = m1[f]
                            if i == pin:
                                f0 = (f0 & keep) | z
                                f1 = (f1 & keep) | o
                            r0, r1 = (r0 & f0) | (r1 & f1), \
                                (r0 & f1) | (r1 & f0)
                        if op == OP_XNOR:
                            r0, r1 = r1, r0
                    c0 = (c0 & ~bits) | (r0 & bits)
                    c1 = (c1 & ~bits) | (r1 & bits)
            z = out_zero.get(nid)
            o = out_one.get(nid)
            if z is not None or o is not None:
                z = z or 0
                o = o or 0
                keep = ~(z | o)
                c0 = (c0 & keep) | z
                c1 = (c1 & keep) | o
            m0[nid] = c0
            m1[nid] = c1

        # Same level-0 TIE splice as the numpy path: constant planes,
        # fixed once per batch instead of once per level pass.
        for nid in (*ac.tie0, *ac.tie1):
            if nid in hot:
                fix(nid)
        s0 = [0] * len(cc.ffs)
        s1 = [0] * len(cc.ffs)
        detected: Set[int] = set()
        detected_mask = pre_det
        for frame, vector in enumerate(sequence):
            get = vector.get
            for nid, name in cc.input_pairs:
                value = get(name, X)
                if value == ZERO:
                    m0[nid], m1[nid] = full, 0
                elif value == ONE:
                    m0[nid], m1[nid] = 0, full
                else:
                    m0[nid], m1[nid] = 0, 0
            for j, fid in enumerate(cc.ffs):
                m0[fid], m1[fid] = s0[j], s1[j]
            for nid, z, o in forces.src:
                keep = ~(z | o)
                m0[nid] = (m0[nid] & keep) | z
                m1[nid] = (m1[nid] & keep) | o
            for groups in ac.levels:
                for g in groups:
                    _eval_group_int(g, m0, m1, full)
                    if hot:
                        for nid in g.out:
                            if nid in hot:
                                fix(nid)
            # Detection; the final ``& full`` is the same ghost-column
            # guard as the numpy path (see there).
            good = good_frames[frame]
            for k, oid in enumerate(cc.outputs):
                gv = good[k]
                if gv == X:
                    continue
                diff = ((m1[oid] if gv == ZERO else m0[oid])
                        & ~detected_mask & full)
                if diff:
                    detected_mask |= diff
                    while diff:
                        low = diff & -diff
                        detected.add(low.bit_length() - 1)
                        diff ^= low
            if detected_mask == full:
                break
            for j, fid in enumerate(cc.ffs):
                s0[j], s1[j] = m0[cc.ff_data[j]], m1[cc.ff_data[j]]
            for j, z, o in forces.ff:
                keep = ~(z | o)
                s0[j] = (s0[j] & keep) | z
                s1[j] = (s1[j] & keep) | o
        return detected


# ----------------------------------------------------------------------
# group evaluators
# ----------------------------------------------------------------------
def _eval_group_np(g: _Group, M0, M1, F2=None) -> None:
    """Advance every gate of one opcode group in a few matrix ops.

    ``F2`` overrides the group's fanin index matrix (a batch-local copy
    with faulted pins redirected to virtual branch rows); the clean
    matrix is used when it is None.
    """
    np = _np
    op = g.op
    # One 3D gather per plane: (max_fanin, n_gates, n_words).
    if F2 is None:
        F2 = g.F2
    G0 = M0[F2]
    G1 = M1[F2]
    if op in _AND_LIKE:
        a = np.bitwise_or.reduce(G0, axis=0)
        b = np.bitwise_and.reduce(G1, axis=0)
        if op == OP_NAND:
            a, b = b, a
    elif op in _OR_LIKE:
        a = np.bitwise_and.reduce(G0, axis=0)
        b = np.bitwise_or.reduce(G1, axis=0)
        if op == OP_NOR:
            a, b = b, a
    elif op == OP_NOT:
        a, b = G1[0], G0[0]
    elif op == OP_BUF:
        a, b = G0[0], G1[0]
    else:
        # XOR / XNOR: pairwise 3-valued chain; X (neither bit) stays X.
        a, b = G0[0], G1[0]
        for j in range(1, g.max_fanin):
            f0, f1 = G0[j], G1[j]
            a, b = (a & f0) | (b & f1), (a & f1) | (b & f0)
        if op == OP_XNOR:
            a, b = b, a
    M0[g.out] = a
    M1[g.out] = b


def _eval_group_int(g: _Group, m0: List[int], m1: List[int],
                    full: int) -> None:
    """Bigint interpretation of one group, gate by gate."""
    op = g.op
    F = g.fanin
    k = g.max_fanin
    if op in _AND_LIKE:
        for i, nid in enumerate(g.out):
            a = m0[F[0][i]]
            b = m1[F[0][i]]
            for j in range(1, k):
                a |= m0[F[j][i]]
                b &= m1[F[j][i]]
            if op == OP_NAND:
                a, b = b, a
            m0[nid] = a
            m1[nid] = b
        return
    if op in _OR_LIKE:
        for i, nid in enumerate(g.out):
            a = m0[F[0][i]]
            b = m1[F[0][i]]
            for j in range(1, k):
                a &= m0[F[j][i]]
                b |= m1[F[j][i]]
            if op == OP_NOR:
                a, b = b, a
            m0[nid] = a
            m1[nid] = b
        return
    if op == OP_NOT:
        for i, nid in enumerate(g.out):
            m0[nid] = m1[F[0][i]]
            m1[nid] = m0[F[0][i]]
        return
    if op == OP_BUF:
        for i, nid in enumerate(g.out):
            m0[nid] = m0[F[0][i]]
            m1[nid] = m1[F[0][i]]
        return
    for i, nid in enumerate(g.out):  # XOR / XNOR
        t0 = m0[F[0][i]]
        t1 = m1[F[0][i]]
        for j in range(1, k):
            f0 = m0[F[j][i]]
            f1 = m1[F[j][i]]
            t0, t1 = (t0 & f0) | (t1 & f1), (t0 & f1) | (t1 & f0)
        if op == OP_XNOR:
            t0, t1 = t1, t0
        m0[nid] = t0
        m1[nid] = t1


# ----------------------------------------------------------------------
# packed binary pattern simulation (learning signatures)
# ----------------------------------------------------------------------
class ArrayPatternEngine:
    """Resident single-plane pattern evaluator for one circuit.

    Owns everything :func:`simulate_patterns_array` used to rebuild per
    call: the compiled form, the array lowering, the gate/source row
    index vectors and a pool of value matrices keyed by word count.
    Fetched through the fingerprint-keyed :func:`pattern_engine` LRU,
    one engine serves every signature call for its circuit, so per-call
    setup amortizes to zero and mask packing/unpacking runs as one
    batched byte conversion instead of one bigint round-trip per node.

    The buffer pool hands a matrix out under the engine lock and takes
    it back afterwards; concurrent callers (the serve daemon threads)
    simply allocate a second matrix, so reuse is an optimization, never
    a correctness dependency.  Rows the evaluation reads are all
    rewritten each call (sources, the one-pad, TIE1 rows, every gate
    row) or are never written at all (the zero-pad and TIE0 rows stay
    all-zero from allocation), which is what makes pooling sound.
    """

    def __init__(self, circuit: Circuit):
        self.cc = compile_circuit(circuit)
        self.ac = array_form(circuit)
        self._lock = threading.Lock()
        self._pool: Dict[int, object] = {}
        if _np is not None:
            self.src_rows = _np.asarray(self.cc.required_sources,
                                        dtype=_np.intp)
            self.gate_rows = _np.asarray(self.cc.gate_nids,
                                         dtype=_np.intp)

    # ------------------------------------------------------------------
    def _take(self, words: int):
        with self._lock:
            V = self._pool.pop(words, None)
        if V is None:
            V = _np.zeros((self.ac.rows, words), dtype=_np.uint64)
        return V

    def _put(self, words: int, V) -> None:
        with self._lock:
            self._pool[words] = V

    # ------------------------------------------------------------------
    def simulate(self, source_masks: Dict[int, int],
                 width: int) -> Dict[int, int]:
        """Grouped numpy evaluation of one packed pattern set."""
        np = _np
        cc = self.cc
        ac = self.ac
        words = (width + 63) >> 6
        full_int = (1 << width) - 1
        wb = words * 8
        # Batched mask packing: one bytes blob for every source row.
        # The genexpr raises the contract KeyError on a missing source
        # before any state is touched.
        payload = b"".join(
            (source_masks[nid] & full_int).to_bytes(wb, "little")
            for nid in cc.required_sources)
        V = self._take(words)
        try:
            fullw = _int_to_words(full_int, words)
            V[ac.one_row] = fullw  # AND pad; zero pad rows stay 0
            if payload:
                V[self.src_rows] = np.frombuffer(
                    payload, dtype="<u8").astype(
                    np.uint64, copy=False).reshape(-1, words)
            for nid in ac.tie1:
                V[nid] = fullw
            for groups in ac.levels:
                for g in groups:
                    op = g.op
                    G = V[g.F2]
                    if op in _AND_LIKE:
                        acc = np.bitwise_and.reduce(G, axis=0)
                        if op == OP_NAND:
                            acc = fullw ^ acc
                    elif op in _OR_LIKE:
                        acc = np.bitwise_or.reduce(G, axis=0)
                        if op == OP_NOR:
                            acc = fullw ^ acc
                    elif op == OP_NOT:
                        acc = fullw ^ G[0]
                    elif op == OP_BUF:
                        acc = G[0]
                    else:  # XOR / XNOR
                        acc = np.bitwise_xor.reduce(G, axis=0)
                        if op == OP_XNOR:
                            acc = fullw ^ acc
                    V[g.out] = acc
            # Batched unpacking: one contiguous gather + tobytes for
            # all gate rows, then a bytes slice per node.
            raw = memoryview(V[self.gate_rows].astype(
                "<u8", copy=False).tobytes())
            masks = dict(source_masks)
            for k, nid in enumerate(cc.gate_nids):
                masks[nid] = int.from_bytes(
                    raw[k * wb:(k + 1) * wb], "little")
            return masks
        finally:
            self._put(words, V)


_PATTERN_LOCK = threading.Lock()
_PATTERN_CACHE: "OrderedDict[str, ArrayPatternEngine]" = OrderedDict()
_PATTERN_HITS = 0
_PATTERN_MISSES = 0


def pattern_engine(circuit: Circuit) -> ArrayPatternEngine:
    """Fetch (or build) the resident pattern engine for a circuit.

    Keyed by :meth:`~repro.circuit.netlist.Circuit.fingerprint` -- the
    same keying as the compiled-kernel LRU -- with hit/miss counters
    mirroring :meth:`ArrayFaultSimulator._plan_for`, surfaced through
    :func:`pattern_cache_stats`.  Requires the numpy substrate.
    """
    global _PATTERN_HITS, _PATTERN_MISSES
    if _np is None:
        raise ValueError("pattern_engine requires the numpy substrate")
    key = circuit.fingerprint()
    with _PATTERN_LOCK:
        engine = _PATTERN_CACHE.get(key)
        if engine is not None:
            _PATTERN_CACHE.move_to_end(key)
            _PATTERN_HITS += 1
            return engine
        _PATTERN_MISSES += 1
        engine = ArrayPatternEngine(circuit)
        _PATTERN_CACHE[key] = engine
        while len(_PATTERN_CACHE) > PATTERN_CACHE_CAP:
            _PATTERN_CACHE.popitem(last=False)
        return engine


def pattern_cache_stats() -> Dict[str, int]:
    """Counters of the resident pattern-engine LRU."""
    with _PATTERN_LOCK:
        return {"entries": len(_PATTERN_CACHE), "hits": _PATTERN_HITS,
                "misses": _PATTERN_MISSES, "cap": PATTERN_CACHE_CAP}


def clear_pattern_cache() -> None:
    """Drop resident pattern engines and reset the counters (tests)."""
    global _PATTERN_HITS, _PATTERN_MISSES
    with _PATTERN_LOCK:
        _PATTERN_CACHE.clear()
        _PATTERN_HITS = 0
        _PATTERN_MISSES = 0


def simulate_patterns_array(circuit: Circuit,
                            source_masks: Dict[int, int],
                            width: int,
                            use_numpy: Optional[bool] = None,
                            grouped: bool = False
                            ) -> Dict[int, int]:
    """Packed pattern evaluation through the resident array engine.

    Drop-in for :func:`repro.sim.parallel.simulate_patterns` (identical
    masks, identical ``KeyError`` on a missing source).  On the
    single-plane pattern workload the compiled straight-line kernels
    are the fastest substrate at *every* measured width -- the grouped
    matrix path's per-level gathers copy ``max_fanin * gates * words``
    words, so it scales worse with width, not better -- and the default
    route therefore always runs them, with the resident engine and the
    memoized fingerprint amortizing the lowering/setup that used to
    dominate narrow calls.  ``grouped=True`` forces the level-grouped
    numpy evaluation (the differential parity leg; bit-identical).
    Without numpy everything delegates to the compiled kernels (the
    bigint substrate has no cross-gate vectorization to offer here),
    and ``grouped=True`` is an error there.
    """
    if use_numpy is None:
        use_numpy = HAVE_NUMPY
    elif use_numpy and not HAVE_NUMPY:
        raise ValueError("use_numpy=True but numpy is not importable")
    if not use_numpy:
        if grouped:
            raise ValueError(
                "grouped=True requires the numpy substrate")
        return compile_circuit(circuit).simulate_patterns(
            source_masks, width)
    engine = pattern_engine(circuit)
    if not grouped:
        return engine.cc.simulate_patterns(source_masks, width)
    return engine.simulate(source_masks, width)
