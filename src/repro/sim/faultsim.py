"""Sequential stuck-at fault simulation, bit-parallel over faults.

Machine *i* of a packed word is the circuit with fault *i* injected; all
machines simulate the same test sequence from the all-X power-up state.
Three-valued signals are carried in two planes ``(m0, m1)`` -- bit i of
``m0`` set means machine i sees 0, bit i of ``m1`` means 1, neither means
X.  Python's big integers give an arbitrary word width.

Detection is the classic hard criterion: at some primary output in some
frame the good value and the faulty value are both known and differ.  The
good machine is simulated once (scalarly) and shared across batches.

Faults are duck-typed: any object with ``node`` (node id), ``pin``
(``None`` for an output/stem fault, else the fanin position for a branch
fault) and ``value`` (the stuck-at value) works; see
:class:`repro.atpg.faults.Fault`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import GateType, ONE, X, ZERO, eval_gate
from ..circuit.netlist import Circuit
from .eventsim import simulate_sequence

Plane = Tuple[int, int]


def _const_planes(value: int, full: int) -> Plane:
    if value == ZERO:
        return (full, 0)
    if value == ONE:
        return (0, full)
    return (0, 0)


def _eval_planes(gate_type: GateType, fanins: List[Plane],
                 full: int) -> Plane:
    """Bit-parallel three-valued gate evaluation."""
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        a0, a1 = 0, full
        for m0, m1 in fanins:
            a0 |= m0
            a1 &= m1
        return (a1, a0) if gate_type is GateType.NAND else (a0, a1)
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        a0, a1 = full, 0
        for m0, m1 in fanins:
            a0 &= m0
            a1 |= m1
        return (a1, a0) if gate_type is GateType.NOR else (a0, a1)
    if gate_type is GateType.NOT:
        m0, m1 = fanins[0]
        return (m1, m0)
    if gate_type is GateType.BUF:
        return fanins[0]
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        a0, a1 = full, 0
        for m0, m1 in fanins:
            n0 = (a0 & m0) | (a1 & m1)
            n1 = (a0 & m1) | (a1 & m0)
            a0, a1 = n0, n1
        return (a1, a0) if gate_type is GateType.XNOR else (a0, a1)
    if gate_type is GateType.TIE0:
        return (full, 0)
    if gate_type is GateType.TIE1:
        return (0, full)
    raise AssertionError(f"unexpected gate type {gate_type}")


class FaultSimulator:
    """Bit-parallel sequential fault simulator for one circuit."""

    def __init__(self, circuit: Circuit, width: int = 128):
        if width < 1:
            raise ValueError(f"word width must be >= 1, got {width}")
        self.circuit = circuit
        self.width = width

    # ------------------------------------------------------------------
    def detected(self, sequence: Sequence[Dict[str, int]],
                 faults: Sequence) -> Set[int]:
        """Indices (into ``faults``) detected by ``sequence``.

        An empty fault list or an empty sequence detects nothing (and
        skips the good-machine simulation).
        """
        sequence = list(sequence)
        if not faults or not sequence:
            return set()
        good_frames = simulate_sequence(self.circuit, sequence)
        hit: Set[int] = set()
        for start in range(0, len(faults), self.width):
            batch = list(faults[start:start + self.width])
            for local in self._run_batch(sequence, batch, good_frames):
                hit.add(start + local)
        return hit

    # ------------------------------------------------------------------
    def _run_batch(self, sequence: Sequence[Dict[str, int]],
                   batch: List, good_frames: List[Dict[str, int]]
                   ) -> Set[int]:
        circuit = self.circuit
        # The word width is the *live* batch length, never the
        # configured ``self.width``: the last batch of a fault list is
        # usually narrower, and sizing ``full`` to it means the two
        # planes carry no ghost machines (bits beyond the live fault
        # count) that could leak into detection or the all-detected
        # drop test below.  ``tests/test_backend_edges.py``
        # (test_partial_final_batch_*) holds every backend to this.
        width = len(batch)
        full = (1 << width) - 1
        out_faults: Dict[int, List[Tuple[int, int]]] = {}
        pin_faults: Dict[int, List[Tuple[int, int, int]]] = {}
        for i, fault in enumerate(batch):
            if fault.pin is None:
                out_faults.setdefault(fault.node, []).append((i, fault.value))
            else:
                pin_faults.setdefault(fault.node, []).append(
                    (i, fault.pin, fault.value))
        state: Dict[int, Plane] = {}
        detected: Set[int] = set()
        detected_mask = 0
        name_of = [n.name for n in circuit.nodes]
        for frame, vector in enumerate(sequence):
            planes: Dict[int, Plane] = {}
            for pid in circuit.inputs:
                value = vector.get(name_of[pid], X)
                planes[pid] = _const_planes(value, full)
            for fid in circuit.ffs:
                planes[fid] = state.get(fid, (0, 0))
            # Faults on PIs / FF outputs apply before gate evaluation.
            for nid in list(circuit.inputs) + list(circuit.ffs):
                if nid in out_faults:
                    planes[nid] = self._force(planes[nid], out_faults[nid])
            for nid in circuit.topo_order:
                node = circuit.nodes[nid]
                fanin_planes = [planes[f] for f in node.fanins]
                value = _eval_planes(node.gate_type, fanin_planes, full)
                if nid in pin_faults:
                    value = self._pin_fixup(node, fanin_planes, value,
                                            pin_faults[nid])
                if nid in out_faults:
                    value = self._force(value, out_faults[nid])
                planes[nid] = value
            # Detection at primary outputs.
            good = good_frames[frame]
            for oid in circuit.outputs:
                gv = good[name_of[oid]]
                if gv == X:
                    continue
                m0, m1 = planes[oid]
                diff = m1 if gv == ZERO else m0
                bits = diff & ~detected_mask
                detected_mask |= bits
                while bits:
                    low = bits & -bits
                    detected.add(low.bit_length() - 1)
                    bits ^= low
            # Frame boundary.  A stuck FF data input (FFs are not in the
            # topo order) captures the stuck value in its machine.
            next_state: Dict[int, Plane] = {}
            for fid in circuit.ffs:
                plane = planes[circuit.nodes[fid].fanins[0]]
                if fid in pin_faults:
                    plane = self._force(
                        plane, [(i, v) for i, _p, v in pin_faults[fid]])
                next_state[fid] = plane
            state = next_state
        return detected

    @staticmethod
    def _force(plane: Plane, forces: List[Tuple[int, int]]) -> Plane:
        m0, m1 = plane
        for bit_index, value in forces:
            bit = 1 << bit_index
            if value == ZERO:
                m0 |= bit
                m1 &= ~bit
            else:
                m1 |= bit
                m0 &= ~bit
        return (m0, m1)

    def _pin_fixup(self, node, fanin_planes: List[Plane], value: Plane,
                   pins: List[Tuple[int, int, int]]) -> Plane:
        """Re-evaluate a gate scalarly for machines with branch faults."""
        m0, m1 = value
        for bit_index, pin, forced in pins:
            bit = 1 << bit_index
            scalar = []
            for idx, (f0, f1) in enumerate(fanin_planes):
                if idx == pin:
                    scalar.append(forced)
                elif f0 & bit:
                    scalar.append(ZERO)
                elif f1 & bit:
                    scalar.append(ONE)
                else:
                    scalar.append(X)
            out = eval_gate(node.gate_type, scalar)
            m0 &= ~bit
            m1 &= ~bit
            if out == ZERO:
                m0 |= bit
            elif out == ONE:
                m1 |= bit
        return (m0, m1)


def fault_simulate(circuit: Circuit, sequence: Sequence[Dict[str, int]],
                   faults: Sequence, width: int = 128) -> Set[int]:
    """Convenience wrapper: indices of ``faults`` detected by ``sequence``."""
    return FaultSimulator(circuit, width=width).detected(sequence, faults)


def fault_coverage(circuit: Circuit,
                   sequences: Iterable[Sequence[Dict[str, int]]],
                   faults: Sequence, width: Optional[int] = None,
                   backend: str = "reference") -> float:
    """Fraction of ``faults`` detected by any of the ``sequences``.

    ``backend='compiled'`` grades through the straight-line kernels of
    :mod:`repro.sim.compiled`, ``backend='array'`` through the
    level-vectorized kernels of :mod:`repro.sim.array_backend`;
    coverage is identical any way.  ``width=None`` takes the backend's
    default batch width (coverage never depends on batch packing).
    """
    from .compiled import make_fault_simulator

    sim = make_fault_simulator(circuit, width=width, backend=backend)
    hit: Set[int] = set()
    for sequence in sequences:
        remaining = [i for i in range(len(faults)) if i not in hit]
        if not remaining:
            break
        subset = [faults[i] for i in remaining]
        for local in sim.detected(sequence, subset):
            hit.add(remaining[local])
    return len(hit) / len(faults) if faults else 1.0
