"""Simulation substrates: event-driven 3-valued, bit-parallel, fault sim."""

from .array_backend import (
    HAVE_NUMPY,
    ArrayCircuit,
    ArrayFaultSimulator,
    ArrayPatternEngine,
    array_form,
    clear_pattern_cache,
    pattern_cache_stats,
    pattern_engine,
    simulate_patterns_array,
)
from .compiled import (
    SIM_BACKENDS,
    CompiledCircuit,
    CompiledFaultSimulator,
    clear_compile_cache,
    compile_cache_stats,
    compile_circuit,
    make_fault_simulator,
    warm_cache,
)
from .eventsim import (
    Assignment,
    Conflict,
    Coupling,
    FrameSimulator,
    InjectionResult,
    simulate_sequence,
)
from .faultsim import FaultSimulator, fault_coverage, fault_simulate
from .parallel import (
    exhaustive_masks,
    pack_patterns,
    random_source_masks,
    signatures,
    simulate_patterns,
)
from .resident import (
    ArrayResidentDropper,
    SubsetResidentDropper,
    make_resident_dropper,
)
from .values import (
    V0,
    V1,
    VD,
    VDBAR,
    VX,
    composite_name,
    is_fault_effect,
)

__all__ = [
    "HAVE_NUMPY", "ArrayCircuit", "ArrayFaultSimulator",
    "ArrayPatternEngine", "array_form", "clear_pattern_cache",
    "pattern_cache_stats", "pattern_engine", "simulate_patterns_array",
    "ArrayResidentDropper", "SubsetResidentDropper",
    "make_resident_dropper",
    "SIM_BACKENDS", "CompiledCircuit", "CompiledFaultSimulator",
    "clear_compile_cache", "compile_cache_stats", "compile_circuit",
    "make_fault_simulator",
    "warm_cache",
    "Assignment", "Conflict", "Coupling", "FrameSimulator",
    "InjectionResult", "simulate_sequence",
    "FaultSimulator", "fault_coverage", "fault_simulate",
    "exhaustive_masks", "pack_patterns", "random_source_masks",
    "signatures", "simulate_patterns",
    "V0", "V1", "VD", "VDBAR", "VX", "composite_name", "is_fault_effect",
]
