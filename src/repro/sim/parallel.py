"""Bit-parallel pattern simulation of the combinational logic.

Used for gate-equivalence candidate identification (paper section 3.1):
N random binary patterns are applied to the pseudo-primary inputs (PIs and
FF outputs) and every gate's response signature is computed with bitwise
operations, N patterns at a time.  Python's arbitrary-precision integers
make the word width a free parameter.

Values here are strictly binary -- X plays no role because equivalence is
a property of the Boolean functions.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit


def simulate_patterns(circuit: Circuit,
                      source_masks: Dict[int, int],
                      width: int) -> Dict[int, int]:
    """Evaluate all combinational gates over packed binary patterns.

    ``source_masks`` maps every PI and FF-output node id to an N-bit mask
    (bit i = value of that signal in pattern i).  Returns masks for every
    node.  Raises ``KeyError`` if a needed source is missing.
    """
    full = (1 << width) - 1
    masks: Dict[int, int] = dict(source_masks)
    for nid in circuit.topo_order:
        node = circuit.nodes[nid]
        t = node.gate_type
        if t is GateType.TIE0:
            masks[nid] = 0
            continue
        if t is GateType.TIE1:
            masks[nid] = full
            continue
        fanin_masks = [masks[f] for f in node.fanins]
        if t is GateType.AND or t is GateType.NAND:
            acc = full
            for m in fanin_masks:
                acc &= m
            masks[nid] = (acc ^ full) if t is GateType.NAND else acc
        elif t is GateType.OR or t is GateType.NOR:
            acc = 0
            for m in fanin_masks:
                acc |= m
            masks[nid] = (acc ^ full) if t is GateType.NOR else acc
        elif t is GateType.NOT:
            masks[nid] = fanin_masks[0] ^ full
        elif t is GateType.BUF:
            masks[nid] = fanin_masks[0]
        elif t is GateType.XOR or t is GateType.XNOR:
            acc = 0
            for m in fanin_masks:
                acc ^= m
            masks[nid] = (acc ^ full) if t is GateType.XNOR else acc
        else:  # pragma: no cover - topo_order holds only combinational
            raise AssertionError(f"unexpected gate in topo order: {node}")
    return masks


def random_source_masks(circuit: Circuit, width: int,
                        rng: Optional[random.Random] = None
                        ) -> Dict[int, int]:
    """Random packed patterns for every PI and FF output."""
    rng = rng or random.Random(0x5E0)
    masks = {}
    for nid in list(circuit.inputs) + list(circuit.ffs):
        masks[nid] = rng.getrandbits(width)
    return masks


def signatures(circuit: Circuit, width: int = 256,
               rng: Optional[random.Random] = None,
               backend: str = "reference") -> Dict[int, int]:
    """Random-pattern signature of every node (PIs/FFs included).

    ``backend='compiled'`` evaluates through the straight-line kernels
    of :mod:`repro.sim.compiled`, ``backend='array'`` through the
    level-vectorized kernels of :mod:`repro.sim.array_backend`; masks
    are bit-identical any way.
    """
    rng = rng or random.Random(20260611)
    source = random_source_masks(circuit, width, rng)
    if backend == "compiled":
        from .compiled import compile_circuit

        return compile_circuit(circuit).simulate_patterns(source, width)
    if backend == "array":
        from .array_backend import simulate_patterns_array

        return simulate_patterns_array(circuit, source, width)
    if backend != "reference":
        from .compiled import SIM_BACKENDS

        raise ValueError(f"unknown sim backend {backend!r}; "
                         f"expected one of {SIM_BACKENDS}")
    return simulate_patterns(circuit, source, width)


def exhaustive_masks(variables: Sequence[int], width: int
                     ) -> Dict[int, int]:
    """Packed truth-table columns: pattern i assigns bit i of each var.

    ``width`` must be ``2 ** len(variables)``; variable j's mask has bit i
    set iff (i >> j) & 1.  Used for exact equivalence verification over a
    small support.
    """
    assert width == 1 << len(variables)
    masks = {}
    for j, var in enumerate(variables):
        mask = 0
        for i in range(width):
            if (i >> j) & 1:
                mask |= 1 << i
        masks[var] = mask
    return masks


def pack_patterns(circuit: Circuit,
                  vectors: List[Dict[str, int]]) -> Dict[int, int]:
    """Pack explicit binary vectors (by signal name) into source masks."""
    masks: Dict[int, int] = {nid: 0
                             for nid in list(circuit.inputs) + list(circuit.ffs)}
    for i, vec in enumerate(vectors):
        for name, value in vec.items():
            nid = circuit.nid(name)
            if value:
                masks[nid] |= 1 << i
    return masks
