"""Explicit state-space analysis for small circuits.

Reference [9] of the paper shows sequential ATPG complexity tracks the
*density of encoding* -- the ratio of valid states to all 2^n states.
Retiming lowers it, which is why the paper's retimed circuits are the
hardest ATPG cases and the biggest learning wins.

For circuits with a handful of FFs we can compute the metric exactly by
explicit image iteration: starting from *all* 2^n states (power-up is
arbitrary), repeatedly apply the transition function under every input
vector; the limit cycle union is the set of states the circuit can still
occupy after arbitrarily long operation.  Invalid-state relations learned
by the paper's technique must hold on every such state -- the test suite
uses this as an exact oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..circuit.gates import GateType, ONE, X, ZERO, eval_gate
from ..circuit.netlist import Circuit


@dataclass
class StateSpace:
    """Result of explicit reachability analysis."""

    circuit_name: str
    num_ffs: int
    #: States (as bit tuples, FF order = circuit.ffs) surviving image
    #: iteration from the full state set.
    valid_states: FrozenSet[Tuple[int, ...]]

    @property
    def density_of_encoding(self) -> float:
        """|valid| / 2^n -- the paper's (ref [9]) complexity indicator."""
        return len(self.valid_states) / float(1 << self.num_ffs)

    def is_valid(self, state: Tuple[int, ...]) -> bool:
        return state in self.valid_states


def _transition(circuit: Circuit, state: Tuple[int, ...],
                inputs: Tuple[int, ...]) -> Tuple[int, ...]:
    """Next state under a fully specified input vector."""
    values: Dict[int, int] = {}
    for pid, val in zip(circuit.inputs, inputs):
        values[pid] = val
    for fid, val in zip(circuit.ffs, state):
        values[fid] = val
    for nid in circuit.topo_order:
        node = circuit.nodes[nid]
        if node.gate_type is GateType.TIE0:
            values[nid] = ZERO
        elif node.gate_type is GateType.TIE1:
            values[nid] = ONE
        else:
            values[nid] = eval_gate(node.gate_type,
                                    [values[f] for f in node.fanins])
    return tuple(values[circuit.nodes[f].fanins[0]] for f in circuit.ffs)


def analyze_state_space(circuit: Circuit, max_ffs: int = 16,
                        max_iterations: int = 10_000) -> StateSpace:
    """Exact valid-state set by image iteration from all states.

    ``S_{k+1} = Image(S_k)``; the iteration reaches a fixpoint set that
    every long-running execution stays inside.  Exponential in FF count,
    so guarded by ``max_ffs``.
    """
    n = circuit.num_ffs
    if n > max_ffs:
        raise ValueError(
            f"{circuit.name} has {n} FFs; explicit analysis capped at "
            f"{max_ffs}")
    input_vectors = list(product((0, 1), repeat=len(circuit.inputs)))
    current: Set[Tuple[int, ...]] = set(product((0, 1), repeat=n))
    history: Dict[FrozenSet[Tuple[int, ...]], int] = {}
    trail: List[FrozenSet[Tuple[int, ...]]] = []
    for iteration in range(max_iterations):
        key = frozenset(current)
        if key in history:
            # The set sequence entered a cycle; the persistent envelope
            # is the union of the cycle members.
            cycle = trail[history[key]:]
            current = set().union(*cycle)
            break
        history[key] = len(trail)
        trail.append(key)
        image: Set[Tuple[int, ...]] = set()
        for state in current:
            for vector in input_vectors:
                image.add(_transition(circuit, state, vector))
        current = image
    return StateSpace(circuit_name=circuit.name, num_ffs=n,
                      valid_states=frozenset(current))


def reachable_from(circuit: Circuit, initial: Tuple[int, ...],
                   max_ffs: int = 16) -> FrozenSet[Tuple[int, ...]]:
    """Classic reachable set from one known initial state (BFS)."""
    if circuit.num_ffs > max_ffs:
        raise ValueError("too many FFs for explicit reachability")
    input_vectors = list(product((0, 1), repeat=len(circuit.inputs)))
    seen: Set[Tuple[int, ...]] = {initial}
    frontier = [initial]
    while frontier:
        state = frontier.pop()
        for vector in input_vectors:
            nxt = _transition(circuit, state, vector)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def check_relations_exact(circuit: Circuit, relations,
                          space: Optional[StateSpace] = None
                          ) -> List[str]:
    """Exact oracle: every FF-FF relation must hold on every valid state.

    Returns violation descriptions (empty = all hold).  Only meaningful
    for small circuits; the Monte-Carlo validator covers the rest.
    """
    if space is None:
        space = analyze_state_space(circuit)
    index_of = {fid: i for i, fid in enumerate(circuit.ffs)}
    violations = []
    for relation in relations:
        if relation.a not in index_of or relation.b not in index_of:
            continue
        ia, ib = index_of[relation.a], index_of[relation.b]
        for state in space.valid_states:
            if state[ia] == relation.va and state[ib] != relation.vb:
                na = circuit.nodes[relation.a].name
                nb = circuit.nodes[relation.b].name
                violations.append(
                    f"state {state}: {na}={relation.va} but "
                    f"{nb}={state[ib]} (relation wants {relation.vb})")
                break
    return violations
