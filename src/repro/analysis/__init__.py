"""State-space analysis: density of encoding, exact relation oracle."""

from .reachability import (
    StateSpace,
    analyze_state_space,
    check_relations_exact,
    reachable_from,
)

__all__ = [
    "StateSpace", "analyze_state_space", "check_relations_exact",
    "reachable_from",
]
