"""Wire protocol of the distributed tier: endpoints + a tiny client.

The coordinator speaks JSON over HTTP on a handful of fixed paths
(stdlib ``http.server`` on one side, ``http.client`` on the other --
no dependencies, same idiom as :mod:`repro.api.server`):

``POST /v1/dist/lease``
    Body ``{"worker_id"}``.  Pull scheduling *is* the work stealing:
    an idle worker asks, the coordinator answers with the next ready
    unit -- or a duplicate lease on a straggler's unit when nothing is
    pending.  Answer: ``{"unit": {"unit_id", "request"}, "lease_
    timeout_s", "heartbeat_s"}``, or ``{"unit": null, "done": bool,
    "retry_after": s}``.

``POST /v1/dist/complete``
    Body ``{"worker_id", "unit_id", "response": <envelope>}`` where
    ``response`` is the versioned envelope ``repro.api.execute``
    produced for the unit's request.  First completion wins;
    duplicates answer ``{"accepted": false, "duplicate": true}``.

``POST /v1/dist/heartbeat``
    Body ``{"worker_id", "unit_id"}``; extends the lease deadline.

``GET /v1/dist/status``
    Scheduler counters (pending / leased / completed / failed).

``GET/PUT /v1/artifacts/<digest>``
    The fleet-shared artifact cache: raw learn-artifact JSON bytes,
    addressed by :func:`repro.api.store.learn_digest`.

``GET /v1/health``
    Liveness + scheduler + artifact-store statistics.

Unit requests are ordinary :mod:`repro.api.requests` documents (kinds
``learn`` and ``shard``), so a worker is just ``execute()`` behind a
lease loop -- the dist tier adds scheduling, not a second vocabulary.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Dict, Optional, Tuple

__all__ = [
    "LEASE_PATH", "COMPLETE_PATH", "HEARTBEAT_PATH", "STATUS_PATH",
    "HEALTH_PATH", "ARTIFACT_PREFIX", "artifact_path", "http_json",
    "http_bytes",
]

LEASE_PATH = "/v1/dist/lease"
COMPLETE_PATH = "/v1/dist/complete"
HEARTBEAT_PATH = "/v1/dist/heartbeat"
STATUS_PATH = "/v1/dist/status"
HEALTH_PATH = "/v1/health"
ARTIFACT_PREFIX = "/v1/artifacts/"


def artifact_path(digest: str) -> str:
    """URL path of one artifact digest."""
    return ARTIFACT_PREFIX + digest


def http_bytes(method: str, base_url: str, path: str,
               body: Optional[bytes] = None,
               content_type: str = "application/json",
               timeout: float = 30.0) -> Tuple[int, bytes]:
    """One HTTP exchange, raw bytes in and out.

    Raises ``OSError`` (connection refused, timeout, reset) for
    transport failures; HTTP-level errors come back as the status code.

    ``http.client`` reports some transport failures through its own
    hierarchy instead -- ``BadStatusLine`` on a garbled response,
    ``IncompleteRead`` on a mid-body disconnect -- and those are *not*
    ``OSError`` subclasses, so they are normalized here.  Every caller
    in the dist tier (worker loop, :class:`~repro.dist.cache.
    RemoteStore`) handles transport failure with ``except OSError``;
    without this, a half-dead coordinator could raise straight through
    a worker's lease loop.
    """
    parsed = urllib.parse.urlsplit(base_url)
    connection = http.client.HTTPConnection(
        parsed.hostname or "127.0.0.1", parsed.port, timeout=timeout)
    try:
        headers = {}
        if body is not None:
            headers["Content-Type"] = content_type
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    except http.client.HTTPException as exc:
        raise OSError(
            f"{type(exc).__name__}: {exc}") from exc
    finally:
        connection.close()


def http_json(method: str, base_url: str, path: str,
              payload: Optional[Dict[str, object]] = None,
              timeout: float = 30.0
              ) -> Tuple[int, Optional[Dict[str, object]]]:
    """One JSON-over-HTTP exchange against the coordinator."""
    body = (None if payload is None
            else json.dumps(payload).encode())
    status, raw = http_bytes(method, base_url, path, body=body,
                             timeout=timeout)
    if not raw:
        return status, None
    try:
        return status, json.loads(raw.decode())
    except (UnicodeDecodeError, ValueError):
        return status, None
