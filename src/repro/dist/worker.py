"""``repro worker`` -- lease units, execute them, report back.

A worker is deliberately thin: it pulls a unit from the coordinator,
runs the unit's request document through the ordinary
:func:`repro.api.execute` (with a :class:`~repro.dist.cache.RemoteStore`
so learn artifacts flow through the fleet-shared cache automatically),
and POSTs the resulting envelope back.  Everything interesting --
scheduling, retries, stealing, merging -- lives on the coordinator;
a worker can be killed at any moment and the job still converges.

While a unit runs, a background thread heartbeats its lease at the
cadence the coordinator asked for, so long PODEM stages on slow
machines do not look like worker death.  SIGTERM (and SIGINT) request a
graceful drain: the current unit finishes and its result is delivered,
then the loop exits instead of leasing more -- exactly what a scale-in
or Ctrl-C should do.

``repro worker --jobs N`` forks N single-threaded worker processes
(N=0 meaning one per CPU core via the shared
:func:`~repro.flow.config.normalize_jobs` rule), each with its own
process-wide kernel cache, all hitting the same coordinator.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
import uuid
from typing import Dict, Optional

from ..flow.config import normalize_jobs
from ..api.executor import execute
from ..api.store import ArtifactStore
from .cache import RemoteStore
from .protocol import (
    COMPLETE_PATH,
    HEARTBEAT_PATH,
    LEASE_PATH,
    http_json,
)

__all__ = ["WorkerLoop", "run_worker"]


class WorkerLoop:
    """One worker: a lease/execute/complete loop against a coordinator.

    Usable in-process (the dist tests run several loops on threads
    against one coordinator) or as the body of a ``repro worker``
    process.  :meth:`stop` requests a graceful drain; the loop also
    ends on its own when the coordinator reports the job done or
    becomes unreachable for ``max_idle_s``.
    """

    def __init__(self, coordinator_url: str,
                 store: Optional[ArtifactStore] = None,
                 worker_id: Optional[str] = None,
                 poll_s: float = 0.1,
                 max_idle_s: float = 60.0,
                 timeout: float = 30.0,
                 announce=None):
        self.url = coordinator_url.rstrip("/")
        self.store = (store if store is not None
                      else RemoteStore(self.url, timeout=timeout))
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        self.poll_s = poll_s
        self.max_idle_s = max_idle_s
        self.timeout = timeout
        self.announce = announce
        self.units_completed = 0
        self.units_failed = 0
        #: Heartbeat POSTs that failed in transport.  A missed beat only
        #: shortens the lease, but a *streak* of them means the
        #: coordinator may already have reaped and re-leased the unit
        #: this worker is still burning CPU on -- so failures are
        #: counted (and announced once per lease), never swallowed.
        self.heartbeat_errors = 0
        #: Counted degrade paths (the R006 taxonomy): failures the loop
        #: survives are tallied per short code -- ``io`` for transport
        #: trouble -- so a drain summary can show what was absorbed
        #: instead of the errors vanishing into a log nobody reads.
        self.degrade_counts: Dict[str, int] = {}
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def _degrade(self, code: str, message: str) -> None:
        """Count a survivable failure and announce it (the counted
        degrade path; every absorbed error must pass through here)."""
        self.degrade_counts[code] = self.degrade_counts.get(code, 0) + 1
        if self.announce is not None:
            self.announce(
                f"repro worker {self.worker_id}: [{code}] {message}")

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request a graceful drain (finish the current unit, exit)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    def _execute_with_heartbeats(self, unit_id: str,
                                 request: Dict[str, object],
                                 heartbeat_s: float) -> Dict[str, object]:
        done = threading.Event()

        def beat() -> None:
            warned = False
            while not done.wait(heartbeat_s):
                try:
                    http_json("POST", self.url, HEARTBEAT_PATH,
                              {"worker_id": self.worker_id,
                               "unit_id": unit_id},
                              timeout=self.timeout)
                except OSError as exc:
                    # A missed beat shortens the lease; a dead heartbeat
                    # lets the coordinator reap and re-lease the unit
                    # while this worker keeps computing it.  Count every
                    # failure, announce the first one per lease.
                    self.heartbeat_errors += 1
                    if not warned:
                        warned = True
                        self._degrade(
                            "io",
                            f"heartbeat for unit {unit_id} failed "
                            f"({exc}); lease may be reaped")

        beater = threading.Thread(target=beat, daemon=True,
                                  name=f"repro-worker-beat-{unit_id}")
        beater.start()
        try:
            # execute() never raises for request faults: a failing unit
            # comes back as an error envelope the coordinator can
            # attribute and retry.
            return execute(request, store=self.store).envelope()
        finally:
            done.set()
            beater.join(timeout=1.0)

    def run_one(self) -> str:
        """One scheduling step.  Returns what happened:
        ``'ran'`` | ``'idle'`` | ``'done'`` | ``'unreachable'``."""
        try:
            status, lease = http_json(
                "POST", self.url, LEASE_PATH,
                {"worker_id": self.worker_id}, timeout=self.timeout)
        except OSError:
            return "unreachable"
        if status != 200 or not isinstance(lease, dict):
            return "unreachable"
        unit = lease.get("unit")
        if unit is None:
            return "done" if lease.get("done") else "idle"
        unit_id = str(unit["unit_id"])
        envelope = self._execute_with_heartbeats(
            unit_id, unit["request"],
            float(lease.get("heartbeat_s", 1.0)))
        if envelope.get("ok"):
            self.units_completed += 1
        else:
            self.units_failed += 1
        try:
            http_json("POST", self.url, COMPLETE_PATH,
                      {"worker_id": self.worker_id, "unit_id": unit_id,
                       "response": envelope}, timeout=self.timeout)
        except OSError:
            return "unreachable"
        return "ran"

    def run(self) -> int:
        """Loop until the job is done, a drain is requested, or the
        coordinator stays unreachable; returns units completed."""
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            step = self.run_one()
            if step == "done":
                break
            if step == "ran":
                idle_since = None
                continue
            # idle (nothing leasable yet) or unreachable: back off, and
            # give up if it persists -- a worker must not outlive its
            # coordinator forever.
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since > self.max_idle_s:
                break
            self._stop.wait(self.poll_s)
        return self.units_completed


def _worker_process_main(url: str, store_dir: Optional[str]) -> None:
    loop = WorkerLoop(url, store=RemoteStore(url, root=store_dir))
    signal.signal(signal.SIGTERM, lambda *_: loop.stop())
    signal.signal(signal.SIGINT, lambda *_: loop.stop())
    loop.run()


def run_worker(coordinator_url: str, jobs: int = 1,
               store_dir: Optional[str] = None,
               announce=None) -> int:
    """Run ``jobs`` worker processes against a coordinator (the
    ``repro worker`` command); returns a process exit code.

    ``jobs=1`` runs the loop in this process (graceful SIGTERM/SIGINT
    drain installed); ``jobs=0`` means one worker per CPU core.  With
    several jobs, each worker is a separate process with its own
    compiled-kernel cache, and a SIGTERM to this parent drains all of
    them.
    """
    jobs = normalize_jobs(jobs)
    if announce is not None:
        announce(f"repro worker: {jobs} worker(s) -> {coordinator_url} "
                 f"(store: {store_dir or 'in-memory'})")
    if jobs == 1:
        loop = WorkerLoop(coordinator_url,
                          store=RemoteStore(coordinator_url,
                                            root=store_dir),
                          announce=announce)
        try:
            signal.signal(signal.SIGTERM, lambda *_: loop.stop())
        except ValueError:
            pass  # not the main thread (tests); stop() still works
        try:
            loop.run()
        except KeyboardInterrupt:
            # Ctrl-C mid-unit: the loop is already out of its run()
            # body, so there is nothing left to drain -- but say so
            # instead of exiting silently.
            loop.stop()
            if announce is not None:
                announce("repro worker: interrupted, draining")
        if announce is not None:
            degraded = "".join(
                f", {count} degraded [{code}]"
                for code, count in sorted(loop.degrade_counts.items()))
            announce(f"repro worker: drained after "
                     f"{loop.units_completed} unit(s), "
                     f"{loop.units_failed} failed, "
                     f"{loop.heartbeat_errors} heartbeat error(s)"
                     f"{degraded}")
        return 0
    ctx = multiprocessing.get_context()
    processes = [ctx.Process(target=_worker_process_main,
                             args=(coordinator_url, store_dir),
                             daemon=False)
                 for _ in range(jobs)]
    for process in processes:
        process.start()

    def drain(*_) -> None:
        for process in processes:
            if process.is_alive():
                process.terminate()  # children trap SIGTERM and drain

    try:
        signal.signal(signal.SIGTERM, drain)
    except ValueError:
        pass  # not the main thread (tests); Ctrl-C drain below still works
    try:
        for process in processes:
            process.join()
    except KeyboardInterrupt:
        drain()
        for process in processes:
            process.join()
    if announce is not None:
        announce(f"repro worker: all {jobs} worker(s) exited")
    return 0
