"""Fleet-shared artifact cache: a network tier behind ArtifactStore.

A worker's :class:`RemoteStore` is an ordinary
:class:`~repro.api.store.ArtifactStore` (memory + optional local disk)
with one more tier: on a local miss it fetches the artifact's raw JSON
from the coordinator (``GET /v1/artifacts/<digest>``), and every local
put is mirrored up (``PUT``), so learning for a digest happens once
*fleet-wide* -- the first worker to need it computes and uploads, every
later worker (and the coordinator's merge) downloads.

The network tier is strictly best-effort: transport failures count in
``remote_errors`` and degrade to local behavior (recompute locally,
skip the upload).  Correctness never depends on the cache -- digests
embed circuit fingerprint + config, and downloads re-validate against
the live circuit exactly like a local disk hit.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..circuit.netlist import Circuit
from ..core.engine import LearnResult
from ..flow.serialize import (
    ArtifactError,
    learn_result_from_dict,
    learn_result_to_dict,
)
from ..api.store import ArtifactStore
from .protocol import artifact_path, http_bytes

__all__ = ["RemoteStore"]


class RemoteStore(ArtifactStore):
    """ArtifactStore with a coordinator-backed network tier."""

    def __init__(self, base_url: str, root: Optional[str] = None,
                 keep_in_memory: bool = True, timeout: float = 30.0):
        super().__init__(root=root, keep_in_memory=keep_in_memory)
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_puts = 0
        self.remote_errors = 0

    # ------------------------------------------------------------------
    def get_learn(self, digest: str,
                  circuit: Circuit) -> Optional[LearnResult]:
        hit = super().get_learn(digest, circuit)
        if hit is not None:
            return hit
        try:
            status, payload = http_bytes(
                "GET", self.base_url, artifact_path(digest),
                timeout=self.timeout)
        except OSError:
            with self._lock:
                self.remote_errors += 1
            return None
        if status != 200:
            with self._lock:
                self.remote_misses += 1
            return None
        try:
            data = json.loads(payload.decode())
            result = learn_result_from_dict(data, circuit,
                                            expect_digest=digest)
        except (UnicodeDecodeError, ValueError, ArtifactError):
            # A corrupt download is a miss, same contract as a corrupt
            # disk file: recompute, never fail the request.
            with self._lock:
                self.remote_errors += 1
            return None
        with self._lock:
            self.remote_hits += 1
        # Warm the local tiers without re-uploading what we just
        # downloaded (hence super(), not self).
        super().put_learn(digest, result)
        return result

    def put_learn(self, digest: str, result: LearnResult) -> None:
        super().put_learn(digest, result)
        payload = (json.dumps(
            learn_result_to_dict(result, digest=digest),
            indent=1) + "\n").encode()
        try:
            status, _ = http_bytes("PUT", self.base_url,
                                   artifact_path(digest), body=payload,
                                   timeout=self.timeout)
        except OSError:
            status = None
        with self._lock:
            if status == 200:
                self.remote_puts += 1
            else:
                self.remote_errors += 1

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        out = super().stats()
        with self._lock:
            out.update({
                "remote_hits": self.remote_hits,
                "remote_misses": self.remote_misses,
                "remote_puts": self.remote_puts,
                "remote_errors": self.remote_errors,
            })
        return out
