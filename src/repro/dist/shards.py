"""Fault-list sharding: split one circuit's ATPG across many workers.

:mod:`repro.flow.parallel_suite` shards at *circuit* granularity, so a
single huge circuit still serializes on one core.  This module splits
one circuit's collapsed fault list into deterministic
:class:`FaultShard` units whose results merge back into
:class:`~repro.atpg.driver.ATPGStats` **byte-identical** to a serial
:func:`~repro.atpg.driver.run_atpg` -- the contract the differential
tests gate on.

The serial algorithm is inherently sequential in one place only: after
each generated test, the sequence is random-filled (from a shared RNG)
and fault-simulated against every still-open fault, dropping collateral
detections -- so *which* faults ever get targeted depends on the order
of prior detections.  The distributed scheme therefore splits the work
in two phases:

1. **Speculative generation** (:func:`run_fault_shard`, parallel): each
   shard runs PODEM for *every* fault in its slice, unconditionally, and
   records the raw per-fault :class:`FaultOutcome` (status, decisions,
   backtracks, unfilled sequence).  ``generate(fault)`` is a pure
   function of (circuit, learned knowledge, config, fault) -- per-fault
   results do not depend on generation order -- so shards compute the
   same outcomes a serial run would have, for a superset of the faults
   a serial run targets.
2. **Deterministic replay merge** (:func:`merge_shard_outcomes`): the
   serial loop runs again -- the *actual* loop in ``run_atpg``, via its
   ``generate`` injection point, not a copy -- with generation replaced
   by outcome lookup.  Fill RNG draws, fault-dropping order, collateral
   accounting and abort counting all happen exactly as in a serial run,
   so the merged statistics are equal field-for-field, generated
   vectors included.

The speculation cost is bounded: a serial run skips generation for
faults already dropped by earlier tests, a shard does not.  That waste
buys order-independence -- and PODEM generation dominates fault
simulation on the paper's circuits, so sharding still wins wall-clock
(see ``benchmarks/bench_dist.py``).

:func:`run_atpg_sharded` wires both phases together in-process; it is
the reference implementation the coordinator/worker runtime
(:mod:`repro.dist.coordinator`) distributes over TCP, and the anchor
the differential tests compare against serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..atpg.driver import (
    ATPGStats,
    prepare_fault_list,
    run_atpg,
    tie_untestable_indices,
)
from ..atpg.engine import TestResult, make_atpg
from ..atpg.faults import Fault, partition_fault_indices
from ..circuit.netlist import Circuit
from ..core.engine import LearnResult
from ..flow.config import ATPGConfig

__all__ = [
    "FaultShard", "FaultOutcome", "make_fault_shards",
    "run_fault_shard", "merge_shard_outcomes", "run_atpg_sharded",
    "MissingOutcomeError",
]


class MissingOutcomeError(KeyError):
    """A strict merge needed an outcome no shard provided."""


@dataclass(frozen=True)
class FaultShard:
    """One slice of a circuit's fault list: a picklable work unit.

    ``fault_indices`` index into the canonical prepared fault list
    (:func:`~repro.atpg.driver.prepare_fault_list`), which every worker
    reconstructs identically from (circuit, config) -- the indices, not
    the fault objects, are the wire vocabulary.
    """

    shard_index: int
    n_shards: int
    fault_indices: Tuple[int, ...]


@dataclass(frozen=True)
class FaultOutcome:
    """Raw result of PODEM on one fault, before any cross-fault merge.

    ``sequence`` is the *unfilled* test (don't-care PI positions
    absent): random fill draws from the merge replay's shared RNG, so
    it cannot happen shard-side without breaking byte-identity.
    """

    status: str  # 'detected' | 'untestable' | 'aborted'
    decisions: int
    backtracks: int
    sequence: Tuple[Dict[str, int], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {"status": self.status, "decisions": self.decisions,
                "backtracks": self.backtracks,
                "sequence": [dict(v) for v in self.sequence]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultOutcome":
        return cls(status=data["status"],
                   decisions=int(data["decisions"]),
                   backtracks=int(data["backtracks"]),
                   sequence=tuple({str(k): int(v) for k, v in vec.items()}
                                  for vec in data.get("sequence", ())))

    def to_result(self) -> TestResult:
        return TestResult(status=self.status,
                          sequence=[dict(v) for v in self.sequence],
                          decisions=self.decisions,
                          backtracks=self.backtracks)


def make_fault_shards(n_faults: int, n_shards: int) -> List[FaultShard]:
    """Partition ``n_faults`` into ``n_shards`` deterministic units."""
    return [FaultShard(shard_index=index, n_shards=n_shards,
                       fault_indices=indices)
            for index, indices in enumerate(
                partition_fault_indices(n_faults, n_shards))]


def _shard_config(config: Optional[ATPGConfig],
                  mode: Optional[str]) -> ATPGConfig:
    config = config or ATPGConfig()
    if mode is not None:
        config = replace(config, mode=mode)
    return config.validate()


def run_fault_shard(circuit: Circuit, shard: FaultShard, *,
                    learned: Optional[LearnResult] = None,
                    config: Optional[ATPGConfig] = None,
                    mode: Optional[str] = None,
                    progress: Optional[Callable[[int, int], None]] = None
                    ) -> Dict[int, FaultOutcome]:
    """Phase 1: generate speculatively for every fault in the shard.

    Tie-untestable faults are skipped exactly as the serial loop skips
    them (the merge re-derives the same set, so no outcome is needed).
    Returns ``{fault_index: FaultOutcome}`` for the shard's slice.
    """
    config = _shard_config(config, mode)
    faults, classes = prepare_fault_list(
        circuit, max_faults=config.max_faults,
        fill_seed=config.fill_seed)
    skip = tie_untestable_indices(
        circuit, learned if config.mode != "none" else None,
        faults, classes)
    relations = learned.relations if learned is not None else None
    atpg = make_atpg(circuit, engine=config.atpg_engine,
                     relations=relations if config.mode != "none" else None,
                     mode=config.mode,
                     backtrack_limit=config.backtrack_limit,
                     max_frames=config.max_frames)
    outcomes: Dict[int, FaultOutcome] = {}
    todo = [i for i in shard.fault_indices if i not in skip]
    for done, index in enumerate(todo, start=1):
        if not 0 <= index < len(faults):
            raise IndexError(
                f"shard names fault index {index} but the prepared "
                f"fault list has {len(faults)} faults -- circuit or "
                "config drifted between partition and execution")
        result = atpg.generate(faults[index])
        outcomes[index] = FaultOutcome(
            status=result.status,
            decisions=result.decisions,
            backtracks=result.backtracks,
            sequence=tuple(dict(v) for v in result.sequence))
        if progress is not None:
            progress(done, len(todo))
    return outcomes


def merge_shard_outcomes(circuit: Circuit,
                         outcomes: Dict[int, FaultOutcome], *,
                         learned: Optional[LearnResult] = None,
                         config: Optional[ATPGConfig] = None,
                         mode: Optional[str] = None,
                         strict: bool = False) -> ATPGStats:
    """Phase 2: replay the serial loop with generation pre-answered.

    Runs the *actual* :func:`~repro.atpg.driver.run_atpg` loop through
    its ``generate`` injection point, so dropping, fill RNG and
    statistics are the serial code path, not a reimplementation.  A
    fault the replay targets but no shard answered (a lost shard, or a
    deliberately partial speculation) is generated locally on a lazily
    built engine -- per-fault generation is order-independent, so the
    fallback cannot change the merged result; ``strict=True`` raises
    :class:`MissingOutcomeError` instead, which is how the differential
    tests prove shard coverage is complete.
    """
    config = _shard_config(config, mode)
    learned_for_run = learned if config.mode != "none" else None
    fallback_engine: List[object] = []

    def lookup_indexed(index: int, fault: Fault) -> TestResult:
        outcome = outcomes.get(index)
        if outcome is not None:
            return outcome.to_result()
        if strict:
            raise MissingOutcomeError(
                f"no shard outcome for fault index {index} "
                f"({fault.describe(circuit)})")
        if not fallback_engine:
            relations = (learned.relations if learned is not None
                         else None)
            fallback_engine.append(make_atpg(
                circuit, engine=config.atpg_engine,
                relations=(relations if config.mode != "none"
                           else None),
                mode=config.mode,
                backtrack_limit=config.backtrack_limit,
                max_frames=config.max_frames))
        return fallback_engine[0].generate(fault)

    # run_atpg hands `generate` the fault, not its index; recover the
    # index from the identical prepared list (faults are hashable).
    faults, _ = prepare_fault_list(circuit,
                                   max_faults=config.max_faults,
                                   fill_seed=config.fill_seed)
    index_of = {fault: i for i, fault in enumerate(faults)}

    return run_atpg(
        circuit, learned=learned_for_run, config=config,
        generate=lambda fault: lookup_indexed(index_of[fault], fault))


def run_atpg_sharded(circuit: Circuit, *,
                     learned: Optional[LearnResult] = None,
                     config: Optional[ATPGConfig] = None,
                     mode: Optional[str] = None,
                     n_shards: int = 2,
                     strict: bool = True) -> ATPGStats:
    """Shard, generate and merge in-process: the reference pipeline.

    Statistics (and kept sequences) are byte-identical to
    ``run_atpg(circuit, learned=..., config=...)`` for every
    ``n_shards`` -- the differential tests run exactly this comparison.
    The coordinator/worker runtime distributes the same two phases over
    TCP; this function is what it must agree with.
    """
    config = _shard_config(config, mode)
    faults, _ = prepare_fault_list(circuit,
                                   max_faults=config.max_faults,
                                   fill_seed=config.fill_seed)
    outcomes: Dict[int, FaultOutcome] = {}
    for shard in make_fault_shards(len(faults), n_shards):
        outcomes.update(run_fault_shard(
            circuit, shard, learned=learned, config=config))
    return merge_shard_outcomes(circuit, outcomes, learned=learned,
                                config=config, strict=strict)
