"""Distributed execution tier: fault-sharded ATPG over many workers.

``repro.flow.parallel_suite`` parallelizes at circuit granularity on
one machine; this package goes one level deeper and one hop wider --
one circuit's fault list shards across a fleet, coordinated over TCP:

* :mod:`repro.dist.shards` -- deterministic fault-list sharding and
  the speculate-then-replay merge that keeps distributed results
  byte-identical to serial runs.
* :mod:`repro.dist.protocol` -- the JSON-over-HTTP wire protocol
  (lease / complete / heartbeat / artifacts).
* :mod:`repro.dist.coordinator` -- unit DAG planning, work-stealing
  pull scheduling, lease timeouts, bounded retries, journaled restart,
  and the deterministic suite merge (``repro coordinator``).
* :mod:`repro.dist.worker` -- the lease/execute/complete loop with
  heartbeats and graceful SIGTERM drain (``repro worker``).
* :mod:`repro.dist.cache` -- :class:`RemoteStore`, the fleet-shared
  artifact cache tier over :class:`~repro.api.store.ArtifactStore`.

Quickstart (two terminals)::

    repro coordinator s27 s298 --shards 4 --canonical --json
    repro worker --coordinator http://127.0.0.1:8452 --jobs 0

The coordinator prints the merged suite envelope when the fleet
drains; its bytes match a local ``repro suite --canonical --json``.
"""

from .cache import RemoteStore
from .coordinator import (
    CoordinatorServer,
    DistJob,
    DistUnit,
    make_coordinator,
    run_coordinator,
)
from .shards import (
    FaultOutcome,
    FaultShard,
    MissingOutcomeError,
    make_fault_shards,
    merge_shard_outcomes,
    run_atpg_sharded,
    run_fault_shard,
)
from .worker import WorkerLoop, run_worker

__all__ = [
    "RemoteStore",
    "CoordinatorServer", "DistJob", "DistUnit", "make_coordinator",
    "run_coordinator",
    "FaultOutcome", "FaultShard", "MissingOutcomeError",
    "make_fault_shards", "merge_shard_outcomes", "run_atpg_sharded",
    "run_fault_shard",
    "WorkerLoop", "run_worker",
]
