"""The coordinator: plan units, lease them out, merge determinism back.

``repro coordinator`` turns one suite request into a unit DAG and
serves it to workers over the wire protocol in
:mod:`repro.dist.protocol`:

* one ``learn`` unit per circuit that any learning mode needs (the
  artifact lands in the fleet-shared cache, so it is computed once
  fleet-wide), and
* one ``shard`` unit per (circuit, mode, fault-shard), depending on
  the circuit's learn unit.

Scheduling is **pull-based work stealing**: workers ask for work when
idle, so fast workers naturally drain more units; when nothing is
pending the coordinator hands out a *duplicate* lease on the oldest
in-flight unit (bounded), so one straggler cannot hold the job hostage
-- first completion wins, the loser's duplicate is ignored.  Every
lease has a deadline extended by heartbeats; an expired lease re-queues
the unit, and a unit that keeps failing (worker deaths, error
envelopes) is bounded-retried before its *circuit* is failed with
``stage="worker"`` -- the same attribution contract as
:mod:`repro.flow.parallel_suite`'s solo retry.  A failing circuit never
fails the job.

Completed unit envelopes are journaled to disk (keyed by a digest of
the whole job), so a restarted coordinator resumes from partial
results instead of re-running the fleet.

The merge is where determinism comes home: per circuit, shard outcomes
replay through :func:`repro.dist.shards.merge_shard_outcomes` (the
serial ATPG loop itself) and the stats are adopted into an ordinary
:class:`~repro.flow.session.PipelineSession` in serial stage order, so
the final suite envelope is byte-identical to ``repro suite
--canonical --json`` run on one machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Sequence, Tuple

from ..atpg.driver import prepare_fault_list
from ..flow.config import ATPG_MODES, ReproConfig, canonical_json
from ..flow.session import (
    PipelineSession,
    StageTracker,
    SuiteReport,
    error_record,
    resolve_circuit,
)
from ..flow.serialize import write_json_atomic
from ..api.executor import Response
from ..api.requests import (
    SCHEMA_VERSION,
    LearnRequest,
    ShardRequest,
    SuiteRequest,
)
from ..api.store import ArtifactStore, learn_digest
from .protocol import (
    ARTIFACT_PREFIX,
    COMPLETE_PATH,
    HEALTH_PATH,
    HEARTBEAT_PATH,
    LEASE_PATH,
    STATUS_PATH,
)
from .shards import FaultOutcome, merge_shard_outcomes

__all__ = ["DistUnit", "DistJob", "CoordinatorServer",
           "make_coordinator", "run_coordinator"]

#: Largest accepted request body.  Shard completions carry per-fault
#: outcome payloads, which dwarf ordinary request documents.
MAX_BODY_BYTES = 256 << 20


@dataclass
class DistUnit:
    """One leasable unit of work: a request document plus DAG edges."""

    unit_id: str
    order: int
    circuit_index: int
    spec: str
    kind: str  # 'learn' | 'shard'
    request: Dict[str, object]
    deps: Tuple[str, ...] = ()
    mode: Optional[str] = None
    shard_index: Optional[int] = None


@dataclass
class _Lease:
    worker_id: str
    deadline: float
    issued_at: float


class DistJob:
    """The scheduler state machine (thread-safe; server-agnostic).

    All transitions happen under one lock, driven by worker HTTP calls;
    expired leases are reaped lazily on every lease/complete/status
    call, so the job needs no timer thread of its own.
    """

    #: A unit is terminally failed (failing its circuit) after this
    #: many lease expiries / error completions.
    MAX_ATTEMPTS = 3
    #: Cap on concurrent leases per unit: the primary plus this many
    #: stolen duplicates.
    MAX_LEASES_PER_UNIT = 2

    def __init__(self, specs: Sequence[str],
                 config: Optional[ReproConfig] = None,
                 modes: Sequence[str] = ATPG_MODES,
                 n_shards: int = 4,
                 lease_timeout_s: float = 60.0,
                 journal_dir: Optional[str] = None,
                 clock=time.monotonic):
        self.specs = [str(spec) for spec in specs]
        self.config = (config or ReproConfig()).validate()
        self.modes = tuple(modes)
        # The merged suite report must not depend on how execution was
        # sharded, so units always carry jobs=1 configs (run_suite
        # precedent).
        self.unit_config = replace(self.config, jobs=1)
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.lease_timeout_s = lease_timeout_s
        self.journal_dir = journal_dir
        self.clock = clock
        self.lock = threading.Lock()

        self.units: Dict[str, DistUnit] = {}
        self.unit_order: List[str] = []
        self.completed: Dict[str, Dict[str, object]] = {}
        self.attempts: Dict[str, int] = {}
        self.leases: Dict[str, List[_Lease]] = {}
        self.cancelled: set = set()
        #: circuit_index -> error record; set by planning failures and
        #: terminal unit failures.
        self.circuit_errors: Dict[int, Dict[str, str]] = {}
        #: resolved circuits for the merge (planning side effect).
        self._circuits: Dict[int, object] = {}
        self.leases_issued = 0
        self.leases_expired = 0
        self.steals = 0
        self.duplicate_completions = 0

        self._plan()
        self.job_digest = hashlib.sha256(canonical_json({
            "specs": self.specs,
            "config": self.unit_config.to_dict(),
            "modes": list(self.modes),
            "n_shards": self.n_shards,
        }).encode()).hexdigest()
        self._load_journal()

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def _plan(self) -> None:
        order = 0
        for index, spec in enumerate(self.specs):
            try:
                circuit = resolve_circuit(spec, self.config.retime)
                faults, _ = prepare_fault_list(
                    circuit,
                    max_faults=self.config.atpg.max_faults,
                    fill_seed=self.config.atpg.fill_seed)
            except Exception as exc:
                # Same attribution a serial run would record: the
                # pipeline fails this circuit in its resolve stage.
                self.circuit_errors[index] = error_record(
                    spec, str(exc), "resolve")
                continue
            self._circuits[index] = circuit
            needs_learn = any(mode != "none" for mode in self.modes)
            digest = (learn_digest(circuit, self.config.learn)
                      if needs_learn else None)
            deps: Tuple[str, ...] = ()
            if needs_learn:
                unit_id = f"{index}:{spec}:learn"
                self._add_unit(DistUnit(
                    unit_id=unit_id, order=order, circuit_index=index,
                    spec=spec, kind="learn",
                    request=LearnRequest(
                        spec=spec,
                        config=self.unit_config).to_dict()))
                order += 1
                deps = (unit_id,)
            for mode in self.modes:
                for shard in range(self.n_shards):
                    self._add_unit(DistUnit(
                        unit_id=(f"{index}:{spec}:shard:{mode}:"
                                 f"{shard}/{self.n_shards}"),
                        order=order, circuit_index=index, spec=spec,
                        kind="shard", mode=mode, shard_index=shard,
                        deps=deps if mode != "none" else (),
                        request=ShardRequest(
                            spec=spec, config=self.unit_config,
                            mode=mode, shard_index=shard,
                            n_shards=self.n_shards,
                            learned_digest=(digest if mode != "none"
                                            else None)).to_dict()))
                    order += 1

    def _add_unit(self, unit: DistUnit) -> None:
        self.units[unit.unit_id] = unit
        self.unit_order.append(unit.unit_id)
        self.attempts[unit.unit_id] = 0

    # ------------------------------------------------------------------
    # journal (coordinator restart)
    # ------------------------------------------------------------------
    def _journal_path(self, unit_id: str) -> Optional[str]:
        if self.journal_dir is None:
            return None
        name = hashlib.sha256(
            f"{self.job_digest}:{unit_id}".encode()).hexdigest()[:40]
        return os.path.join(self.journal_dir, f"{name}.json")

    def _journal_write(self, unit_id: str,
                       envelope: Dict[str, object]) -> None:
        path = self._journal_path(unit_id)
        if path is None:
            return
        try:
            os.makedirs(self.journal_dir, exist_ok=True)
            write_json_atomic(path, {
                "job_digest": self.job_digest,
                "unit_id": unit_id,
                "response": envelope,
            })
        except OSError:
            pass  # journaling is durability, not correctness

    def _load_journal(self) -> None:
        if self.journal_dir is None or not os.path.isdir(self.journal_dir):
            return
        for unit_id in self.unit_order:
            path = self._journal_path(unit_id)
            if path is None or not os.path.exists(path):
                continue
            try:
                with open(path, "r") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                continue
            if (entry.get("job_digest") == self.job_digest
                    and entry.get("unit_id") == unit_id
                    and isinstance(entry.get("response"), dict)):
                self.completed[unit_id] = entry["response"]

    # ------------------------------------------------------------------
    # scheduling (all under self.lock)
    # ------------------------------------------------------------------
    def _reap_expired(self) -> None:
        now = self.clock()
        for unit_id, leases in list(self.leases.items()):
            if unit_id in self.completed or unit_id in self.cancelled:
                del self.leases[unit_id]
                continue
            live = [lease for lease in leases if lease.deadline > now]
            expired = len(leases) - len(live)
            if expired:
                self.leases_expired += expired
                self.attempts[unit_id] += expired
            if live:
                self.leases[unit_id] = live
            else:
                del self.leases[unit_id]
                if self.attempts[unit_id] >= self.MAX_ATTEMPTS:
                    self._fail_unit(
                        unit_id,
                        f"worker lease expired {self.attempts[unit_id]} "
                        "times while running this unit")

    def _fail_unit(self, unit_id: str, message: str,
                   stage: str = "worker") -> None:
        unit = self.units[unit_id]
        index = unit.circuit_index
        if index not in self.circuit_errors:
            self.circuit_errors[index] = error_record(
                unit.spec, message, stage)
        # Cancel the circuit's other units: there is no point grading
        # shards of a circuit the report will record as failed.
        for other_id in self.unit_order:
            other = self.units[other_id]
            if (other.circuit_index == index
                    and other_id not in self.completed):
                self.cancelled.add(other_id)
                self.leases.pop(other_id, None)

    def _ready(self, unit_id: str) -> bool:
        if unit_id in self.completed or unit_id in self.cancelled:
            return False
        unit = self.units[unit_id]
        if unit.circuit_index in self.circuit_errors:
            return False
        return all(dep in self.completed for dep in unit.deps)

    def lease(self, worker_id: str) -> Dict[str, object]:
        with self.lock:
            self._reap_expired()
            now = self.clock()
            chosen: Optional[str] = None
            stolen = False
            for unit_id in self.unit_order:
                if self._ready(unit_id) and unit_id not in self.leases:
                    chosen = unit_id
                    break
            if chosen is None:
                # Work stealing: nothing pending, so double up on the
                # longest-running in-flight unit (bounded) -- a dead or
                # slow worker's unit gets a second runner without
                # waiting out the lease.
                candidates = [
                    (min(lease.issued_at for lease in leases), unit_id)
                    for unit_id, leases in self.leases.items()
                    if self._ready(unit_id)
                    and len(leases) < self.MAX_LEASES_PER_UNIT
                    and not any(lease.worker_id == worker_id
                                for lease in leases)]
                if candidates:
                    candidates.sort()
                    chosen = candidates[0][1]
                    stolen = True
            if chosen is None:
                return {"unit": None, "done": self._done_locked(),
                        "retry_after": min(1.0,
                                           self.lease_timeout_s / 10)}
            self.leases.setdefault(chosen, []).append(_Lease(
                worker_id=worker_id,
                deadline=now + self.lease_timeout_s,
                issued_at=now))
            self.leases_issued += 1
            if stolen:
                self.steals += 1
            return {
                "unit": {"unit_id": chosen,
                         "request": dict(self.units[chosen].request)},
                "lease_timeout_s": self.lease_timeout_s,
                "heartbeat_s": max(0.05, self.lease_timeout_s / 3),
            }

    def heartbeat(self, worker_id: str, unit_id: str) -> Dict[str, object]:
        with self.lock:
            leases = self.leases.get(unit_id, [])
            for lease in leases:
                if lease.worker_id == worker_id:
                    lease.deadline = self.clock() + self.lease_timeout_s
                    return {"ok": True}
            # Lease gone: expired, stolen-and-finished, or cancelled.
            # Tell the worker to abandon the unit.
            return {"ok": False,
                    "abandon": (unit_id in self.completed
                                or unit_id in self.cancelled)}

    def complete(self, worker_id: str, unit_id: str,
                 envelope: Dict[str, object]) -> Dict[str, object]:
        with self.lock:
            self._reap_expired()
            if unit_id not in self.units:
                return {"accepted": False, "unknown": True}
            if unit_id in self.completed:
                # First write won; a stolen duplicate (or a worker that
                # outlived its lease) is simply late.
                self.duplicate_completions += 1
                return {"accepted": False, "duplicate": True}
            self.leases.pop(unit_id, None)
            if unit_id in self.cancelled:
                return {"accepted": False, "cancelled": True}
            if not envelope.get("ok", False):
                self.attempts[unit_id] += 1
                error = envelope.get("error") or {}
                if self.attempts[unit_id] >= self.MAX_ATTEMPTS:
                    self._fail_unit(
                        unit_id,
                        str(error.get("message", "unit failed")),
                        stage=str(error.get("stage", "worker")))
                return {"accepted": True, "retrying":
                        unit_id not in self.cancelled}
            self.completed[unit_id] = envelope
            self._journal_write(unit_id, envelope)
            return {"accepted": True}

    def _done_locked(self) -> bool:
        return all(unit_id in self.completed
                   or unit_id in self.cancelled
                   for unit_id in self.unit_order)

    def done(self) -> bool:
        with self.lock:
            self._reap_expired()
            return self._done_locked()

    def status(self) -> Dict[str, object]:
        with self.lock:
            self._reap_expired()
            leased = set(self.leases)
            pending = [unit_id for unit_id in self.unit_order
                       if self._ready(unit_id)
                       and unit_id not in leased]
            return {
                "units": len(self.unit_order),
                "pending": len(pending),
                "leased": len(leased),
                "completed": len(self.completed),
                "cancelled": len(self.cancelled),
                "failed_circuits": len(self.circuit_errors),
                "leases_issued": self.leases_issued,
                "leases_expired": self.leases_expired,
                "steals": self.steals,
                "duplicate_completions": self.duplicate_completions,
                "done": self._done_locked(),
            }

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    # repro-lint: disable=R003 (post-drain read; server already shut down)
    def _merge_circuit(self, index: int,
                       store: ArtifactStore) -> Dict[str, object]:
        """Replay one circuit's shard outcomes into a session report.

        Stage order replicates the serial pipeline exactly --
        resolve, then per requested mode the ATPG stage, with the learn
        stage recorded immediately before the first learning mode --
        so session reports (and therefore the suite document) come out
        byte-identical to ``run_suite`` under canonicalization.
        """
        spec = self.specs[index]
        session = PipelineSession(spec, config=self.unit_config)
        circuit = session.circuit
        learned = None
        for mode in self.modes:
            if mode != "none" and learned is None:
                digest = learn_digest(circuit, self.config.learn)
                cached = store.get_learn(digest, circuit)
                if cached is not None:
                    learned = session.adopt_learned(cached)
                else:
                    # The fleet's artifact is gone (memory-only store,
                    # restarted coordinator); recompute locally --
                    # learning is deterministic, so the report cannot
                    # tell the difference.
                    learned = session.learn()
                    store.put_learn(digest, learned)
            outcomes: Dict[int, FaultOutcome] = {}
            for shard in range(self.n_shards):
                unit_id = (f"{index}:{spec}:shard:{mode}:"
                           f"{shard}/{self.n_shards}")
                envelope = self.completed[unit_id]
                raw = envelope["shard"]["outcomes"]
                for key, outcome in raw.items():
                    outcomes[int(key)] = FaultOutcome.from_dict(outcome)
            stats = merge_shard_outcomes(
                circuit, outcomes,
                learned=learned,
                config=replace(self.unit_config.atpg, mode=mode),
                strict=False)
            session.adopt_atpg(mode, stats)
        return session.report()

    # repro-lint: disable=R003 (post-drain read; server already shut down)
    def merge(self, store: ArtifactStore,
              canonical: bool = False) -> Response:
        """Fold completed units into the final suite response envelope.

        Returns the same versioned document a local ``suite`` request
        produces (``Response.to_json`` for the bytes); per-circuit
        failures land in the report's ``errors`` list with the same
        record shape and the exit code follows the suite convention
        (1 when any circuit failed).
        """
        report = SuiteReport()
        for index in range(len(self.specs)):
            error = self.circuit_errors.get(index)
            if error is not None:
                report.errors.append(dict(error))
                continue
            tracker = StageTracker()
            try:
                report.reports.append(self._merge_circuit(index, store))
            except Exception as exc:
                report.errors.append(error_record(
                    self.specs[index], str(exc), tracker.stage))
        payload = (report.canonical_dict() if canonical
                   else report.to_dict())
        return Response(kind=SuiteRequest.KIND, result=payload,
                        exit_code=1 if report.errors else 0)


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------
class CoordinatorServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying one job and the shared store."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], job: DistJob,
                 store: Optional[ArtifactStore] = None):
        super().__init__(address, _Handler)
        self.job = job
        self.store = store if store is not None else ArtifactStore()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def health(self) -> dict:
        return {
            "ok": True,
            "schema_version": SCHEMA_VERSION,
            "dist": self.job.status(),
            "artifact_store": self.store.stats(),
        }


class _Handler(BaseHTTPRequestHandler):
    server: CoordinatorServer  # typing aid; http.server sets this

    def log_message(self, format: str, *args) -> None:
        pass  # same quiet contract as the api server

    # ------------------------------------------------------------------
    def _send(self, status: int, payload: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status,
                   (json.dumps(payload, indent=1) + "\n").encode())

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"ok": False,
                                  "error": "bad Content-Length"})
            return None
        return self.rfile.read(length)

    def _read_json(self) -> Optional[dict]:
        body = self._read_body()
        if body is None:
            return None
        try:
            data = json.loads(body or b"null")
        except ValueError:
            self._send_json(400, {"ok": False, "error": "invalid JSON"})
            return None
        if not isinstance(data, dict):
            self._send_json(400, {"ok": False,
                                  "error": "body must be an object"})
            return None
        return data

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        if self.path == HEALTH_PATH:
            self._send_json(200, self.server.health())
        elif self.path == STATUS_PATH:
            self._send_json(200, self.server.job.status())
        elif self.path.startswith(ARTIFACT_PREFIX):
            digest = self.path[len(ARTIFACT_PREFIX):]
            payload = self.server.store.get_learn_payload(digest)
            if payload is None:
                self._send_json(404, {"ok": False,
                                      "error": f"no artifact {digest}"})
            else:
                self._send(200, payload)
        else:
            self._send_json(404, {
                "ok": False,
                "error": f"no such endpoint {self.path!r}"})

    def do_PUT(self) -> None:  # noqa: N802 (http.server contract)
        if not self.path.startswith(ARTIFACT_PREFIX):
            self._send_json(404, {
                "ok": False,
                "error": f"no such endpoint {self.path!r}"})
            return
        body = self._read_body()
        if body is None:
            return
        digest = self.path[len(ARTIFACT_PREFIX):]
        stored = self.server.store.put_learn_payload(digest, body)
        self._send_json(200, {"ok": True, "stored": stored})

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        job = self.server.job
        data = self._read_json()
        if data is None:
            return
        worker_id = str(data.get("worker_id", "unknown"))
        if self.path == LEASE_PATH:
            self._send_json(200, job.lease(worker_id))
        elif self.path == HEARTBEAT_PATH:
            self._send_json(200, job.heartbeat(
                worker_id, str(data.get("unit_id", ""))))
        elif self.path == COMPLETE_PATH:
            envelope = data.get("response")
            if not isinstance(envelope, dict):
                self._send_json(400, {
                    "ok": False, "error": "missing response envelope"})
                return
            self._send_json(200, job.complete(
                worker_id, str(data.get("unit_id", "")), envelope))
        else:
            self._send_json(404, {
                "ok": False,
                "error": f"no such endpoint {self.path!r}"})


def make_coordinator(specs: Sequence[str],
                     config: Optional[ReproConfig] = None,
                     modes: Sequence[str] = ATPG_MODES,
                     n_shards: int = 4,
                     host: str = "127.0.0.1", port: int = 0,
                     store: Optional[ArtifactStore] = None,
                     journal_dir: Optional[str] = None,
                     lease_timeout_s: float = 60.0) -> CoordinatorServer:
    """Bind (but do not run) a coordinator; ``port=0`` picks a port.

    The caller owns the lifecycle (``serve_forever`` on a thread,
    ``shutdown`` + ``server_close`` to stop) -- the contract the dist
    tests drive directly.
    """
    job = DistJob(specs, config=config, modes=modes, n_shards=n_shards,
                  lease_timeout_s=lease_timeout_s,
                  journal_dir=journal_dir)
    return CoordinatorServer((host, port), job, store=store)


def run_coordinator(specs: Sequence[str],
                    config: Optional[ReproConfig] = None,
                    modes: Sequence[str] = ATPG_MODES,
                    n_shards: int = 4,
                    host: str = "127.0.0.1", port: int = 0,
                    store_dir: Optional[str] = None,
                    journal_dir: Optional[str] = None,
                    lease_timeout_s: float = 60.0,
                    canonical: bool = False,
                    out: Optional[str] = None,
                    announce=None,
                    poll_s: float = 0.1) -> Response:
    """Serve one job until every unit completes; return the merged
    suite response (the ``repro coordinator`` command).

    Blocks until workers drain the DAG.  ``announce`` (e.g. ``print``)
    receives the listening URL so operators can start workers against
    it; pass ``out`` to also write the merged report JSON atomically.
    """
    store = ArtifactStore(root=store_dir)
    server = make_coordinator(specs, config=config, modes=modes,
                              n_shards=n_shards, host=host, port=port,
                              store=store, journal_dir=journal_dir,
                              lease_timeout_s=lease_timeout_s)
    if announce is not None:
        announce(f"repro coordinator: listening on {server.url} "
                 f"({len(server.job.unit_order)} units, "
                 f"{n_shards} shards/circuit, schema_version "
                 f"{SCHEMA_VERSION})")
        announce(f"start workers with: repro worker "
                 f"--coordinator {server.url}")
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-coordinator", daemon=True)
    thread.start()
    try:
        while not server.job.done():
            time.sleep(poll_s)
    finally:
        server.shutdown()
        thread.join(timeout=5)
        server.server_close()
    response = server.job.merge(store, canonical=canonical)
    if out:
        write_json_atomic(out, response.envelope())
    return response
