"""Name-based call-graph reachability over the lint scope.

R001 needs "every function reachable from the canonical-report roots",
and a dynamic language only offers approximations.  This one is the
conservative classic: collect every function/method definition in
scope, take the *simple* (unqualified) name of each call site, and draw
an edge to **every** definition sharing that name.  Indirect dispatch
through ``self.method()``, injected callables passed by name, and
same-named helpers all over-approximate toward "reachable", which is
the right failure mode for a determinism gate -- a false edge can only
make the rule look harder, never let wall-clock sneak through.

Builtins and stdlib calls fall out naturally: they have no definition
in scope, so they terminate the walk (banned *leaf* calls are matched
separately by the rule, against the import-resolved dotted name).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from .core import ModuleInfo

__all__ = ["FunctionDef", "collect_functions", "reachable_from"]


class FunctionDef:
    """One function/method definition in lint scope."""

    __slots__ = ("module", "node", "qualname", "simple_name", "calls")

    def __init__(self, module: ModuleInfo, node: ast.AST,
                 qualname: str):
        self.module = module
        self.node = node
        self.qualname = f"{module.display}::{qualname}"
        self.simple_name = qualname.rsplit(".", 1)[-1]
        #: Simple names of everything this body calls (its own nested
        #: defs excluded -- they get their own entries).
        self.calls: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Name):
                    self.calls.add(func.id)
                elif isinstance(func, ast.Attribute):
                    self.calls.add(func.attr)


def collect_functions(modules: Iterable[ModuleInfo]) -> List[FunctionDef]:
    """Every def in every module, with dotted-in-class qualnames."""
    out: List[FunctionDef] = []

    def walk(module: ModuleInfo, body, prefix: str) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                out.append(FunctionDef(module, node, qual))
                walk(module, node.body, f"{qual}.")
            elif isinstance(node, ast.ClassDef):
                walk(module, node.body, f"{prefix}{node.name}.")

    for module in modules:
        walk(module, module.tree.body, "")
    return out


def reachable_from(functions: List[FunctionDef],
                   root_names: Iterable[str]
                   ) -> Dict[str, Tuple[str, FunctionDef]]:
    """BFS over simple-name edges from every root-named definition.

    Returns ``qualname -> (root simple name, FunctionDef)`` for every
    definition reachable from a function whose simple name is in
    ``root_names`` (the roots themselves included).
    """
    by_name: Dict[str, List[FunctionDef]] = {}
    for fn in functions:
        by_name.setdefault(fn.simple_name, []).append(fn)
    roots = set(root_names)
    seen: Dict[str, Tuple[str, FunctionDef]] = {}
    queue: List[Tuple[FunctionDef, str]] = [
        (fn, fn.simple_name) for fn in functions
        if fn.simple_name in roots]
    while queue:
        fn, root = queue.pop()
        if fn.qualname in seen:
            continue
        seen[fn.qualname] = (root, fn)
        for callee in fn.calls:
            for target in by_name.get(callee, ()):
                if target.qualname not in seen:
                    queue.append((target, root))
    return seen
