"""R005 -- task units must stay picklable.

Everything named like a unit of distributable work (``*Task``,
``*Unit``, ``*Shard``, ``*Outcome``) crosses a process boundary
somewhere: ``ProcessPoolExecutor`` for the parallel suite, the dist
wire protocol for shards.  Pickle fails late and badly -- a lambda
default or a ``Lock`` field only explodes when a worker first receives
the unit, usually inside a pool where the traceback is mangled.  This
rule moves the failure to lint time:

* the class itself must be defined at module top level (pickle finds
  classes by qualified name; nested and local classes don't resolve);
* no ``lambda`` anywhere in a field default (lambdas have no
  importable name);
* no field annotated with an unpicklable type: callables, open
  handles, locks, threads, sockets.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import LintContext, ModuleInfo, dotted_name

CODE = "R005"

SUFFIXES = ("Task", "Unit", "Shard", "Outcome")

#: Annotation names (last dotted segment) that cannot cross pickle.
UNPICKLABLE = {
    "Callable", "IO", "TextIO", "BinaryIO", "Lock", "RLock", "Thread",
    "Event", "Condition", "Semaphore", "socket", "Socket", "Queue",
    "Generator", "Iterator",
}

HINT = ("keep task units plain data: module-level class, simple-typed "
        "fields, no callables/handles/locks")


def _unit_like(name: str) -> bool:
    return any(name.endswith(suffix) and name != suffix
               for suffix in SUFFIXES)


def _annotation_names(annotation: ast.AST) -> Iterable[str]:
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = dotted_name(node)
            if dotted:
                yield dotted.split(".")[-1]
        elif isinstance(node, ast.Constant) and \
                isinstance(node.value, str):
            # String annotations ('Callable[..., int]') -- match on
            # the raw text, coarsely.
            for name in UNPICKLABLE:
                if name in node.value:
                    yield name


def _check_class(ctx: LintContext, module: ModuleInfo,
                 cls: ast.ClassDef, top_level: bool) -> None:
    if not top_level:
        ctx.add(CODE, module, cls,
                f"task unit `{cls.name}` is not defined at module top "
                f"level; pickle resolves classes by importable name",
                hint=HINT)
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            bad = sorted(set(_annotation_names(stmt.annotation))
                         & UNPICKLABLE)
            if bad:
                ctx.add(CODE, module, stmt,
                        f"field `{cls.name}.{stmt.target.id}` is "
                        f"annotated with unpicklable type "
                        f"{'/'.join(bad)}", hint=HINT)
            if stmt.value is not None:
                for node in ast.walk(stmt.value):
                    if isinstance(node, ast.Lambda):
                        ctx.add(CODE, module, node,
                                f"field `{cls.name}.{stmt.target.id}` "
                                f"defaults to a lambda, which cannot "
                                f"be pickled", hint=HINT)
        elif isinstance(stmt, ast.Assign):
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Lambda):
                    ctx.add(CODE, module, node,
                            f"class `{cls.name}` stores a lambda in a "
                            f"class attribute; it cannot be pickled",
                            hint=HINT)


def check(ctx: LintContext) -> None:
    for module in ctx.modules:
        top = {id(node) for node in module.tree.body}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _unit_like(node.name):
                _check_class(ctx, module, node, id(node) in top)
