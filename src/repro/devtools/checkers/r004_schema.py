"""R004 -- schema drift needs a ``SCHEMA_VERSION`` bump.

The wire contract of the request/plan/execute API is the set of
dataclass fields in modules that declare a top-level
``SCHEMA_VERSION``.  Old journals, cached plans and remote peers all
key on that version: changing a field without bumping it silently
reinterprets persisted payloads.  The rule compares the live AST
against a committed manifest (``schema_manifest.json`` next to the
module) and fires when:

* the manifest is missing entirely (nothing pins the contract);
* fields changed but ``SCHEMA_VERSION`` did not (the drift case);
* the manifest disagrees in any other way (stale -- regenerate it).

``repro devtool manifest --write`` regenerates the manifest; that diff
plus the version bump is the reviewable unit of a schema change.
"""

from __future__ import annotations

import ast
import json
import os
from typing import Dict, List, Optional

from ..core import LintContext, ModuleInfo

CODE = "R004"

MANIFEST_NAME = "schema_manifest.json"
MANIFEST_FORMAT = "repro/schema-manifest"

HINT_WRITE = "run `repro devtool manifest --write` and commit the diff"
HINT_BUMP = ("bump SCHEMA_VERSION, then `repro devtool manifest "
             "--write`")


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and \
                target.attr == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


def schema_version_of(module: ModuleInfo) -> Optional[int]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "SCHEMA_VERSION" \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int):
            return node.value.value
    return None


def extract_classes(module: ModuleInfo) -> Dict[str, List[str]]:
    """Top-level dataclasses -> ordered non-ClassVar field names."""
    classes: Dict[str, List[str]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef) or \
                not _is_dataclass_decorated(node):
            continue
        fields: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    not _is_classvar(stmt.annotation):
                fields.append(stmt.target.id)
        classes[node.name] = fields
    return classes


def build_manifest_entry(module: ModuleInfo) -> Dict[str, object]:
    return {
        "schema_version": schema_version_of(module),
        "classes": extract_classes(module),
    }


def manifest_path_for(module: ModuleInfo) -> str:
    return os.path.join(os.path.dirname(module.path), MANIFEST_NAME)


def check(ctx: LintContext) -> None:
    for module in ctx.modules:
        version = schema_version_of(module)
        if version is None:
            continue
        live = build_manifest_entry(module)
        path = manifest_path_for(module)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError:
            ctx.add(CODE, module, 1,
                    f"SCHEMA_VERSION module has no committed "
                    f"{MANIFEST_NAME}; the wire contract is unpinned",
                    hint=HINT_WRITE)
            continue
        except ValueError as exc:
            ctx.add(CODE, module, 1,
                    f"{MANIFEST_NAME} is not valid JSON: {exc}",
                    hint=HINT_WRITE)
            continue
        entry = manifest.get("modules", {}).get(module.basename)
        if entry is None:
            ctx.add(CODE, module, 1,
                    f"{MANIFEST_NAME} has no entry for "
                    f"{module.basename}", hint=HINT_WRITE)
            continue
        old_version = entry.get("schema_version")
        old_classes = entry.get("classes", {})
        if old_classes == live["classes"]:
            if old_version != version:
                ctx.add(CODE, module, 1,
                        f"SCHEMA_VERSION is {version} but the manifest "
                        f"pins {old_version} for identical fields",
                        hint=HINT_WRITE)
            continue
        # Fields differ.  Drift is the un-bumped case; a bumped version
        # with a stale manifest just needs the regen.
        if old_version == version:
            changed = sorted(
                set(old_classes) ^ set(live["classes"])
                | {name for name in set(old_classes)
                   & set(live["classes"])
                   if old_classes[name] != live["classes"][name]})
            ctx.add(CODE, module, 1,
                    f"dataclass fields changed ({', '.join(changed)}) "
                    f"without a SCHEMA_VERSION bump (still {version})",
                    hint=HINT_BUMP)
        else:
            ctx.add(CODE, module, 1,
                    f"manifest is stale (pins version {old_version}, "
                    f"module is {version} with different fields)",
                    hint=HINT_WRITE)
