"""R003 -- lock discipline on daemon-shared mutable state.

A lightweight ThreadSanitizer-style AST pass.  Any class that creates a
``threading.Lock`` / ``RLock`` / ``Condition`` attribute in ``__init__``
is declaring "instances of me are shared across threads"; from then on,
every *tracked* attribute -- a mutable container or integer counter also
assigned in ``__init__`` -- must only be touched inside a lexical
``with self.<lock>:`` block.  Writes (assignment, augmented assignment,
subscript stores, mutating method calls like ``append``/``update``/
``move_to_end``) outside the lock are errors; bare reads are warnings
(a read of a torn multi-step update is a real race, but read-only
post-quiesce phases are a legitimate pattern -- waive them with a
reasoned suppression on the ``def`` line).

Two structural exemptions keep the rule honest instead of noisy:

* **ctor-only methods** -- helpers called (transitively) only from
  ``__init__`` run before the instance is published to any thread;
* **effectively-locked methods** -- helpers whose every in-class call
  site is lexically inside a lock (or inside another effectively-locked
  method) inherit the caller's lock, the classic ``_foo_locked``
  pattern.

The same pass runs at module scope: a module that pairs a module-level
lock with module-level mutable globals (the compiled-kernel cache) gets
its global writes checked against ``with <LOCK>:`` the same way.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..core import LintContext, ModuleInfo, dotted_name

CODE = "R003"

#: threading primitives whose construction marks a lock attribute.
_LOCK_TYPES = ("Lock", "RLock", "Condition", "Semaphore",
               "BoundedSemaphore")

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
}

#: Container constructors whose result counts as shared mutable state.
_CONTAINER_CTORS = {"dict", "list", "set", "OrderedDict", "defaultdict",
                    "deque", "Counter"}

WRITE_HINT = "move the write inside `with self.{lock}:`"
READ_HINT = ("read under `with self.{lock}:` (or suppress on the def "
             "line with a reason if no writer can be live here)")


def _is_lock_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = dotted_name(value.func)
    return dotted is not None and dotted.split(".")[-1] in _LOCK_TYPES


def _is_tracked_init(value: ast.AST) -> bool:
    """Initializer shapes that mark an attr as shared mutable state."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Constant) and isinstance(value.value, int) \
            and not isinstance(value.value, bool):
        return True
    if isinstance(value, ast.Call):
        dotted = dotted_name(value.func)
        return (dotted is not None
                and dotted.split(".")[-1] in _CONTAINER_CTORS
                and not value.args and not value.keywords)
    return False


def _self_attr(node: ast.AST, owner: str = "self") -> Optional[str]:
    """``self.X`` -> ``X`` (one level only; ``self.a.b`` returns None
    for the outer attribute but ``a`` for its inner node)."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == owner:
        return node.attr
    return None


class _Access:
    __slots__ = ("attr", "node", "kind", "locked", "method")

    def __init__(self, attr: str, node: ast.AST, kind: str,
                 locked: bool, method: str):
        self.attr = attr
        self.node = node
        self.kind = kind  # 'write' | 'read'
        self.locked = locked
        self.method = method


def _with_holds_lock(node: ast.With, locks: Set[str],
                     owner: Optional[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if owner is None:
            if isinstance(expr, ast.Name) and expr.id in locks:
                return True
        else:
            attr = _self_attr(expr, owner)
            if attr is not None and attr in locks:
                return True
    return False


def _scan_body(body, locks: Set[str], tracked: Set[str],
               owner: Optional[str], method: str, locked: bool,
               accesses: List[_Access],
               calls: List[Tuple[str, bool]]) -> None:
    """Walk statements, tracking the lexical with-lock state.

    ``owner`` is the receiver name ('self') for class scope, or None
    for module scope (tracked names are then plain globals).
    """

    def attr_of(node: ast.AST) -> Optional[str]:
        if owner is None:
            return node.id if (isinstance(node, ast.Name)
                               and node.id in tracked) else None
        name = _self_attr(node, owner)
        return name if name in tracked else None

    def record(node: ast.AST, target: ast.AST, kind: str) -> None:
        name = attr_of(target)
        if name is not None:
            accesses.append(_Access(name, node, kind, locked, method))

    def scan_expr(node: ast.AST) -> None:
        """Reads + mutator calls inside one expression tree."""
        mutated: Set[int] = set()  # receiver node ids already counted
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and \
                    isinstance(child.func, ast.Attribute):
                name = attr_of(child.func.value)
                if name is not None and child.func.attr in _MUTATORS:
                    accesses.append(_Access(
                        name, child, "write", locked, method))
                    mutated.add(id(child.func.value))
                if owner is not None:
                    callee = _self_attr(child.func, owner)
                    if callee is not None:
                        calls.append((callee, locked))
        for child in ast.walk(node):
            if id(child) in mutated:
                continue
            if isinstance(child, ast.Attribute) and \
                    isinstance(child.ctx, ast.Load):
                name = attr_of(child)
                if name is not None:
                    accesses.append(_Access(
                        name, child, "read", locked, method))
            elif owner is None and isinstance(child, ast.Name) and \
                    isinstance(child.ctx, ast.Load) and \
                    child.id in tracked:
                accesses.append(_Access(
                    child.id, child, "read", locked, method))

    for stmt in body:
        if isinstance(stmt, ast.With) and _with_holds_lock(
                stmt, locks, owner):
            _scan_body(stmt.body, locks, tracked, owner, method, True,
                       accesses, calls)
            continue
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                record(stmt, target, "write")
                if isinstance(target, ast.Subscript):
                    record(stmt, target.value, "write")
            scan_expr(stmt.value)
            continue
        if isinstance(stmt, ast.AugAssign):
            record(stmt, stmt.target, "write")
            if isinstance(stmt.target, ast.Subscript):
                record(stmt, stmt.target.value, "write")
            scan_expr(stmt.value)
            continue
        if isinstance(stmt, ast.AnnAssign):
            if stmt.target is not None:
                record(stmt, stmt.target, "write")
            if stmt.value is not None:
                scan_expr(stmt.value)
            continue
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                record(stmt, target, "write")
                if isinstance(target, ast.Subscript):
                    record(stmt, target.value, "write")
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs (heartbeat threads!) execute later, possibly
            # on another thread: their bodies are scanned as UNLOCKED
            # regardless of the lexical with around the def.
            _scan_body(stmt.body, locks, tracked, owner,
                       f"{method}.{stmt.name}", False, accesses, calls)
            continue
        # Generic statement: recurse into nested blocks, scan the
        # expressions hanging off this node (but not nested statements,
        # which the recursion owns).
        for field_name, value in ast.iter_fields(stmt):
            if field_name in ("body", "orelse", "finalbody"):
                if isinstance(value, list):
                    _scan_body(value, locks, tracked, owner, method,
                               locked, accesses, calls)
            elif field_name == "handlers":
                for handler in value:
                    _scan_body(handler.body, locks, tracked, owner,
                               method, locked, accesses, calls)
            elif isinstance(value, ast.AST):
                scan_expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.withitem):
                        scan_expr(item.context_expr)
                    elif isinstance(item, ast.AST) and not isinstance(
                            item, ast.stmt):
                        scan_expr(item)
                    elif isinstance(item, ast.stmt):
                        _scan_body([item], locks, tracked, owner,
                                   method, locked, accesses, calls)


def _analyze_class(ctx: LintContext, module: ModuleInfo,
                   cls: ast.ClassDef) -> None:
    init: Optional[ast.FunctionDef] = None
    methods: Dict[str, ast.AST] = {}
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[node.name] = node
            if node.name == "__init__":
                init = node
    if init is None:
        return
    locks: Set[str] = set()
    tracked: Set[str] = set()
    for node in ast.walk(init):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr, value = _self_attr(node.targets[0]), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            attr, value = _self_attr(node.target), node.value
        else:
            continue
        if attr is None:
            continue
        if _is_lock_ctor(value):
            locks.add(attr)
        elif _is_tracked_init(value):
            tracked.add(attr)
    tracked -= locks
    if not locks or not tracked:
        return

    # Per-method accesses and in-class call sites.
    accesses: Dict[str, List[_Access]] = {}
    callsites: Dict[str, List[Tuple[str, bool]]] = {}
    for name, node in methods.items():
        acc: List[_Access] = []
        calls: List[Tuple[str, bool]] = []
        _scan_body(node.body, locks, tracked, "self", name, False,
                   acc, calls)
        accesses[name] = acc
        for callee, locked in calls:
            if callee in methods:
                callsites.setdefault(callee, []).append((name, locked))

    # Fixpoint 1: ctor-only (runs before the instance is shared).
    ctor_only: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name == "__init__" or name in ctor_only:
                continue
            sites = callsites.get(name)
            if sites and all(caller == "__init__" or caller in ctor_only
                             for caller, _locked in sites):
                ctor_only.add(name)
                changed = True

    # Fixpoint 2: effectively locked (every call site holds the lock).
    eff_locked: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name in ("__init__",) or name in eff_locked \
                    or name in ctor_only:
                continue
            sites = callsites.get(name)
            if sites and all(locked or caller in eff_locked
                             for caller, locked in sites):
                eff_locked.add(name)
                changed = True

    lock_name = sorted(locks)[0]
    for name, acc in accesses.items():
        if name == "__init__" or name in ctor_only:
            continue
        exempt = name in eff_locked
        for access in acc:
            if access.locked or exempt:
                continue
            # The nested-def scan resets `locked`, and nested helpers
            # are keyed 'method.inner' -- exempt those only if the
            # *outer* method is exempt, which `exempt` already covers.
            if access.kind == "write":
                ctx.add(CODE, module, access.node,
                        f"`{cls.name}.{name}` writes shared attribute "
                        f"`self.{access.attr}` outside `with "
                        f"self.{lock_name}`",
                        hint=WRITE_HINT.format(lock=lock_name))
            else:
                ctx.add(CODE, module, access.node,
                        f"`{cls.name}.{name}` reads shared attribute "
                        f"`self.{access.attr}` outside `with "
                        f"self.{lock_name}`",
                        hint=READ_HINT.format(lock=lock_name),
                        severity="warning")


def _analyze_module_globals(ctx: LintContext,
                            module: ModuleInfo) -> None:
    locks: Set[str] = set()
    tracked: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_lock_ctor(node.value):
                locks.add(name)
            elif _is_tracked_init(node.value):
                tracked.add(name)
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                node.value is not None:
            if _is_lock_ctor(node.value):
                locks.add(node.target.id)
            elif _is_tracked_init(node.value):
                tracked.add(node.target.id)
    tracked -= locks
    if not locks or not tracked:
        return
    for node in module.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        accesses: List[_Access] = []
        calls: List[Tuple[str, bool]] = []
        _scan_body(node.body, locks, tracked, None, node.name, False,
                   accesses, calls)
        lock_name = sorted(locks)[0]
        for access in accesses:
            # Module scope flags writes only: module counters are read
            # all over (stats lines, tests) and a torn int read cannot
            # happen under the GIL -- the invariant the cache needs is
            # that *updates* are serialized.
            if access.kind != "write" or access.locked:
                continue
            ctx.add(CODE, module, access.node,
                    f"`{node.name}` writes module global "
                    f"`{access.attr}` outside `with {lock_name}`",
                    hint=WRITE_HINT.format(lock=lock_name))


def check(ctx: LintContext) -> None:
    for module in ctx.modules:
        _analyze_module_globals(ctx, module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                _analyze_class(ctx, module, node)
