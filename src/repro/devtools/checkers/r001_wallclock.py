"""R001 -- no nondeterminism sources reachable from canonical paths.

The canonical-report contract (byte-identical suite envelopes across
backends, worker counts and shard merges) dies the moment a wall-clock
read or an unseeded global-``random`` draw lands in a code path that
feeds :meth:`SuiteReport.canonical_dict`, the shard replay merge
(:func:`merge_shard_outcomes`) or any config digest.  Volatile timing
*fields* are fine -- canonicalization zeroes them -- which is why
``time.perf_counter`` / ``time.monotonic`` are allowed; absolute time
and global randomness are not, because they leak into values the
canonicalizer keeps.

The walk is the conservative name-based call graph of
:mod:`repro.devtools.callgraph`, rooted at every definition named in
:data:`ROOTS`; banned leaf calls are matched against import-resolved
dotted names, so ``from datetime import datetime; datetime.now()`` is
caught the same as ``datetime.datetime.now()``.
"""

from __future__ import annotations

import ast

from ..callgraph import collect_functions, reachable_from
from ..core import LintContext, dotted_name

CODE = "R001"

#: Simple names whose definitions root the reachability walk.
ROOTS = ("canonical_dict", "merge_shard_outcomes", "config_digest")

#: Canonical dotted names that must never be reachable from a root.
BANNED = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.ctime": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host/clock-derived identifier",
    "uuid.uuid4": "random identifier",
    "os.urandom": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.token_bytes": "OS entropy",
}

#: Module-level ``random.*`` draws (the unseeded process-global PRNG).
#: Seeded instances (``random.Random(seed).shuffle``) stay legal: the
#: banned form is specifically the shared global generator.
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate",
}
BANNED.update({f"random.{name}": "unseeded global random"
               for name in _GLOBAL_RANDOM})

HINT = ("compute the value outside the canonical path, or use a "
        "seeded random.Random / monotonic timer whose field is "
        "canonicalized away")


def check(ctx: LintContext) -> None:
    functions = collect_functions(ctx.modules)
    reached = reachable_from(functions, ROOTS)
    for root, fn in reached.values():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            target = fn.module.resolve(dotted_name(node.func))
            verdict = BANNED.get(target) if target else None
            if verdict is None:
                continue
            ctx.add(
                CODE, fn.module, node,
                f"{verdict} `{target}` is reachable from canonical "
                f"root `{root}` (via `{fn.simple_name}`)",
                hint=HINT)
