"""R006 -- error-taxonomy discipline in worker/protocol loops.

A distributed worker that swallows exceptions in its service loop
doesn't crash -- it silently stops making progress, which is worse.
In the dist tier (workers, protocol, server) every failure must either
route through a typed :class:`ReproError` code or take a *counted
degrade path* (increment a counter, announce once, keep serving).
The shapes this rule bans:

* bare ``except:`` anywhere in scope -- it eats ``KeyboardInterrupt``
  and ``SystemExit`` along with the real errors;
* a handler whose whole body is ``pass`` when either the caught type
  is broad (``Exception`` / ``BaseException``) or the handler sits
  inside a loop -- a silent ``pass`` in a loop is the
  stops-making-progress pattern.  A *narrow* silent pass outside a
  loop (``except ValueError: pass`` around one ``signal.signal``)
  remains legal: it cannot hide a recurring failure.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..core import LintContext, ModuleInfo

CODE = "R006"

#: In scope: the dist tier plus anything that serves or works.
SCOPED_BASENAMES = {"server.py", "protocol.py"}

HINT = ("catch a narrow type and route it through a ReproError code, "
        "or count it on a degrade path (counter += 1, announce once)")


def _in_scope(module: ModuleInfo) -> bool:
    path = module.path.replace("\\", "/")
    return ("/dist/" in path
            or module.basename in SCOPED_BASENAMES
            or "worker" in module.basename)


def _is_broad(handler_type: Optional[ast.AST]) -> bool:
    if handler_type is None:
        return True
    names = []
    if isinstance(handler_type, ast.Tuple):
        names = [element for element in handler_type.elts]
    else:
        names = [handler_type]
    for node in names:
        target = node
        if isinstance(target, ast.Attribute):
            target = ast.Name(id=target.attr)
        if isinstance(target, ast.Name) and \
                target.id in ("Exception", "BaseException"):
            return True
    return False


def _silent(body) -> bool:
    return len(body) == 1 and isinstance(body[0], ast.Pass)


def _check_function(ctx: LintContext, module: ModuleInfo,
                    fn: ast.AST) -> None:
    def walk(body, in_loop: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk(stmt.body, False)  # new function, new loop state
                continue
            stmt_in_loop = in_loop or isinstance(
                stmt, (ast.For, ast.AsyncFor, ast.While))
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    if handler.type is None:
                        ctx.add(CODE, module, handler,
                                "bare `except:` in the dist tier eats "
                                "KeyboardInterrupt/SystemExit",
                                hint=HINT)
                    elif _silent(handler.body):
                        if _is_broad(handler.type):
                            ctx.add(CODE, module, handler,
                                    "broad exception silently passed; "
                                    "failures must be typed or "
                                    "counted", hint=HINT)
                        elif in_loop:
                            ctx.add(CODE, module, handler,
                                    "silent `pass` handler inside a "
                                    "service loop hides repeated "
                                    "failures", hint=HINT)
                    walk(handler.body, stmt_in_loop)
            for field_name, value in ast.iter_fields(stmt):
                if field_name in ("body", "orelse", "finalbody") and \
                        isinstance(value, list):
                    walk(value, stmt_in_loop)

    walk(fn.body, False)


def check(ctx: LintContext) -> None:
    for module in ctx.modules:
        if not _in_scope(module):
            continue
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _check_function(ctx, module, node)
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        _check_function(ctx, module, item)
