"""The pluggable rule registry.

A checker is any module exposing ``CODE`` (the diagnostic prefix) and
``check(ctx: LintContext)``.  Registration is just membership in
:data:`ALL_CHECKERS`; :func:`repro.devtools.core.run_lint` sorts by
``CODE`` so rule order never depends on import order.
"""

from __future__ import annotations

from . import (r001_wallclock, r002_iteration, r003_locks, r004_schema,
               r005_pickle, r006_errors)

ALL_CHECKERS = [
    r001_wallclock,
    r002_iteration,
    r003_locks,
    r004_schema,
    r005_pickle,
    r006_errors,
]

__all__ = ["ALL_CHECKERS"]
