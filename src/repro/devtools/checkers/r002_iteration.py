"""R002 -- no hash-ordered iteration in merge/serialization modules.

Sets iterate in hash order, and hash order moves with
``PYTHONHASHSEED`` for strings: a merge or serializer that loops over a
``set`` (or over ``.values()`` of a collection built from one) can emit
different bytes on different runs while every element is identical.
The modules that assemble canonical reports must only iterate
deterministically ordered collections -- lists, sorted views, or dicts
whose insertion order is itself deterministic.

Scope: serialization/merge modules by basename (:data:`SCOPED_NAMES`)
plus anything whose filename says ``merge`` or ``serialize``.  Flagged
forms, in ``for`` targets and comprehension sources:

* a ``set`` literal, ``set(...)`` call, set comprehension, or a set
  operator expression (``a | b`` over sets is still a set);
* a local name assigned from one of those forms in the same function;
* ``.values()`` / ``.keys()`` / direct iteration of a dict *built from
  a set* is caught through the same local tracking; bare ``.values()``
  on arbitrary objects is flagged too -- dict views are
  insertion-ordered, but in a merge module insertion order must be
  argued, and ``sorted(...)`` is the way to write the argument down.

Anything wrapped directly in ``sorted(...)`` is always fine.
"""

from __future__ import annotations

import ast
from typing import Set

from ..core import LintContext, ModuleInfo

CODE = "R002"

#: Module basenames forming the merge/serialization tier.
SCOPED_NAMES = {
    "serialize.py", "session.py", "shards.py", "coordinator.py",
    "executor.py", "requests.py", "config.py", "store.py",
}

HINT = ("iterate `sorted(...)` (or a list with documented "
        "deterministic order) instead of a hash-ordered collection")


def _in_scope(module: ModuleInfo) -> bool:
    stem = module.basename
    return (stem in SCOPED_NAMES
            or "merge" in stem or "serialize" in stem)


def _is_set_expr(node: ast.AST, set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_locals:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_locals)
                or _is_set_expr(node.right, set_locals))
    return False


def _is_values_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args and not node.keywords)


def _check_iter(ctx: LintContext, module: ModuleInfo, where: ast.AST,
                iter_node: ast.AST, set_locals: Set[str]) -> None:
    if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name) and iter_node.func.id == "sorted":
        return
    if _is_set_expr(iter_node, set_locals):
        ctx.add(CODE, module, where,
                "iteration over a set (hash order) in a "
                "merge/serialization module", hint=HINT)
    elif _is_values_call(iter_node):
        ctx.add(CODE, module, where,
                "iteration over .values() in a merge/serialization "
                "module hides the key order", hint=HINT)


def _check_function(ctx: LintContext, module: ModuleInfo,
                    fn: ast.AST) -> None:
    # Locals assigned a set expression anywhere in this function body;
    # flow-insensitive on purpose (a name that is *ever* a set is a
    # hash-ordered hazard at every loop that drinks from it).
    set_locals: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value,
                                                         set_locals):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    set_locals.add(target.id)
    for node in ast.walk(fn):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            _check_iter(ctx, module, node, node.iter, set_locals)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                _check_iter(ctx, module, node, gen.iter, set_locals)


def check(ctx: LintContext) -> None:
    for module in ctx.modules:
        if not _in_scope(module):
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _check_function(ctx, module, node)
