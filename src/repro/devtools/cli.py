"""``repro devtool`` -- the developer-facing entry points.

``lint`` runs every registered rule over the given paths (default: the
installed ``repro`` package) and prints coded ``file:line`` findings
with fix hints.  Exit status is the CI contract: 1 if any *error* was
found, and under ``--strict`` warnings fail too.  ``--json`` emits the
diagnostics as a JSON array for tooling.

``manifest`` regenerates the R004 schema manifest next to every module
that declares a ``SCHEMA_VERSION`` (``--write``), or prints the would-be
content for review.
"""

from __future__ import annotations

import json
import os
import sys
from typing import List, Optional

from .checkers import r004_schema
from .core import Diagnostic, iter_py_files, load_module, run_lint


def _default_root() -> str:
    """The repo checkout if we are inside one, else the package dir."""
    package_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))  # .../src/repro
    return package_dir


def _repo_root_for(path: str) -> str:
    """Nearest ancestor holding a .git, for pretty relative paths."""
    probe = os.path.abspath(path)
    while True:
        if os.path.isdir(os.path.join(probe, ".git")):
            return probe
        parent = os.path.dirname(probe)
        if parent == probe:
            return os.path.abspath(path)
        probe = parent


def run_lint_command(paths: List[str], strict: bool = False,
                     as_json: bool = False,
                     stream=None) -> int:
    out = stream if stream is not None else sys.stdout
    if not paths:
        paths = [_default_root()]
    root = _repo_root_for(paths[0])
    diagnostics = run_lint(paths, root=root)
    errors = [d for d in diagnostics if d.severity == "error"]
    warnings = [d for d in diagnostics if d.severity != "error"]
    if as_json:
        json.dump([d.to_dict() for d in diagnostics], out, indent=2,
                  sort_keys=True)
        out.write("\n")
    else:
        for diag in diagnostics:
            out.write(diag.format() + "\n")
        out.write(f"repro-lint: {len(errors)} error(s), "
                  f"{len(warnings)} warning(s) across "
                  f"{len(iter_py_files(paths))} file(s)\n")
    if errors:
        return 1
    if strict and warnings:
        return 1
    return 0


def run_manifest_command(paths: List[str], write: bool = False,
                         stream=None) -> int:
    out = stream if stream is not None else sys.stdout
    if not paths:
        paths = [_default_root()]
    root = _repo_root_for(paths[0])
    per_dir = {}
    for path in iter_py_files(paths):
        module, problem = load_module(path, root)
        if module is None:
            out.write(problem.format() + "\n")
            return 1
        if r004_schema.schema_version_of(module) is None:
            continue
        manifest_path = r004_schema.manifest_path_for(module)
        entry = r004_schema.build_manifest_entry(module)
        per_dir.setdefault(manifest_path, {})[module.basename] = entry
    if not per_dir:
        out.write("repro-lint: no SCHEMA_VERSION modules found\n")
        return 0
    for manifest_path, modules in sorted(per_dir.items()):
        payload = {"format": r004_schema.MANIFEST_FORMAT,
                   "modules": {name: modules[name]
                               for name in sorted(modules)}}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if write:
            with open(manifest_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            out.write(f"wrote {manifest_path}\n")
        else:
            out.write(f"--- {manifest_path}\n{text}")
    return 0


def run_devtool(args) -> int:
    """Dispatch for the ``repro devtool`` subcommand namespace."""
    if args.devtool_command == "lint":
        return run_lint_command(list(args.paths or []),
                                strict=args.strict, as_json=args.json)
    if args.devtool_command == "manifest":
        return run_manifest_command(list(args.paths or []),
                                    write=args.write)
    raise SystemExit(f"unknown devtool command: {args.devtool_command}")
