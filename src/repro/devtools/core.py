"""The lint engine: modules, diagnostics, suppressions, the runner.

The devtools subsystem is an AST-based static analyzer for the
*project's own* invariants -- the ones generic linters cannot know:
byte-identical canonical envelopes (no wall clock in report paths, no
set-order iteration in merges), lock discipline on daemon-shared state,
schema-version hygiene, picklable task units and a counted error
taxonomy.  Each rule lives in :mod:`repro.devtools.checkers` as a small
module exposing ``CODE`` and ``check(ctx)``; this module supplies what
every rule needs:

* :class:`ModuleInfo` -- one parsed source file: AST, source lines,
  import alias map and the suppression table;
* :class:`Diagnostic` -- one coded finding with a file:line anchor and
  a fix hint;
* :class:`LintContext` -- the checker's view of the whole lint scope
  (rules like R001's call-graph walk and R004's manifest compare are
  inherently cross-module);
* :func:`run_lint` -- collect files, parse, run every registered
  checker, apply suppressions, return sorted diagnostics.

Suppression syntax (mirrors the big linters)::

    something_racy()  # repro-lint: disable=R003 (reason why it is ok)

A suppression applies to its own line and the line below it (so a
comment can sit on its own line above the statement); on a ``def`` or
``class`` line it covers the whole body, which is how intentionally
lock-free code (e.g. post-drain merge reads) is waived once, at the
declaration, with one visible reason.  A suppression **without** a
parenthesized reason is itself a violation (:data:`META_CODE`):
unexplained waivers rot into blind spots.
"""

from __future__ import annotations

import ast
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "META_CODE", "Diagnostic", "ModuleInfo", "LintContext",
    "dotted_name", "iter_py_files", "load_module", "run_lint",
]

#: Code of the meta rule: malformed lint input (unparsable file,
#: suppression without a reason).  Never suppressible.
META_CODE = "R000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
    r"(?:\s*\(([^)]*)\))?")


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding, anchored to a file:line, with a fix hint."""

    code: str
    path: str
    line: int
    message: str
    hint: str = ""
    severity: str = "error"  # 'error' | 'warning'

    def format(self) -> str:
        text = (f"{self.path}:{self.line}: {self.code} "
                f"[{self.severity}] {self.message}")
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "path": self.path, "line": self.line,
                "message": self.message, "hint": self.hint,
                "severity": self.severity}


class ModuleInfo:
    """One parsed source file plus everything rules ask about it."""

    def __init__(self, path: str, display: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.display = display
        self.basename = os.path.basename(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        #: line -> codes suppressed on that line (and the next).
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: (first, last, codes) spans from def/class-line suppressions.
        self.span_suppressions: List[Tuple[int, int, Set[str]]] = []
        #: lines carrying a suppression with no parenthesized reason.
        self.reasonless: List[Tuple[int, str]] = []
        #: import alias -> canonical dotted module/name, e.g.
        #: ``{"np": "numpy", "now": "datetime.datetime.now"}``.
        self.imports: Dict[str, str] = {}
        self._scan_suppressions()
        self._scan_imports()

    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = {code.strip() for code in match.group(1).split(",")}
            reason = (match.group(2) or "").strip()
            if not reason:
                self.reasonless.append((lineno, match.group(1)))
                continue  # a reasonless waiver waives nothing
            self.line_suppressions.setdefault(lineno, set()).update(codes)
        if not self.line_suppressions:
            return
        # A suppression on (or directly above) a def/class line covers
        # the whole body -- the one-reason-per-construct form.
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            codes: Set[str] = set()
            codes |= self.line_suppressions.get(node.lineno, set())
            codes |= self.line_suppressions.get(node.lineno - 1, set())
            if codes:
                self.span_suppressions.append(
                    (node.lineno, node.end_lineno or node.lineno, codes))

    def _scan_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname
                                 or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are project-internal
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    # ------------------------------------------------------------------
    def resolve(self, dotted: Optional[str]) -> Optional[str]:
        """Canonicalize a dotted call target through the import map.

        ``datetime.now()`` after ``from datetime import datetime``
        resolves to ``datetime.datetime.now``; unknown heads pass
        through unchanged.
        """
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def suppressed(self, code: str, line: int) -> bool:
        if code == META_CODE:
            return False
        for lineno in (line, line - 1):
            if code in self.line_suppressions.get(lineno, ()):
                return True
        for first, last, codes in self.span_suppressions:
            if code in codes and first <= line <= last:
                return True
        return False


class LintContext:
    """What a checker sees: every module in scope plus the sink."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = list(modules)
        self.diagnostics: List[Diagnostic] = []

    def add(self, code: str, module: ModuleInfo, node,
            message: str, hint: str = "",
            severity: str = "error") -> None:
        line = node if isinstance(node, int) else node.lineno
        self.diagnostics.append(Diagnostic(
            code=code, path=module.display, line=line,
            message=message, hint=hint, severity=severity))


# ----------------------------------------------------------------------
# AST helpers shared by checkers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# file collection and the runner
# ----------------------------------------------------------------------
def iter_py_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` paths."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in ("__pycache__",))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.add(os.path.abspath(
                        os.path.join(dirpath, name)))
    return sorted(found)


def _display_path(path: str, root: Optional[str]) -> str:
    if root is not None:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (windows)
            return path
        if not rel.startswith(".."):
            return rel
    return path


def load_module(path: str, root: Optional[str] = None
                ) -> Tuple[Optional[ModuleInfo], Optional[Diagnostic]]:
    """Parse one file; a broken file is a diagnostic, not a crash."""
    display = _display_path(path, root)
    try:
        with tokenize.open(path) as handle:  # honors coding cookies
            source = handle.read()
        tree = ast.parse(source, filename=path)
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Diagnostic(
            code=META_CODE, path=display, line=int(line),
            message=f"cannot lint this file: {exc}",
            hint="fix the syntax/encoding error")
    return ModuleInfo(path, display, source, tree), None


def run_lint(paths: Sequence[str], root: Optional[str] = None,
             checkers: Optional[Sequence] = None) -> List[Diagnostic]:
    """Lint ``paths`` (files or directories) and return the findings.

    Suppressions are applied here, after every checker has run; the
    meta rule (:data:`META_CODE`) fires for unparsable files and for
    suppressions that carry no reason, and cannot itself be waived.
    """
    if checkers is None:
        from .checkers import ALL_CHECKERS
        checkers = ALL_CHECKERS
    if root is None:
        root = os.getcwd()
    modules: List[ModuleInfo] = []
    meta: List[Diagnostic] = []
    for path in iter_py_files(paths):
        module, problem = load_module(path, root)
        if problem is not None:
            meta.append(problem)
            continue
        assert module is not None
        modules.append(module)
        for lineno, codes in module.reasonless:
            meta.append(Diagnostic(
                code=META_CODE, path=module.display, line=lineno,
                message=f"suppression of {codes} has no reason",
                hint="append one: # repro-lint: disable="
                     f"{codes} (why this is safe)"))
    ctx = LintContext(modules)
    by_display = {module.display: module for module in modules}
    for checker in sorted(checkers, key=lambda c: c.CODE):
        checker.check(ctx)
    kept: List[Diagnostic] = list(meta)
    seen: Set[Diagnostic] = set(kept)
    for diag in ctx.diagnostics:
        module = by_display.get(diag.path)
        if module is not None and module.suppressed(diag.code, diag.line):
            continue
        if diag in seen:  # nested defs can be visited twice
            continue
        seen.add(diag)
        kept.append(diag)
    kept.sort(key=lambda d: (d.path, d.line, d.code, d.message))
    return kept
