"""Project-specific static analysis (``repro devtool lint``).

Generic linters check Python; this package checks the *repro
contract*: byte-identical canonical envelopes, lock discipline on
daemon-shared state, schema-version hygiene, picklable task units and
a counted error taxonomy.  See :mod:`repro.devtools.core` for the
engine and :mod:`repro.devtools.checkers` for the rules.
"""

from __future__ import annotations

from .core import Diagnostic, run_lint

__all__ = ["Diagnostic", "run_lint"]
