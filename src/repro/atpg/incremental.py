"""Incremental event-driven PODEM engine.

:class:`IncrementalATPG` is a drop-in replacement for
:class:`~repro.atpg.engine.SequentialATPG` that produces *bit-identical*
:class:`~repro.atpg.engine.TestResult`\\ s (status, sequences,
decision/backtrack counts, detected-at windows) while doing a fraction
of the work per search step.  The reference engine re-simulates the
whole W-frame window from scratch on every decision and every
backtrack; this engine keeps the window state alive across search steps
and moves it incrementally:

* **trail + undo log** -- every decision pushes a trail entry holding
  the pre-decision contents of each frame it touches; backtracking pops
  the trail and reinstalls them instead of re-simulating anything;
* **event wavefront** (``mode='none'``) -- a PI assignment propagates
  through its combinational fanout cone in topological order (a heap of
  topo positions), crosses into later frames only through flip-flops
  whose captured value actually changed, and dies out as soon as no
  frame-boundary value differs;
* **frame wavefront** (learning modes) -- the learned-implication
  fixpoints (:meth:`_apply_known` / :meth:`_apply_forbidden`) are
  deliberately bounded in rounds, which makes sub-frame increments
  unsound to replay; instead the decision frame and its successors are
  rebuilt with the exact reference frame body, stopping at the first
  frame whose flip-flop boundary (good value, faulty value, forbidden
  shadow of every FF data input) is unchanged -- frames before the
  decision and after the dead wavefront are never touched;
* **O(hits) implication lookup** -- learned relations are applied from
  antecedent-indexed per-frame buckets
  (:meth:`repro.core.relations.RelationDB.frame_index`) instead of
  filtering the adjacency list on every query;
* **maintained D-sets** -- the set of fault-effect nodes per frame is
  updated alongside the planes, so detection checks, the D-frontier and
  the X-path search iterate over actual fault effects instead of
  scanning every node of every frame.

Correctness leans on two facts.  Three-valued gate evaluation is
*monotone* in the information order (a decision can only refine X to a
known value, never flip a known value), so recomputing exactly the
nodes whose fanin values changed -- in topological order -- reaches the
same fixpoint as full re-evaluation.  And the faulty plane is kept
*canonical* by :meth:`SequentialATPG._eval_frame` (an ``fv`` entry
exists iff faulty differs from good), so frame states are pure
functions of the assignments and compare with ``==``.

Flat circuit structure (fanin tuples, topo positions, per-node
combinational fanouts, FF data pairs) is lowered once per circuit --
reusing :func:`repro.sim.compiled.compile_circuit`'s cached lowering --
and shared by every engine instance via a fingerprint-keyed cache;
fault cones ride on the circuit-level ``transitive_fanout`` memo.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import X, eval_gate, inv
from ..circuit.netlist import Circuit
from ..core.relations import RelationDB
from ..sim.compiled import compile_circuit
from .engine import SequentialATPG, _faulty_value, _good_value
from .faults import Fault, fault_site_source


class _CircuitIndex:
    """Flat per-circuit structure shared by every incremental engine."""

    __slots__ = ("circuit", "n", "gtype", "fanins", "comb_fanouts",
                 "topo_pos", "ff_pairs", "inputs", "outputs", "is_comb")

    def __init__(self, circuit: Circuit):
        cc = compile_circuit(circuit)  # cached opcode/fanin lowering
        nodes = circuit.nodes
        self.circuit = circuit
        self.n = cc.n
        self.gtype = [node.gate_type for node in nodes]
        self.fanins: List[Tuple[int, ...]] = [None] * cc.n
        for _op, nid, fis in cc.schedule:
            self.fanins[nid] = fis
        for node in nodes:  # PIs/FFs (not in the schedule)
            if self.fanins[node.nid] is None:
                self.fanins[node.nid] = tuple(node.fanins)
        self.comb_fanouts: List[Tuple[int, ...]] = [
            tuple(fo for fo in node.fanouts
                  if nodes[fo].is_combinational)
            for node in nodes]
        self.topo_pos = [0] * cc.n
        for pos, nid in enumerate(circuit.topo_order):
            self.topo_pos[nid] = pos
        #: (FF output nid, FF data-input nid) in circuit FF order.
        self.ff_pairs: Tuple[Tuple[int, int], ...] = tuple(
            zip(cc.ffs, cc.ff_data))
        self.inputs = cc.inputs
        self.outputs = frozenset(cc.outputs)
        self.is_comb: List[bool] = [n.is_combinational for n in nodes]


_INDEX_CACHE: "OrderedDict[str, _CircuitIndex]" = OrderedDict()
_INDEX_CAP = 128


def circuit_index(circuit: Circuit) -> _CircuitIndex:
    """Lower (or fetch) the flat index, keyed on the fingerprint."""
    key = circuit.fingerprint()
    hit = _INDEX_CACHE.get(key)
    if hit is not None:
        _INDEX_CACHE.move_to_end(key)
        return hit
    idx = _CircuitIndex(circuit)
    _INDEX_CACHE[key] = idx
    while len(_INDEX_CACHE) > _INDEX_CAP:
        _INDEX_CACHE.popitem(last=False)
    return idx


class _IncWindow:
    """Persistent window state, duck-typed to the reference ``_Window``.

    Adds per-frame D-sets (node ids where :meth:`is_d` holds) that the
    engine maintains alongside the planes.
    """

    __slots__ = ("gv", "fv", "forb", "dset", "conflict")

    def __init__(self):
        self.gv: List[List[int]] = []
        self.fv: List[Dict[int, int]] = []
        self.forb: List[Dict[int, int]] = []
        self.dset: List[Set[int]] = []
        self.conflict = False

    def add_frame(self, n: int) -> None:
        self.gv.append([X] * n)
        self.fv.append({})
        self.forb.append({})
        self.dset.append(set())

    def faulty(self, frame: int, nid: int) -> int:
        value = self.fv[frame].get(nid)
        return self.gv[frame][nid] if value is None else value

    def is_d(self, frame: int, nid: int) -> bool:
        g = self.gv[frame][nid]
        f = self.faulty(frame, nid)
        return g != X and f != X and g != f


class _TrailEntry:
    """Undo record of one decision: pre-decision frame contents."""

    __slots__ = ("frames",)

    def __init__(self):
        #: frame index -> (gv list, fv dict, forb dict, dset set).
        self.frames: Dict[int, Tuple[list, dict, dict, set]] = {}


class IncrementalATPG(SequentialATPG):
    """Event-driven PODEM over a trailed window state.

    Same constructor, same :meth:`generate` contract and bit-identical
    results as :class:`SequentialATPG`; see the module docstring for
    what moves incrementally.  The reference engine remains available
    as the differential oracle (``atpg_engine='reference'``).
    """

    def __init__(self, circuit: Circuit, *,
                 relations: Optional[RelationDB] = None,
                 mode: str = "none",
                 backtrack_limit: int = 30,
                 max_frames: int = 10):
        super().__init__(circuit, relations=relations, mode=mode,
                         backtrack_limit=backtrack_limit,
                         max_frames=max_frames)
        self._idx = circuit_index(circuit)
        self._state: Optional[_IncWindow] = None
        self._state_fault: Optional[Fault] = None
        self._assignments: Dict[Tuple[int, int], int] = {}
        self._trail: List[_TrailEntry] = []

    # ------------------------------------------------------------------
    # shared-structure overrides
    # ------------------------------------------------------------------
    def _implications_at(self, nid: int, value: int,
                         frame: int) -> Sequence[Tuple[int, int]]:
        return self.relations.frame_index(frame).get((nid, value), ())

    # ------------------------------------------------------------------
    # PODEM core: identical control flow, incremental state
    # ------------------------------------------------------------------
    def _podem(self, fault: Fault, window: int, budget: List[int],
               decisions: List[int]
               ) -> Tuple[str, Dict[Tuple[int, int], int]]:
        state = self._prepare(fault, window)
        assignments = self._assignments
        stack: List[Tuple[Tuple[int, int], int, bool]] = []
        while True:
            step = "decide"
            if state.conflict:
                step = "backtrack"
            elif self._detected(state, window):
                return "detected", dict(assignments)
            elif not self._has_potential(state, window, fault):
                step = "backtrack"
            if step == "decide":
                target = self._next_target(state, window, fault)
                if target is None:
                    step = "backtrack"
                else:
                    key, value = target
                    assignments[key] = value
                    stack.append((key, value, False))
                    decisions[0] += 1
                    self._apply(fault, key, value)
                    continue
            # Backtrack: pop the trail instead of re-simulating.
            flipped = False
            while stack:
                key, value, tried = stack.pop()
                del assignments[key]
                self._undo()
                if not tried:
                    budget[0] -= 1
                    if budget[0] < 0:
                        return "aborted", dict(assignments)
                    assignments[key] = inv(value)
                    stack.append((key, inv(value), True))
                    self._apply(fault, key, inv(value))
                    flipped = True
                    break
            if not flipped:
                return "exhausted", dict(assignments)

    # ------------------------------------------------------------------
    # window lifecycle
    # ------------------------------------------------------------------
    def _prepare(self, fault: Fault, window: int) -> _IncWindow:
        """Baseline (assignment-free) state for ``window`` frames.

        Reused across the growing-window sweep of one ``generate()``
        call: an exhausted search pops its whole trail, so the state is
        back at the baseline and window growth just appends frames.  A
        different fault -- or a stale mid-search state from an early
        ``detected``/``aborted`` return -- forces a rebuild.
        """
        state = self._state
        if (state is None or self._state_fault != fault
                or self._trail or self._assignments):
            self._assignments = {}
            self._trail = []
            state = _IncWindow()
            self._state = state
            self._state_fault = fault
        while len(state.gv) < window:
            frame = len(state.gv)
            state.add_frame(self._n)
            # Past a baseline conflict the reference leaves frames
            # fresh-X (it returns early); mirror that.
            if not state.conflict:
                self._compute_frame(fault, frame, state)
        return state

    def _compute_frame(self, fault: Fault, frame: int,
                       state: _IncWindow) -> None:
        """The reference ``_simulate`` frame body, on persistent state."""
        circuit = self.circuit
        cone = self._fault_cone(fault)
        assignments = self._assignments
        gv = state.gv[frame]
        fv = state.fv[frame]
        for pid in circuit.inputs:
            gv[pid] = assignments.get((frame, pid), X)
        if frame > 0:
            prev_gv = state.gv[frame - 1]
            prev_fv = state.fv[frame - 1]
            for fid, data in self._idx.ff_pairs:
                gv[fid] = prev_gv[data]
                fdata = prev_fv.get(data)
                if fdata is not None and fdata != prev_gv[data]:
                    fv[fid] = fdata
                if fault.pin is not None and fid == fault.node:
                    fv[fid] = fault.value
        self._force_site(fault, gv, fv)
        self._eval_frame(fault, frame, state, cone)
        if self.mode != "none":
            if self.mode == "known":
                self._apply_known(fault, frame, state, cone)
            else:
                self._apply_forbidden(frame, state)
        self._refresh_dset(state, frame)

    def _refresh_dset(self, state: _IncWindow, frame: int) -> None:
        """Rebuild one frame's D-set from its canonical faulty plane."""
        gv = state.gv[frame]
        state.dset[frame] = {
            nid for nid, f in state.fv[frame].items()
            if f != X and gv[nid] != X and f != gv[nid]}

    def _update_dset(self, state: _IncWindow, frame: int,
                     nid: int) -> None:
        f = state.fv[frame].get(nid)
        if f is not None and f != X and state.gv[frame][nid] != X \
                and f != state.gv[frame][nid]:
            state.dset[frame].add(nid)
        else:
            state.dset[frame].discard(nid)

    # ------------------------------------------------------------------
    # decide / undo
    # ------------------------------------------------------------------
    def _save_copy(self, entry: _TrailEntry, frame: int) -> None:
        """Snapshot a frame into the trail before in-place mutation."""
        if frame not in entry.frames:
            state = self._state
            entry.frames[frame] = (list(state.gv[frame]),
                                   dict(state.fv[frame]),
                                   dict(state.forb[frame]),
                                   set(state.dset[frame]))

    def _apply(self, fault: Fault, key: Tuple[int, int],
               value: int) -> None:
        """Propagate one new PI assignment through the event wavefront."""
        state = self._state
        frame, pid = key
        entry = _TrailEntry()
        self._trail.append(entry)
        if self.mode == "none":
            self._save_copy(entry, frame)
            state.gv[frame][pid] = value
            self._update_dset(state, frame, pid)
            self._propagate(fault, frame, (pid,), entry)
        else:
            self._rebuild(fault, frame, entry)

    def _undo(self) -> None:
        """Pop one decision: reinstall every frame it touched."""
        entry = self._trail.pop()
        state = self._state
        for frame, (gv, fv, forb, dset) in entry.frames.items():
            state.gv[frame] = gv
            state.fv[frame] = fv
            state.forb[frame] = forb
            state.dset[frame] = dset
        state.conflict = False

    # ------------------------------------------------------------------
    # mode 'none': in-frame event propagation
    # ------------------------------------------------------------------
    def _propagate_frame(self, fault: Fault, state: _IncWindow,
                         frame: int, seeds, self_seeds=()) -> None:
        """In-frame event-driven recompute in topological order.

        ``seeds`` are nodes whose value changed (their combinational
        fanouts are scheduled); ``self_seeds`` are combinational nodes
        that must be recomputed themselves (a node forced by a learned
        implication needs its own faulty-plane entry re-normalized, just
        as the reference's full re-evaluation pass would).
        """
        idx = self._idx
        cone = self._fault_cone(fault)
        tp = idx.topo_pos
        fanins = idx.fanins
        gtype = idx.gtype
        comb_fanouts = idx.comb_fanouts
        fault_node = fault.node
        fault_pin = fault.pin
        heappush = heapq.heappush
        heappop = heapq.heappop
        gv = state.gv[frame]
        fv = state.fv[frame]
        dset = state.dset[frame]
        heap: List[Tuple[int, int]] = []
        pushed: Set[int] = set()
        for s in self_seeds:
            if s not in pushed:
                pushed.add(s)
                heappush(heap, (tp[s], s))
        for s in seeds:
            for fo in comb_fanouts[s]:
                if fo not in pushed:
                    pushed.add(fo)
                    heappush(heap, (tp[fo], fo))
        while heap:
            _, nid = heappop(heap)
            changed = False
            old_g = gv[nid]
            if old_g == X:
                good = _good_value(gtype[nid], fanins[nid], gv)
                if good != X:
                    gv[nid] = good
                    changed = True
            if nid in cone:
                g_now = gv[nid]
                old_entry = fv.get(nid)
                old_eff = old_g if old_entry is None else old_entry
                if nid == fault_node:
                    if fault_pin is None:
                        faulty = fault.value
                    else:
                        vals = [fv.get(f, gv[f])
                                for f in fanins[nid]]
                        vals[fault_pin] = fault.value
                        faulty = eval_gate(gtype[nid], vals)
                else:
                    faulty = _faulty_value(gtype[nid], fanins[nid],
                                           gv, fv)
                if faulty != g_now:
                    fv[nid] = faulty
                elif old_entry is not None:
                    del fv[nid]
                if faulty != old_eff:
                    changed = True
                if g_now != X and faulty != X and faulty != g_now:
                    dset.add(nid)
                else:
                    dset.discard(nid)
            if changed:
                for fo in comb_fanouts[nid]:
                    if fo not in pushed:
                        pushed.add(fo)
                        heappush(heap, (tp[fo], fo))

    def _propagate(self, fault: Fault, frame: int, seeds, entry) -> None:
        """Event-driven update from changed sources, frames forward.

        ``seeds`` are source nodes (the assigned PI, then changed FF
        outputs) of ``frame`` whose good value changed.  Affected
        combinational nodes are recomputed in topological order; a frame
        boundary is crossed only through FFs whose captured (good,
        faulty) pair differs, and the sweep stops at the first boundary
        with no change.
        """
        state = self._state
        idx = self._idx
        window = len(state.gv)
        fault_node = fault.node
        while True:
            self._propagate_frame(fault, state, frame, seeds)
            gv = state.gv[frame]
            fv = state.fv[frame]
            # Frame boundary: carry changed FF captures into the next
            # frame; the wavefront dies when nothing changed.
            nxt = frame + 1
            if nxt >= window:
                return
            changed_ffs: List[int] = []
            next_gv = state.gv[nxt]
            next_fv = state.fv[nxt]
            for fid, data in idx.ff_pairs:
                new_g = gv[data]
                fdata = fv.get(data)
                new_f = fdata if (fdata is not None
                                  and fdata != new_g) else None
                if fid == fault_node:
                    # A faulted FF's plane is pinned every frame: pin
                    # faults at the capture (stuck D input), output
                    # faults by ``_force_site``.
                    new_f = fault.value
                if new_g != next_gv[fid] or new_f != next_fv.get(fid):
                    self._save_copy(entry, nxt)
                    next_gv[fid] = new_g
                    if new_f is None:
                        next_fv.pop(fid, None)
                    else:
                        next_fv[fid] = new_f
                    self._update_dset(state, nxt, fid)
                    changed_ffs.append(fid)
            if not changed_ffs:
                return
            frame = nxt
            seeds = changed_ffs

    # ------------------------------------------------------------------
    # learning modes: frame-wavefront rebuild
    # ------------------------------------------------------------------
    def _rebuild(self, fault: Fault, start: int, entry) -> None:
        """Rebuild frames ``start..`` until the FF boundary is stable.

        The learned-implication fixpoints are round-bounded, so replaying
        them on partial deltas is unsound; each affected frame runs the
        exact reference frame body instead.  Frames whose predecessor
        boundary (FF data good/faulty/forbidden triple) is unchanged are
        provably identical and are left untouched.
        """
        state = self._state
        n = self._n
        for frame in range(start, len(state.gv)):
            if frame > start and not self._boundary_changed(entry, frame):
                return
            entry.frames.setdefault(
                frame, (state.gv[frame], state.fv[frame],
                        state.forb[frame], state.dset[frame]))
            state.gv[frame] = [X] * n
            state.fv[frame] = {}
            state.forb[frame] = {}
            state.dset[frame] = set()
            self._compute_frame(fault, frame, state)
            if state.conflict:
                return

    def _boundary_changed(self, entry: _TrailEntry, frame: int) -> bool:
        """Did any FF-visible value of ``frame - 1`` change?"""
        old_gv, old_fv, old_forb, _dset = entry.frames[frame - 1]
        state = self._state
        new_gv = state.gv[frame - 1]
        new_fv = state.fv[frame - 1]
        new_forb = state.forb[frame - 1]
        for _fid, data in self._idx.ff_pairs:
            if old_gv[data] != new_gv[data] \
                    or old_fv.get(data) != new_fv.get(data) \
                    or old_forb.get(data) != new_forb.get(data):
                return True
        return False

    # ------------------------------------------------------------------
    # learned-knowledge application over the frame buckets
    # ------------------------------------------------------------------
    def _apply_known(self, fault: Fault, frame: int, state: _IncWindow,
                     fault_cone) -> None:
        """Reference fixpoint with O(hits) lookup and event re-evals.

        Same rounds, same application order, same conflicts as
        :meth:`SequentialATPG._apply_known`; the per-round full-frame
        re-evaluation is replaced by event propagation seeded at exactly
        the nodes the round forced (monotone, so the fixpoint each round
        reaches is identical), and implication lookup comes from the
        antecedent-indexed per-frame buckets.
        """
        buckets = self.relations.frame_index(frame)
        if not buckets:
            return
        gv = state.gv[frame]
        fv = state.fv[frame]
        bucket_get = buckets.get
        is_comb = self._idx.is_comb
        for _round in range(6):
            changed = False
            forced: List[int] = []
            for nid in range(self._n):
                value = gv[nid]
                if value == X:
                    continue
                implications = bucket_get((nid, value))
                if implications is None:
                    continue
                for m, u in implications:
                    if gv[m] == X:
                        gv[m] = u
                        if m not in fault_cone:
                            fv.pop(m, None)
                        forced.append(m)
                        changed = True
                    elif gv[m] != u:
                        state.conflict = True
                        return
            if not changed:
                break
            self._propagate_frame(
                fault, state, frame, forced,
                self_seeds=[m for m in forced if is_comb[m]])

    def _apply_forbidden(self, frame: int, state: _IncWindow) -> None:
        """Reference shadow fixpoint, skipped when provably inert.

        With no implication valid at this frame and no shadow state to
        transfer, the reference pass cannot mark anything (the forward
        propagation of an empty shadow plane reproduces the good values
        exactly), so the whole frame scan is skipped.
        """
        if not self.relations.frame_index(frame) and (
                frame == 0 or not state.forb[frame - 1]):
            return
        super()._apply_forbidden(frame, state)

    # ------------------------------------------------------------------
    # search guidance over maintained D-sets
    # ------------------------------------------------------------------
    def _detected(self, state: _IncWindow, window: int) -> bool:
        outputs = self._idx.outputs
        for frame in range(window):
            dset = state.dset[frame]
            if dset and not outputs.isdisjoint(dset):
                return True
        return False

    def _d_frontier(self, state: _IncWindow, window: int, fault: Fault
                    ) -> List[Tuple[int, int]]:
        circuit = self.circuit
        nodes = circuit.nodes
        out: List[Tuple[int, int]] = []
        src = fault_site_source(circuit, fault)
        for frame in range(window):
            gv = state.gv[frame]
            for nid in sorted(state.dset[frame]):
                for fo in nodes[nid].fanouts:
                    fo_node = nodes[fo]
                    if fo_node.is_combinational and (
                            gv[fo] == X or state.faulty(frame, fo) == X):
                        out.append((frame, fo))
            if fault.pin is not None and gv[src] == inv(fault.value):
                if gv[fault.node] == X or \
                        state.faulty(frame, fault.node) == X:
                    out.append((frame, fault.node))
        return out

    def _has_potential(self, state: _IncWindow, window: int,
                       fault: Fault) -> bool:
        circuit = self.circuit
        src = fault_site_source(circuit, fault)
        activated = self._activated(state, window, fault) is not None
        if not activated:
            for frame in range(window):
                if state.gv[frame][src] == X:
                    return True
            return False
        # X-path check seeded from the maintained D-sets (reachability,
        # so traversal order does not affect the verdict).
        seen: Set[Tuple[int, int]] = set()
        stack: List[Tuple[int, int]] = []
        for frame in range(window):
            for nid in state.dset[frame]:
                stack.append((frame, nid))
        if fault.pin is not None:
            for frame in range(window):
                if state.gv[frame][src] == inv(fault.value):
                    stack.append((frame, fault.node))
        while stack:
            frame, nid = stack.pop()
            if (frame, nid) in seen:
                continue
            seen.add((frame, nid))
            node = circuit.nodes[nid]
            value_known = (state.gv[frame][nid] != X
                           and state.faulty(frame, nid) != X)
            is_effect = state.is_d(frame, nid)
            if node.is_output and (is_effect or not value_known):
                if is_effect:
                    return True
                if state.gv[frame][nid] == X or \
                        state.faulty(frame, nid) == X:
                    return True
            if value_known and not is_effect:
                continue
            for fo in node.fanouts:
                fo_node = circuit.nodes[fo]
                if fo_node.is_sequential:
                    if frame + 1 < window:
                        stack.append((frame + 1, fo))
                else:
                    stack.append((frame, fo))
        return False
