"""Full-circuit ATPG runs: fault ordering, dropping, statistics.

This is the experiment harness behind the paper's Table 5: run test
generation over the collapsed fault list with a given backtrack limit,
with or without learned knowledge, and report detected / untestable /
aborted counts plus CPU time.

Flow per fault (HITEC-style):

1. faults untestable by tie gates are marked untestable up front (the
   learning by-product of section 3.2);
2. PODEM-based sequential test generation (:class:`SequentialATPG`);
3. on success the generated sequence is fault-simulated against all
   remaining faults and every detected fault is dropped -- the paper's
   section 5.2 discussion of "random effects" (faults found by
   simulation that targeted ATPG would abort on) emerges from exactly
   this mechanism.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..circuit.netlist import Circuit
from ..core.engine import LearnResult
from ..core.ties import untestable_faults_from_ties
from ..sim.resident import make_resident_dropper
from .engine import SequentialATPG, TestResult, make_atpg
from .faults import Fault, collapse_faults, collapse_with_classes


@dataclass
class ATPGStats:
    """Aggregate results of one ATPG run (one Table-5 cell group)."""

    circuit: str
    mode: str
    backtrack_limit: int
    total_faults: int = 0
    detected: int = 0
    untestable: int = 0
    aborted: int = 0
    #: Faults detected by fault simulation of other faults' tests.
    collateral: int = 0
    decisions: int = 0
    backtracks: int = 0
    cpu_s: float = 0.0
    #: Number of test sequences generated (counted even when the vectors
    #: themselves are discarded via ``keep_sequences=False``).
    sequences_total: int = 0
    #: The generated vectors; empty when the run discarded them.
    sequences: List[List[Dict[str, int]]] = field(default_factory=list)

    @property
    def test_coverage(self) -> float:
        """Detected / (total - untestable): the paper's test coverage."""
        testable = self.total_faults - self.untestable
        return self.detected / testable if testable else 1.0

    @property
    def fault_coverage(self) -> float:
        return (self.detected / self.total_faults
                if self.total_faults else 1.0)

    def row(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit,
            "mode": self.mode,
            "backtrack_limit": self.backtrack_limit,
            "total": self.total_faults,
            "det": self.detected,
            "untest": self.untestable,
            "aborted": self.aborted,
            "test_cov_%": round(100.0 * self.test_coverage, 2),
            "sequences": self.sequences_total,
            "cpu_s": round(self.cpu_s, 3),
        }


def prepare_fault_list(circuit: Circuit,
                       faults: Optional[Sequence[Fault]] = None,
                       max_faults: Optional[int] = None,
                       fill_seed: int = 12345):
    """The one canonical fault-list preparation: collapse + sampling.

    Returns ``(faults, classes)`` exactly as :func:`run_atpg` consumes
    them.  This is a pure function of its arguments (sampling uses its
    own ``Random(fill_seed)``), so distributed shard workers, the merge
    replay and the serial path all reconstruct the identical list --
    fault *indices* into it are a stable cross-process vocabulary.
    ``classes`` is None when an explicit ``faults`` sequence was given
    (no collapsing happened, so there are no equivalence classes).
    """
    classes = None
    if faults is None:
        faults, classes = collapse_with_classes(circuit)
    faults = list(faults)
    if max_faults is not None and len(faults) > max_faults:
        rng = random.Random(fill_seed)
        faults = rng.sample(faults, max_faults)
        faults.sort(key=lambda f: (f.node, f.pin is not None, f.value))
    return faults, classes


def tie_untestable_indices(circuit: Circuit,
                           learned: Optional[LearnResult],
                           faults: Sequence[Fault],
                           classes=None) -> Set[int]:
    """Indices of faults pre-marked untestable by tie gates.

    Shared by the serial loop and the distributed shard workers so both
    skip (and count) exactly the same faults.  Empty without ``learned``
    -- the paper's true no-learning baseline never sees ties.
    """
    if learned is None:
        return set()
    index_of = {fault: i for i, fault in enumerate(faults)}
    return {index_of[fault]
            for fault in untestable_faults_from_ties(
                circuit, learned.ties, faults, classes)}


def run_atpg(circuit: Circuit, *,
             learned: Optional[LearnResult] = None,
             config=None,
             mode: str = "none",
             backtrack_limit: int = 30,
             max_frames: int = 10,
             faults: Optional[Sequence[Fault]] = None,
             fill_seed: int = 12345,
             max_faults: Optional[int] = None,
             keep_sequences: bool = True,
             sim_backend: str = "compiled",
             sim_width: Optional[int] = None,
             atpg_engine: str = "incremental",
             progress: Optional[Callable[[int, int], None]] = None,
             generate: Optional[Callable[[Fault], TestResult]] = None,
             cancel: Optional[Callable[[], None]] = None
             ) -> ATPGStats:
    """Generate tests for every fault; returns aggregate statistics.

    ``mode`` is 'none' (no sequential learning), 'known' or 'forbidden'
    (the two Table-5 learning scenarios).  ``learned`` must be supplied
    for the learning modes and is also used (in every mode it is present)
    to pre-mark tie-gate untestable faults -- pass ``learned=None`` for
    the paper's true no-learning baseline.

    ``config`` bundles every knob except ``learned``/``faults`` into one
    object (an :class:`repro.flow.ATPGConfig`); when given it overrides
    the individual keyword arguments.  ``keep_sequences=False`` discards
    generated vectors after fault simulation (suite runs over large
    circuits would otherwise hold every test in memory);
    :attr:`ATPGStats.sequences_total` counts them either way.
    ``sim_backend`` picks the fault-dropping simulator ('compiled',
    'array' or 'reference') and ``sim_width`` its machine-batch width
    (``None`` = backend default; packing never changes a detection
    set); ``atpg_engine`` picks the PODEM engine
    ('incremental' or 'reference', see
    :func:`repro.atpg.engine.make_atpg`).  Counts, sequences and
    statistics are identical for every combination.

    ``progress`` (never part of ``config``: it is UI, not data) is
    called as ``progress(targeted, total)`` after each fault the main
    loop targets, so long runs can stream liveness without changing any
    result -- the API layer turns it into
    :class:`~repro.api.events.ProgressEvent` ticks.

    ``cancel`` (UI-adjacent, like ``progress``) is a checkpoint hook
    called before each fault is targeted; to abandon the run it raises
    (the serve tier passes a deadline/disconnect token whose ``check``
    raises a :class:`~repro.api.errors.ReproError`).  A run that is
    never cancelled is unaffected: the hook returning ``None`` costs
    one call per fault.

    ``generate`` is the distributed layer's injection point: when given
    it replaces ``make_atpg(...).generate`` (no engine is built here),
    so :mod:`repro.dist.shards` can replay precomputed per-fault
    results through this exact loop -- dropping, fill RNG, collateral
    accounting and all -- and merge shard outcomes into statistics
    byte-identical to a serial run *by construction*, not by imitation.
    """
    if config is not None:
        mode = config.mode
        backtrack_limit = config.backtrack_limit
        max_frames = config.max_frames
        fill_seed = config.fill_seed
        max_faults = config.max_faults
        keep_sequences = config.keep_sequences
        sim_backend = config.sim_backend
        sim_width = getattr(config, "sim_width", sim_width)
        atpg_engine = getattr(config, "atpg_engine", atpg_engine)
    start = time.perf_counter()
    faults, classes = prepare_fault_list(circuit, faults=faults,
                                         max_faults=max_faults,
                                         fill_seed=fill_seed)
    stats = ATPGStats(circuit=circuit.name, mode=mode,
                      backtrack_limit=backtrack_limit,
                      total_faults=len(faults))
    if generate is None:
        relations = learned.relations if learned is not None else None
        atpg = make_atpg(circuit, engine=atpg_engine,
                         relations=relations if mode != "none" else None,
                         mode=mode, backtrack_limit=backtrack_limit,
                         max_frames=max_frames)
        generate = atpg.generate
    rng = random.Random(fill_seed)
    input_names = [circuit.nodes[i].name for i in circuit.inputs]

    status: Dict[int, str] = {}
    for index in tie_untestable_indices(circuit, learned, faults,
                                        classes):
        status[index] = "untestable"
    remaining: List[int] = [i for i in range(len(faults))
                            if i not in status]
    # One resident dropper serves the whole loop: the array backend
    # keeps its fault batches (and injection plans) alive across every
    # generated sequence, compacting dropped columns in place instead
    # of re-slicing + re-planning the shrinking subset per call.
    dropper = make_resident_dropper(circuit, faults, remaining,
                                    backend=sim_backend,
                                    width=sim_width)
    targeted = 0
    for index in list(remaining):
        if cancel is not None:
            cancel()
        targeted += 1
        if status.get(index) is not None:
            if progress is not None:
                progress(targeted, len(remaining))
            continue
        result = generate(faults[index])
        stats.decisions += result.decisions
        stats.backtracks += result.backtracks
        if result.status == "detected":
            sequence = _fill_sequence(result.sequence, input_names, rng)
            stats.sequences_total += 1
            if keep_sequences:
                stats.sequences.append(sequence)
            status[index] = "detected"
            dropper.discard(index)
            # Drop everything else this sequence detects.  The dropper
            # only ever reports live (status-None) faults, and the
            # targeted fault was retired above, so every hit is a
            # collateral detection.
            for hit in dropper.drop(sequence):
                status[hit] = "detected"
                stats.collateral += 1
        else:
            status[index] = result.status
            dropper.discard(index)
        if progress is not None:
            progress(targeted, len(remaining))
    for verdict in status.values():
        if verdict == "detected":
            stats.detected += 1
        elif verdict == "untestable":
            stats.untestable += 1
        else:
            stats.aborted += 1
    stats.aborted += len(faults) - len(status)
    stats.cpu_s = time.perf_counter() - start
    return stats


def _fill_sequence(sequence: List[Dict[str, int]],
                   input_names: List[str],
                   rng: random.Random) -> List[Dict[str, int]]:
    """Complete don't-care PI positions with random values.

    Random fill maximises collateral detections during fault simulation,
    matching production practice (and the paper's observation that some
    faults are only ever caught by simulation of other faults' tests).
    """
    filled = []
    for vector in sequence:
        out = dict(vector)
        for name in input_names:
            out.setdefault(name, rng.randint(0, 1))
        filled.append(out)
    return filled


def compare_modes(circuit: Circuit, learned: LearnResult, *,
                  config=None,
                  backtrack_limits: Optional[Sequence[int]] = None,
                  max_frames: int = 10,
                  max_faults: Optional[int] = None,
                  cancel: Optional[Callable[[], None]] = None
                  ) -> List[ATPGStats]:
    """The full Table-5 protocol for one circuit.

    Runs no-learning, forbidden-value and known-value ATPG at every
    backtrack limit and returns the stats in table order.  ``config``
    (an :class:`repro.flow.ATPGConfig`) supplies the per-run knobs; its
    ``backtrack_limit`` seeds a single-entry ``backtrack_limits`` unless
    that argument is passed explicitly.
    """
    if config is not None:
        max_frames = config.max_frames
        max_faults = config.max_faults
    if backtrack_limits is None:
        backtrack_limits = ((config.backtrack_limit,) if config
                            else (30, 1000))
    rows = []
    for limit in backtrack_limits:
        for mode, use_learned in (("none", None), ("forbidden", learned),
                                  ("known", learned)):
            rows.append(run_atpg(
                circuit, learned=use_learned, mode=mode,
                backtrack_limit=limit, max_frames=max_frames,
                max_faults=max_faults,
                fill_seed=config.fill_seed if config else 12345,
                keep_sequences=config.keep_sequences if config else True,
                sim_backend=(config.sim_backend if config
                             else "compiled"),
                sim_width=config.sim_width if config else None,
                atpg_engine=(config.atpg_engine if config
                             else "incremental"),
                cancel=cancel))
    return rows
