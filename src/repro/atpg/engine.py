"""Sequential test generation: PODEM over an expanding time-frame window.

The generator models the classic HITEC-style search the paper enhances:

* the circuit is unrolled into W time frames; frame-0 state is all-X
  (power-up unknown), so every generated test is self-initializing;
* decisions are made only on primary inputs of some frame (PODEM), values
  are obtained by composite good/faulty 3-valued simulation of the whole
  window, and a backtrack limit bounds the search (the paper's 30/1000);
* the window grows up to ``max_frames``; a fault whose search space is
  exhausted at every window size without hitting the backtrack limit is
  reported untestable (bounded-depth claim, see DESIGN.md).

Learned knowledge plugs in exactly as section 4 of the paper describes:

* ``mode='known'`` -- learned relations are applied as *known-value
  implications*: implied good values are forced during simulation, which
  eliminates decision nodes and kills dead branches sooner;
* ``mode='forbidden'`` -- relations mark *forbidden values* in a shadow
  plane that propagates forward like values (forbidden-0 implies as 1);
  they never force a value but steer backtrace choices to inputs whose
  value is already determined by the invariants, and flag conflicts when
  a simulated value hits a forbidden one;
* tie gates make faults untestable before search (see driver).

Relation warm-up is respected: a relation learned at frame t is only
applied at window frames >= t.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import (
    CONTROLLING_VALUE,
    GateType,
    INVERTING,
    ONE,
    X,
    ZERO,
    eval_gate,
    inv,
)
from ..circuit.netlist import Circuit
from ..core.relations import RelationDB
from .faults import Fault, fault_site_source
from .scoap import Testability, compute_testability

MODES = ("none", "known", "forbidden")

#: Selectable PODEM engines (``ATPGConfig.atpg_engine``, CLI
#: ``--atpg-engine``).  ``incremental`` is the event-driven engine
#: (:mod:`repro.atpg.incremental`); ``reference`` is the original
#: re-simulate-everything loop, kept as the differential oracle.
ATPG_ENGINES = ("reference", "incremental")


def _good_value(t: GateType, fanins: Sequence[int],
                gv: List[int]) -> int:
    """``eval_gate(t, [gv[f] for f in fanins])`` without the list.

    The per-gate fanin comprehension is the single largest allocation in
    the window-simulation hot loop; this reads the value array directly.
    """
    if t is GateType.AND or t is GateType.NAND:
        out = ONE
        for f in fanins:
            v = gv[f]
            if v == ZERO:
                out = ZERO
                break
            if v == X:
                out = X
        if t is GateType.NAND and out != X:
            return 1 - out
        return out
    if t is GateType.OR or t is GateType.NOR:
        out = ZERO
        for f in fanins:
            v = gv[f]
            if v == ONE:
                out = ONE
                break
            if v == X:
                out = X
        if t is GateType.NOR and out != X:
            return 1 - out
        return out
    if t is GateType.NOT:
        v = gv[fanins[0]]
        return v if v == X else 1 - v
    if t is GateType.BUF:
        return gv[fanins[0]]
    if t is GateType.XOR or t is GateType.XNOR:
        out = ZERO
        for f in fanins:
            v = gv[f]
            if v == X:
                return X
            out ^= v
        return (1 - out) if t is GateType.XNOR else out
    if t is GateType.TIE0:
        return ZERO
    if t is GateType.TIE1:
        return ONE
    raise ValueError(f"cannot evaluate gate type {t!r} combinationally")


def _faulty_value(t: GateType, fanins: Sequence[int], gv: List[int],
                  fv: Dict[int, int]) -> int:
    """Faulty-plane gate value: fanin ``f`` reads ``fv.get(f, gv[f])``."""
    if t is GateType.AND or t is GateType.NAND:
        out = ONE
        for f in fanins:
            v = fv.get(f)
            if v is None:
                v = gv[f]
            if v == ZERO:
                out = ZERO
                break
            if v == X:
                out = X
        if t is GateType.NAND and out != X:
            return 1 - out
        return out
    if t is GateType.OR or t is GateType.NOR:
        out = ZERO
        for f in fanins:
            v = fv.get(f)
            if v is None:
                v = gv[f]
            if v == ONE:
                out = ONE
                break
            if v == X:
                out = X
        if t is GateType.NOR and out != X:
            return 1 - out
        return out
    if t is GateType.NOT:
        v = fv.get(fanins[0])
        if v is None:
            v = gv[fanins[0]]
        return v if v == X else 1 - v
    if t is GateType.BUF:
        v = fv.get(fanins[0])
        return gv[fanins[0]] if v is None else v
    if t is GateType.XOR or t is GateType.XNOR:
        out = ZERO
        for f in fanins:
            v = fv.get(f)
            if v is None:
                v = gv[f]
            if v == X:
                return X
            out ^= v
        return (1 - out) if t is GateType.XNOR else out
    if t is GateType.TIE0:
        return ZERO
    if t is GateType.TIE1:
        return ONE
    raise ValueError(f"cannot evaluate gate type {t!r} combinationally")


@dataclass
class TestResult:
    """Outcome of test generation for one fault."""

    status: str  # 'detected' | 'untestable' | 'aborted'
    sequence: List[Dict[str, int]] = field(default_factory=list)
    backtracks: int = 0
    decisions: int = 0
    frames_used: int = 0
    elapsed: float = 0.0


class _Window:
    """Composite-value state of one W-frame simulation."""

    __slots__ = ("gv", "fv", "forb", "conflict")

    def __init__(self, frames: int, n: int):
        self.gv = [[X] * n for _ in range(frames)]
        self.fv: List[Dict[int, int]] = [{} for _ in range(frames)]
        self.forb: List[Dict[int, int]] = [{} for _ in range(frames)]
        self.conflict = False

    def faulty(self, frame: int, nid: int) -> int:
        value = self.fv[frame].get(nid)
        return self.gv[frame][nid] if value is None else value

    def is_d(self, frame: int, nid: int) -> bool:
        g = self.gv[frame][nid]
        f = self.faulty(frame, nid)
        return g != X and f != X and g != f


class SequentialATPG:
    """PODEM-based sequential test generator with optional learning."""

    def __init__(self, circuit: Circuit, *,
                 relations: Optional[RelationDB] = None,
                 mode: str = "none",
                 backtrack_limit: int = 30,
                 max_frames: int = 10):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if mode != "none" and relations is None:
            raise ValueError("learning modes need a relation database")
        self.circuit = circuit
        self.relations = relations
        self.mode = mode
        self.backtrack_limit = backtrack_limit
        self.max_frames = max_frames
        self.testability: Testability = compute_testability(circuit)
        self._n = len(circuit.nodes)
        #: Fault-cone memo: origin node -> {origin} | transitive fanout.
        self._cone_cache: Dict[int, Set[int]] = {}
        # Flat per-node lookups for the backtrace/objective hot paths
        # (enum hashing and property calls dominate them otherwise).
        nodes = circuit.nodes
        self._gt: List[GateType] = [n.gate_type for n in nodes]
        self._fanins_a: List[List[int]] = [n.fanins for n in nodes]
        self._control_a: List[Optional[int]] = [
            CONTROLLING_VALUE.get(n.gate_type) for n in nodes]
        self._invert_a: List[bool] = [
            INVERTING.get(n.gate_type, False) for n in nodes]
        self._is_input_a: List[bool] = [n.is_input for n in nodes]
        self._is_seq_a: List[bool] = [n.is_sequential for n in nodes]
        #: Random probes before accepting an untestable verdict.
        self._refutation_trials = 30
        # Backtrace recursion spans window x logic depth.
        sys.setrecursionlimit(max(sys.getrecursionlimit(),
                                  10000 + 100 * self._n))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> TestResult:
        """Try to generate a self-initializing test for ``fault``."""
        start = time.perf_counter()
        budget = [self.backtrack_limit]
        decisions = [0]
        exhausted_all = True
        for window in range(1, self.max_frames + 1):
            outcome, assignments = self._podem(fault, window, budget,
                                               decisions)
            if outcome == "detected":
                return TestResult(
                    status="detected",
                    sequence=self._sequence(assignments, window),
                    backtracks=self.backtrack_limit - budget[0],
                    decisions=decisions[0], frames_used=window,
                    elapsed=time.perf_counter() - start)
            if outcome == "aborted":
                return TestResult(
                    status="aborted",
                    backtracks=self.backtrack_limit - budget[0],
                    decisions=decisions[0], frames_used=window,
                    elapsed=time.perf_counter() - start)
            # else exhausted at this window; try a deeper one
        refutation = self._refute_untestable(fault)
        if refutation is not None:
            return TestResult(
                status="detected", sequence=refutation,
                backtracks=self.backtrack_limit - budget[0],
                decisions=decisions[0], frames_used=len(refutation),
                elapsed=time.perf_counter() - start)
        return TestResult(
            status="untestable" if exhausted_all else "aborted",
            backtracks=self.backtrack_limit - budget[0],
            decisions=decisions[0], frames_used=self.max_frames,
            elapsed=time.perf_counter() - start)

    def _refute_untestable(self, fault: Fault
                           ) -> Optional[List[Dict[str, int]]]:
        """Random-simulation check before an untestable verdict.

        The windowed PODEM sweep is complete only up to ``max_frames``
        and its objective enumeration; a cheap random probe (longer than
        the window) catches residual optimism and, as a bonus, returns a
        working test.  Deterministic per fault.
        """
        import random

        from ..sim.faultsim import fault_simulate

        rng = random.Random((fault.node, fault.pin, fault.value,
                             0xA7B6).__hash__())
        names = [self.circuit.nodes[i].name for i in self.circuit.inputs]
        length = 2 * self.max_frames + 4
        for _ in range(self._refutation_trials):
            sequence = [{n: rng.randint(0, 1) for n in names}
                        for _ in range(length)]
            if fault_simulate(self.circuit, sequence, [fault]):
                return sequence
        return None

    # ------------------------------------------------------------------
    # PODEM core
    # ------------------------------------------------------------------
    def _podem(self, fault: Fault, window: int, budget: List[int],
               decisions: List[int]
               ) -> Tuple[str, Dict[Tuple[int, int], int]]:
        """Run PODEM at fixed window size.

        Returns ('detected' | 'aborted' | 'exhausted', assignments).
        """
        circuit = self.circuit
        fault_cone = self._fault_cone(fault)
        assignments: Dict[Tuple[int, int], int] = {}
        stack: List[Tuple[Tuple[int, int], int, bool]] = []
        while True:
            state = self._simulate(fault, window, assignments, fault_cone)
            step = "decide"
            if state.conflict:
                step = "backtrack"
            elif self._detected(state, window):
                return "detected", assignments
            elif not self._has_potential(state, window, fault):
                step = "backtrack"
            if step == "decide":
                target = self._next_target(state, window, fault)
                if target is None:
                    step = "backtrack"
                else:
                    key, value = target
                    assignments[key] = value
                    stack.append((key, value, False))
                    decisions[0] += 1
                    continue
            # Backtrack.
            flipped = False
            while stack:
                key, value, tried = stack.pop()
                del assignments[key]
                if not tried:
                    budget[0] -= 1
                    if budget[0] < 0:
                        return "aborted", assignments
                    assignments[key] = inv(value)
                    stack.append((key, inv(value), True))
                    flipped = True
                    break
            if not flipped:
                return "exhausted", assignments

    # ------------------------------------------------------------------
    def _fault_cone(self, fault: Fault) -> Set[int]:
        """Nodes whose faulty value may differ from the good value.

        Memoized per origin node: ``generate()`` is called once per fault
        and most faults share an origin with others (0/1 pairs, pin
        faults), so the cone walk would otherwise repeat per fault.
        """
        origin = fault.node
        cone = self._cone_cache.get(origin)
        if cone is None:
            cone = {origin}
            cone.update(self.circuit.transitive_fanout(origin))
            self._cone_cache[origin] = cone
        return cone

    # ------------------------------------------------------------------
    def _simulate(self, fault: Fault, window: int,
                  assignments: Dict[Tuple[int, int], int],
                  fault_cone: Set[int]) -> _Window:
        """Composite 3-valued simulation of the whole window."""
        circuit = self.circuit
        state = _Window(window, self._n)
        relations = self.relations if self.mode != "none" else None
        for frame in range(window):
            gv = state.gv[frame]
            fv = state.fv[frame]
            # Sources: PIs from assignments, FFs from previous frame.
            for pid in circuit.inputs:
                value = assignments.get((frame, pid), X)
                gv[pid] = value
            if frame > 0:
                prev_gv = state.gv[frame - 1]
                prev_fv = state.fv[frame - 1]
                for fid in circuit.ffs:
                    data = circuit.nodes[fid].fanins[0]
                    gv[fid] = prev_gv[data]
                    fdata = prev_fv.get(data)
                    if fdata is not None and fdata != prev_gv[data]:
                        fv[fid] = fdata
                    # A stuck FF data input always captures the stuck value
                    # in the faulty machine (FFs are not in topo order, so
                    # the pin forcing in _eval_frame never sees them).
                    if fault.pin is not None and fid == fault.node:
                        fv[fid] = fault.value
            self._force_site(fault, gv, fv)
            self._eval_frame(fault, frame, state, fault_cone)
            if relations is not None:
                if self.mode == "known":
                    self._apply_known(fault, frame, state, fault_cone)
                else:
                    self._apply_forbidden(frame, state)
                if state.conflict:
                    return state
        return state

    def _force_site(self, fault: Fault, gv: List[int],
                    fv: Dict[int, int]) -> None:
        """Output faults force the faulty plane at the site every frame."""
        if fault.pin is None:
            fv[fault.node] = fault.value

    def _eval_frame(self, fault: Fault, frame: int, state: _Window,
                    fault_cone: Set[int]) -> None:
        """Levelized frame evaluation of both planes.

        The faulty plane is kept *canonical*: an ``fv`` entry exists for
        a re-evaluated gate iff its faulty value differs from the good
        value.  (Historically entries that became equal to the good value
        after a re-evaluation -- e.g. once ``_apply_known`` forced values
        -- were never deleted, so ``_Window.is_d`` and the D-frontier
        walked stale non-differences; the incremental engine's state
        comparisons also rely on this canonical form.)
        """
        circuit = self.circuit
        gv = state.gv[frame]
        fv = state.fv[frame]
        fault_node = fault.node
        fault_pin = fault.pin
        for nid in circuit.topo_order:
            node = circuit.nodes[nid]
            if gv[nid] == X:
                gv[nid] = _good_value(node.gate_type, node.fanins, gv)
            if nid in fault_cone:
                if nid == fault_node:
                    if fault_pin is None:
                        faulty = fault.value
                    else:
                        fanin_faulty = [fv.get(f, gv[f])
                                        for f in node.fanins]
                        fanin_faulty[fault_pin] = fault.value
                        faulty = eval_gate(node.gate_type, fanin_faulty)
                else:
                    faulty = _faulty_value(node.gate_type, node.fanins,
                                           gv, fv)
                if faulty != gv[nid]:
                    fv[nid] = faulty
                elif nid in fv:
                    del fv[nid]

    def _reeval_frame(self, fault: Fault, frame: int, state: _Window,
                      fault_cone: Set[int]) -> bool:
        """Re-run frame evaluation after forcing implied values."""
        before = list(state.gv[frame])
        self._eval_frame(fault, frame, state, fault_cone)
        return state.gv[frame] != before

    # -- learned-knowledge application ---------------------------------
    def _implications_at(self, nid: int, value: int,
                         frame: int) -> Sequence[Tuple[int, int]]:
        """Direct implications of ``nid=value`` valid at ``frame``.

        Indirection point: the reference engine asks the
        :class:`RelationDB` (which filters warm-ups per call); the
        incremental engine overrides this with antecedent-indexed
        per-frame buckets built once, so lookup is O(hits).
        """
        return self.relations.implications_at(nid, value, frame)

    def _apply_known(self, fault: Fault, frame: int, state: _Window,
                     fault_cone: Set[int]) -> None:
        """Force learned implications as known good values (fixpoint)."""
        gv = state.gv[frame]
        fv = state.fv[frame]
        for _round in range(6):
            changed = False
            for nid in range(self._n):
                value = gv[nid]
                if value == X:
                    continue
                for m, u in self._implications_at(nid, value, frame):
                    if gv[m] == X:
                        gv[m] = u
                        if m not in fault_cone:
                            fv.pop(m, None)
                        changed = True
                    elif gv[m] != u:
                        # A learned invariant contradicted: the current
                        # partial assignment is unreachable.
                        state.conflict = True
                        return
            if not changed:
                break
            self._reeval_frame(fault, frame, state, fault_cone)

    def _apply_forbidden(self, frame: int, state: _Window) -> None:
        """Mark and propagate forbidden values in the shadow plane."""
        gv = state.gv[frame]
        forb = state.forb[frame]
        circuit = self.circuit

        def shadow(nid: int) -> int:
            if gv[nid] != X:
                return gv[nid]
            banned = forb.get(nid)
            if banned is not None:
                return inv(banned)
            return X

        # Seed: direct implications of known values.
        for nid in range(self._n):
            value = gv[nid]
            if value == X:
                continue
            for m, u in self._implications_at(nid, value, frame):
                if gv[m] != X:
                    if gv[m] != u:
                        state.conflict = True
                        return
                    continue
                if forb.get(m, inv(u)) != inv(u):
                    state.conflict = True  # both values forbidden
                    return
                forb[m] = inv(u)
        # Shadow state transfer from the previous frame.
        if frame > 0:
            prev_gv = state.gv[frame - 1]
            prev_forb = state.forb[frame - 1]
            for fid in circuit.ffs:
                data = circuit.nodes[fid].fanins[0]
                if gv[fid] != X or prev_gv[data] != X:
                    continue
                banned = prev_forb.get(data)
                if banned is not None and fid not in forb:
                    forb[fid] = banned
        # Forward propagation: forbidden-0 implies as 1, forbidden-1 as 0.
        for _round in range(4):
            changed = False
            for nid in circuit.topo_order:
                if gv[nid] != X or nid in forb:
                    continue
                node = circuit.nodes[nid]
                out = eval_gate(node.gate_type,
                                [shadow(f) for f in node.fanins])
                if out != X:
                    forb[nid] = inv(out)
                    changed = True
            if not changed:
                break

    # -- search guidance -------------------------------------------------
    def _detected(self, state: _Window, window: int) -> bool:
        for frame in range(window):
            for oid in self.circuit.outputs:
                if state.is_d(frame, oid):
                    return True
        return False

    def _activated(self, state: _Window, window: int, fault: Fault
                   ) -> Optional[int]:
        """First frame where the fault is excited, or None."""
        src = fault_site_source(self.circuit, fault)
        for frame in range(window):
            if state.gv[frame][src] == inv(fault.value):
                return frame
        return None

    def _d_frontier(self, state: _Window, window: int, fault: Fault
                    ) -> List[Tuple[int, int]]:
        """(frame, gate) pairs through which a D could still advance."""
        circuit = self.circuit
        out: List[Tuple[int, int]] = []
        src = fault_site_source(circuit, fault)
        for frame in range(window):
            gv = state.gv[frame]
            for nid in range(self._n):
                if not state.is_d(frame, nid):
                    continue
                for fo in circuit.nodes[nid].fanouts:
                    fo_node = circuit.nodes[fo]
                    if fo_node.is_combinational and (
                            gv[fo] == X or state.faulty(frame, fo) == X):
                        out.append((frame, fo))
            # Branch fault: the faulted gate itself is the frontier while
            # its output is still undetermined.
            if fault.pin is not None and gv[src] == inv(fault.value):
                if gv[fault.node] == X or \
                        state.faulty(frame, fault.node) == X:
                    out.append((frame, fault.node))
        return out

    def _has_potential(self, state: _Window, window: int,
                       fault: Fault) -> bool:
        """Can this partial assignment still lead to detection?

        Checks (a) activation achieved or still achievable, and (b) an
        X-path from some fault effect to a PO within the window (a D
        parked at the last frame's FF inputs counts only if the window
        can still grow -- it cannot here, growth is handled by the
        caller trying a larger window).
        """
        circuit = self.circuit
        src = fault_site_source(circuit, fault)
        activated = self._activated(state, window, fault) is not None
        if not activated:
            for frame in range(window):
                if state.gv[frame][src] == X:
                    return True  # activation still possible
            return False
        # X-path check from every D / frontier gate.
        seen: Set[Tuple[int, int]] = set()
        stack: List[Tuple[int, int]] = []
        for frame in range(window):
            for nid in range(self._n):
                if state.is_d(frame, nid):
                    stack.append((frame, nid))
        if fault.pin is not None:
            for frame in range(window):
                if state.gv[frame][src] == inv(fault.value):
                    stack.append((frame, fault.node))
        while stack:
            frame, nid = stack.pop()
            if (frame, nid) in seen:
                continue
            seen.add((frame, nid))
            node = circuit.nodes[nid]
            value_known = (state.gv[frame][nid] != X
                           and state.faulty(frame, nid) != X)
            is_effect = state.is_d(frame, nid)
            if node.is_output and (is_effect or not value_known):
                if is_effect:
                    return True
                if state.gv[frame][nid] == X or \
                        state.faulty(frame, nid) == X:
                    return True
            if value_known and not is_effect:
                continue  # effect cannot pass through a settled non-D
            for fo in node.fanouts:
                fo_node = circuit.nodes[fo]
                if fo_node.is_sequential:
                    if frame + 1 < window:
                        stack.append((frame + 1, fo))
                else:
                    stack.append((frame, fo))
        return False

    def _objectives(self, state: _Window, window: int, fault: Fault):
        """Candidate (frame, node, value) goals, best first.

        Activation goals come before propagation goals; every candidate
        is yielded so the search stays complete when the preferred one
        is unreachable (e.g. its backtrace dies at frame 0).
        """
        circuit = self.circuit
        src = fault_site_source(circuit, fault)
        activated = self._activated(state, window, fault) is not None
        if not activated:
            for frame in range(window):
                if state.gv[frame][src] == X:
                    yield (frame, src, inv(fault.value))
            return
        frontier = self._d_frontier(state, window, fault)
        co = self.testability.co
        frontier.sort(key=lambda fn: (co[fn[1]], fn[0]))
        for frame, gate in frontier:
            node = circuit.nodes[gate]
            control = self._control_a[gate]
            gv = state.gv[frame]
            for pin, fanin in enumerate(node.fanins):
                if fault.pin is not None and gate == fault.node \
                        and pin == fault.pin:
                    continue
                if gv[fanin] == X and not state.is_d(frame, fanin):
                    if control is not None:
                        yield (frame, fanin, inv(control))
                    else:
                        yield (frame, fanin, ZERO)
        # A stuck-at fault is permanent: re-exciting the site in further
        # frames opens propagation windows the first activation frame
        # cannot reach (completeness of the frame sweep depends on this).
        for frame in range(window):
            if state.gv[frame][src] == X:
                yield (frame, src, inv(fault.value))

    def _next_target(self, state: _Window, window: int, fault: Fault
                     ) -> Optional[Tuple[Tuple[int, int], int]]:
        """First backtraceable objective's PI target, or None."""
        for objective in self._objectives(state, window, fault):
            target = self._backtrace(state, *objective)
            if target is not None:
                return target
        return None

    # -- backtrace -------------------------------------------------------
    def _backtrace(self, state: _Window, frame: int, nid: int, value: int
                   ) -> Optional[Tuple[Tuple[int, int], int]]:
        """Walk an objective back to an unassigned PI (PODEM backtrace).

        Unlike textbook combinational backtrace, paths here can genuinely
        die: crossing a sequential element moves one frame earlier and
        falling off frame 0 means the goal needs pre-power-up state.  The
        walk is therefore a depth-first search over alternative inputs
        with memoized dead ends, so a reachable PI is always found when
        one exists (required for sound untestability claims).

        In forbidden mode, inputs whose shadow value already equals the
        needed controlling value are preferred -- the paper's
        decision-selection rule.
        """
        tst = self.testability
        dead: Set[Tuple[int, int]] = set()
        gvs = state.gv
        gt = self._gt
        fanins_a = self._fanins_a
        control_a = self._control_a
        invert_a = self._invert_a
        is_input_a = self._is_input_a
        is_seq_a = self._is_seq_a

        def walk(frame: int, nid: int, value: int
                 ) -> Optional[Tuple[Tuple[int, int], int]]:
            if (frame, nid) in dead:
                return None
            gv = gvs[frame]
            if gv[nid] != X:
                return None  # already decided (possibly by implication)
            if is_input_a[nid]:
                return ((frame, nid), value)
            fanins = fanins_a[nid]
            if is_seq_a[nid]:
                if frame == 0:
                    dead.add((frame, nid))
                    return None
                found = walk(frame - 1, fanins[0], value)
                if found is None:
                    dead.add((frame, nid))
                return found
            t = gt[nid]
            if t is GateType.TIE0 or t is GateType.TIE1:
                dead.add((frame, nid))
                return None
            if t is GateType.NOT or t is GateType.BUF:
                found = walk(frame, fanins[0],
                             inv(value) if t is GateType.NOT else value)
                if found is None:
                    dead.add((frame, nid))
                return found
            if t is GateType.XOR or t is GateType.XNOR:
                xs = [f for f in fanins if gv[f] == X]
                parity = value ^ (1 if t is GateType.XNOR else 0)
                for f in fanins:
                    if gv[f] == ONE:
                        parity ^= 1
                for f in sorted(xs,
                                key=lambda f: min(tst.cc0[f], tst.cc1[f])):
                    want = parity if len(xs) == 1 else ZERO
                    found = walk(frame, f, want)
                    if found is not None:
                        return found
                dead.add((frame, nid))
                return None
            control = control_a[nid]
            needed = inv(value) if invert_a[nid] else value
            xs = [f for f in fanins if gv[f] == X]
            if not xs:
                dead.add((frame, nid))
                return None
            if needed == control:
                # One controlling input suffices: prefer the input the
                # learned invariants already force to the controlling
                # value (forbidden non-controlling), else the easiest;
                # on failure try the alternatives.
                forb = state.forb[frame]
                non_control = inv(control)
                cc = tst.cc0 if control == ZERO else tst.cc1
                ordered = sorted(
                    xs, key=lambda f: (forb.get(f) != non_control,
                                       cc[f]))
                want = control
            else:
                # All inputs must be non-controlling: attack the hardest
                # first (fail fast), but any input is a legal next step.
                cc = tst.cc0 if control == ONE else tst.cc1
                ordered = sorted(xs, key=lambda f: -cc[f])
                want = inv(control)
            for f in ordered:
                found = walk(frame, f, want)
                if found is not None:
                    return found
            dead.add((frame, nid))
            return None

        return walk(frame, nid, value)

    # ------------------------------------------------------------------
    def _sequence(self, assignments: Dict[Tuple[int, int], int],
                  window: int) -> List[Dict[str, int]]:
        circuit = self.circuit
        out: List[Dict[str, int]] = []
        for frame in range(window):
            vector = {}
            for pid in circuit.inputs:
                value = assignments.get((frame, pid))
                if value is not None:
                    vector[circuit.nodes[pid].name] = value
            out.append(vector)
        return out


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
def make_atpg(circuit: Circuit, *, engine: str = "incremental",
              relations: Optional[RelationDB] = None,
              mode: str = "none", backtrack_limit: int = 30,
              max_frames: int = 10) -> SequentialATPG:
    """Factory over :data:`ATPG_ENGINES`; both share one contract.

    ``incremental`` (:class:`repro.atpg.incremental.IncrementalATPG`)
    produces bit-identical :class:`TestResult`s to ``reference`` -- the
    differential harness in ``tests/test_engine_differential.py`` pins
    that down -- while propagating decisions through the event wavefront
    only and undoing backtracks from a trail.
    """
    if engine == "reference":
        return SequentialATPG(circuit, relations=relations, mode=mode,
                              backtrack_limit=backtrack_limit,
                              max_frames=max_frames)
    if engine == "incremental":
        from .incremental import IncrementalATPG

        return IncrementalATPG(circuit, relations=relations, mode=mode,
                               backtrack_limit=backtrack_limit,
                               max_frames=max_frames)
    raise ValueError(
        f"unknown ATPG engine {engine!r}; expected one of {ATPG_ENGINES}")
