"""SCOAP testability measures used to guide PODEM backtrace.

Combinational controllabilities CC0/CC1 extended through sequential
elements with a +1 frame penalty (a light version of SCOAP's sequential
measures), plus observability CO.  Exact values do not matter -- they
only rank alternative backtrace choices -- so the sequential feedback is
resolved by bounded fixpoint iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit

_BIG = 10 ** 6


@dataclass
class Testability:
    """Per-node controllability/observability estimates."""

    cc0: List[int]
    cc1: List[int]
    co: List[int]

    def cc(self, nid: int, value: int) -> int:
        return self.cc0[nid] if value == 0 else self.cc1[nid]


def _gate_cc(gate_type: GateType, fanin_cc: List[Tuple[int, int]]
             ) -> Tuple[int, int]:
    """(cc0, cc1) of a gate from fanin (cc0, cc1) pairs."""
    if gate_type is GateType.AND:
        return (min(c0 for c0, _ in fanin_cc) + 1,
                sum(c1 for _, c1 in fanin_cc) + 1)
    if gate_type is GateType.NAND:
        c0, c1 = _gate_cc(GateType.AND, fanin_cc)
        return (c1, c0)
    if gate_type is GateType.OR:
        return (sum(c0 for c0, _ in fanin_cc) + 1,
                min(c1 for _, c1 in fanin_cc) + 1)
    if gate_type is GateType.NOR:
        c0, c1 = _gate_cc(GateType.OR, fanin_cc)
        return (c1, c0)
    if gate_type is GateType.NOT:
        c0, c1 = fanin_cc[0]
        return (c1 + 1, c0 + 1)
    if gate_type is GateType.BUF:
        c0, c1 = fanin_cc[0]
        return (c0 + 1, c1 + 1)
    if gate_type in (GateType.XOR, GateType.XNOR):
        # Cheapest way to reach an even/odd number of 1s on the inputs.
        best_even, best_odd = 0, _BIG
        for c0, c1 in fanin_cc:
            best_even, best_odd = (
                min(best_even + c0, best_odd + c1),
                min(best_even + c1, best_odd + c0))
        if gate_type is GateType.XOR:
            return (best_even + 1, best_odd + 1)
        return (best_odd + 1, best_even + 1)
    if gate_type is GateType.TIE0:
        return (0, _BIG)
    if gate_type is GateType.TIE1:
        return (_BIG, 0)
    raise AssertionError(gate_type)


def compute_testability(circuit: Circuit, iterations: int = 4
                        ) -> Testability:
    """Compute CC0/CC1/CO with bounded sequential fixpoint iteration."""
    n = len(circuit.nodes)
    cc0 = [_BIG] * n
    cc1 = [_BIG] * n
    for pid in circuit.inputs:
        cc0[pid] = cc1[pid] = 1
    for _ in range(iterations):
        for nid in circuit.topo_order:
            node = circuit.nodes[nid]
            fanin_cc = [(cc0[f], cc1[f]) for f in node.fanins]
            c0, c1 = _gate_cc(node.gate_type, fanin_cc)
            # Unknown (still-_BIG) inputs poison sums but not mins, so a
            # sequential loop's controlling side resolves immediately and
            # the rest converges over the iterations.
            cc0[nid] = min(cc0[nid], c0, _BIG)
            cc1[nid] = min(cc1[nid], c1, _BIG)
        for fid in circuit.ffs:
            data = circuit.nodes[fid].fanins[0]
            cc0[fid] = min(cc0[fid], cc0[data] + 1)
            cc1[fid] = min(cc1[fid], cc1[data] + 1)
    co = [_BIG] * n
    for oid in circuit.outputs:
        co[oid] = 0
    for _ in range(iterations):
        for nid in reversed(circuit.topo_order):
            node = circuit.nodes[nid]
            if co[nid] >= _BIG:
                continue
            self_co = co[nid]
            t = node.gate_type
            for pin, src in enumerate(node.fanins):
                side_cost = 0
                if t in (GateType.AND, GateType.NAND):
                    side_cost = sum(cc1[s] for i, s in enumerate(node.fanins)
                                    if i != pin and cc1[s] < _BIG)
                elif t in (GateType.OR, GateType.NOR):
                    side_cost = sum(cc0[s] for i, s in enumerate(node.fanins)
                                    if i != pin and cc0[s] < _BIG)
                elif t in (GateType.XOR, GateType.XNOR):
                    side_cost = sum(min(cc0[s], cc1[s])
                                    for i, s in enumerate(node.fanins)
                                    if i != pin)
                co[src] = min(co[src], self_co + side_cost + 1)
        for fid in circuit.ffs:
            data = circuit.nodes[fid].fanins[0]
            if co[fid] < _BIG:
                co[data] = min(co[data], co[fid] + 1)
    return Testability(cc0=cc0, cc1=cc1, co=co)
