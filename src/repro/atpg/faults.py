"""Stuck-at fault model, fault universe and equivalence collapsing.

A fault is stuck-at-``value`` either on a node's output (``pin is None``;
for fanout stems this is the stem fault) or on one input pin of a gate (a
fanout-branch fault).  The uncollapsed universe has one output fault pair
per node and one input fault pair per gate pin on nodes with fanout > 1.

Equivalence collapsing uses the classic structural rules:

* a single-input gate's input faults are equivalent to output faults
  (through the inversion parity of NOT/BUF);
* for AND/NAND (OR/NOR), every input stuck-at the controlling value is
  equivalent to the output stuck at the controlled response;
* a fanout-free gate input fault is equivalent to the fault on the
  driving node's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import (
    CONTROLLED_RESPONSE,
    CONTROLLING_VALUE,
    GateType,
    ONE,
    ZERO,
)
from ..circuit.netlist import Circuit


@dataclass(frozen=True)
class Fault:
    """One stuck-at fault."""

    node: int
    pin: Optional[int]
    value: int

    def describe(self, circuit: Circuit) -> str:
        name = circuit.nodes[self.node].name
        if self.pin is None:
            return f"{name} s-a-{self.value}"
        src = circuit.nodes[circuit.nodes[self.node].fanins[self.pin]].name
        return f"{name}.in{self.pin}({src}) s-a-{self.value}"


def full_fault_list(circuit: Circuit) -> List[Fault]:
    """The uncollapsed stuck-at universe.

    Output faults on every node that drives something or is a primary
    output; branch (input-pin) faults on every gate/FF input whose driver
    has fanout greater than one (otherwise the branch is equivalent to
    the driver's output fault).
    """
    faults: List[Fault] = []
    for node in circuit.nodes:
        if node.fanouts or node.is_output:
            faults.append(Fault(node.nid, None, ZERO))
            faults.append(Fault(node.nid, None, ONE))
    for node in circuit.nodes:
        for pin, src in enumerate(node.fanins):
            if len(circuit.nodes[src].fanouts) > 1:
                faults.append(Fault(node.nid, pin, ZERO))
                faults.append(Fault(node.nid, pin, ONE))
    return faults


class _UnionFind:
    def __init__(self):
        self.parent: Dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, x, y):
        self.parent[self.find(x)] = self.find(y)


def collapse_faults(circuit: Circuit,
                    faults: Optional[Sequence[Fault]] = None
                    ) -> List[Fault]:
    """Equivalence-collapse the fault universe.

    Returns one representative per equivalence class, preferring output
    faults (they simulate fastest) and lower node ids for determinism.
    """
    return collapse_with_classes(circuit, faults)[0]


def collapse_with_classes(circuit: Circuit,
                          faults: Optional[Sequence[Fault]] = None
                          ) -> Tuple[List[Fault], Dict[Fault, List[Fault]]]:
    """Collapse and also return representative -> class members.

    The class map matters for analyses that prove *one member*
    untestable (tie gates prove ``G s-a-v`` untestable; the class
    representative may be an equivalent branch fault elsewhere).
    """
    if faults is None:
        faults = full_fault_list(circuit)
    uf = _UnionFind()
    fault_set = set(faults)

    def merge(f1: Fault, f2: Fault) -> None:
        if f1 in fault_set and f2 in fault_set:
            uf.union(f1, f2)

    for node in circuit.nodes:
        t = node.gate_type
        if t in (GateType.NOT, GateType.BUF):
            src = node.fanins[0]
            invert = t is GateType.NOT
            for v in (ZERO, ONE):
                out_v = (1 - v) if invert else v
                out = Fault(node.nid, None, out_v)
                if len(circuit.nodes[src].fanouts) == 1:
                    merge(Fault(src, None, v), out)
                else:
                    merge(Fault(node.nid, 0, v), out)
        elif t in CONTROLLING_VALUE:
            c = CONTROLLING_VALUE[t]
            response = CONTROLLED_RESPONSE[t]
            out = Fault(node.nid, None, response)
            for pin, src in enumerate(node.fanins):
                if len(circuit.nodes[src].fanouts) == 1:
                    merge(Fault(src, None, c), out)
                else:
                    merge(Fault(node.nid, pin, c), out)
    groups: Dict = {}
    for fault in faults:
        groups.setdefault(uf.find(fault), []).append(fault)
    collapsed = []
    classes: Dict[Fault, List[Fault]] = {}
    for members in groups.values():
        members.sort(key=lambda f: (f.pin is not None, f.node,
                                    f.pin if f.pin is not None else -1,
                                    f.value))
        collapsed.append(members[0])
        classes[members[0]] = members
    collapsed.sort(key=lambda f: (f.node,
                                  -1 if f.pin is None else f.pin, f.value))
    return collapsed, classes


def fault_site_source(circuit: Circuit, fault: Fault) -> int:
    """The node whose *value* must differ to excite the fault."""
    if fault.pin is None:
        return fault.node
    return circuit.nodes[fault.node].fanins[fault.pin]


def partition_fault_indices(n_faults: int,
                            n_shards: int) -> List[Tuple[int, ...]]:
    """Deterministically split ``range(n_faults)`` into ``n_shards``.

    Round-robin by index: shard ``k`` gets every index ``i`` with
    ``i % n_shards == k``.  The collapsed fault list is sorted by node
    id, and neighbouring faults correlate in difficulty (same cone,
    same backtracking behaviour), so striding spreads the hard regions
    across shards far better than contiguous chunks would.

    The partition is a pure function of ``(n_faults, n_shards)`` --
    every worker, the coordinator and the serial differential oracle
    compute the identical split with no communication.  Shards may be
    empty when ``n_shards > n_faults``; together they always cover each
    index exactly once.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return [tuple(range(shard, n_faults, n_shards))
            for shard in range(n_shards)]
