"""Sequential ATPG with learned-implication enhancement."""

from .driver import ATPGStats, compare_modes, run_atpg
from .engine import (
    ATPG_ENGINES,
    MODES,
    SequentialATPG,
    TestResult,
    make_atpg,
)
from .incremental import IncrementalATPG
from .faults import (
    Fault,
    collapse_faults,
    fault_site_source,
    full_fault_list,
)
from .fires import FiresReport, fires_untestable
from .scoap import Testability, compute_testability
from .untestable import UntestableComparison, compare_untestable

__all__ = [
    "ATPGStats", "compare_modes", "run_atpg",
    "ATPG_ENGINES", "MODES", "SequentialATPG", "TestResult",
    "IncrementalATPG", "make_atpg",
    "Fault", "collapse_faults", "fault_site_source", "full_fault_list",
    "FiresReport", "fires_untestable",
    "Testability", "compute_testability",
    "UntestableComparison", "compare_untestable",
]
