"""Sequential ATPG with learned-implication enhancement."""

from .driver import ATPGStats, compare_modes, run_atpg
from .engine import MODES, SequentialATPG, TestResult
from .faults import (
    Fault,
    collapse_faults,
    fault_site_source,
    full_fault_list,
)
from .fires import FiresReport, fires_untestable
from .scoap import Testability, compute_testability
from .untestable import UntestableComparison, compare_untestable

__all__ = [
    "ATPGStats", "compare_modes", "run_atpg",
    "MODES", "SequentialATPG", "TestResult",
    "Fault", "collapse_faults", "fault_site_source", "full_fault_list",
    "FiresReport", "fires_untestable",
    "Testability", "compute_testability",
    "UntestableComparison", "compare_untestable",
]
