"""FIRE/FIRES-style fault-independent untestability identification.

The paper's Table 4 compares untestable faults found as a by-product of
tie-gate learning against FIRES [13], which analyses *stems*: every
instant has s=0 or s=1 on a stem s, so a fault that cannot be detected
whenever s=0 holds, and also cannot whenever s=1 holds, is untestable.

This re-implementation extends the published FIRE recipe across time
frames with the same forward-injection machinery the learning engine
uses.  For each stem value ``s=v`` we compute the set of faults
undetectable when *activated at an instant where s=v*:

* **excitation blocked** -- the injection implies the fault site already
  carries the stuck value at that instant;
* **propagation blocked** -- a frame-by-frame reachability sweep from the
  fault origin shows every path to every primary output passes a gate
  with a controlling side-input value implied by the injection (values of
  the final repeated frame persist indefinitely, so blockage beyond the
  simulated window is sound when the run closed on a repeated state).

Faults blocked under both stem values are untestable.  The analysis is
conservative in the claims it makes (undetectability is only asserted
when the blocking argument is airtight), like the original.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import CONTROLLING_VALUE, ONE, X, ZERO, inv
from ..circuit.netlist import Circuit
from ..sim.eventsim import Coupling, FrameSimulator, InjectionResult
from .faults import Fault, fault_site_source


@dataclass
class FiresReport:
    """Outcome of the FIRES-style analysis."""

    untestable: List[Fault]
    stems_analysed: int
    cpu_s: float = 0.0


class _StemCase:
    """Blocking information for one (stem, value) injection."""

    def __init__(self, circuit: Circuit, result: InjectionResult):
        self.circuit = circuit
        self.result = result
        self.closed = result.repeated and result.conflict is None
        self._observable: Optional[Set[Tuple[int, int]]] = None

    def value_at(self, frame: int, nid: int) -> int:
        frames = self.result.frames
        if not frames:
            return X
        if frame >= len(frames):
            frame = len(frames) - 1
        return frames[frame].get(nid, X)

    def excitation_blocked(self, fault: Fault, src: int) -> bool:
        """Is the site forced to the stuck value at the injection instant?"""
        return self.value_at(0, src) == fault.value

    # ------------------------------------------------------------------
    def observable_from(self) -> Set[Tuple[int, int]]:
        """(frame, node) pairs from which an effect might reach a PO.

        Backward reachability over the unrolled window; the last frame
        self-loops (its values persist).  Only valid when the injection
        run closed on a repeated state.
        """
        if self._observable is not None:
            return self._observable
        circuit = self.circuit
        last = max(len(self.result.frames) - 1, 0)
        # Stationary regime: from frame `last` on, the implied values
        # repeat for ever, so observability there is a plain fixpoint
        # where crossing a FF stays in the same regime.
        stationary: Set[int] = set()
        stack_s: List[int] = list(circuit.outputs)
        while stack_s:
            nid = stack_s.pop()
            if nid in stationary:
                continue
            stationary.add(nid)
            node = circuit.nodes[nid]
            if node.is_sequential:
                stack_s.append(node.fanins[0])
                continue
            control = CONTROLLING_VALUE.get(node.gate_type)
            for pin, src in enumerate(node.fanins):
                if control is not None and any(
                        self.value_at(last, other) == control
                        for i, other in enumerate(node.fanins) if i != pin):
                    continue
                stack_s.append(src)
        observable: Set[Tuple[int, int]] = set()
        stack: List[Tuple[int, int]] = [(last, nid) for nid in stationary]
        for frame in range(last):
            for oid in circuit.outputs:
                stack.append((frame, oid))
        while stack:
            frame, nid = stack.pop()
            if (frame, nid) in observable:
                continue
            observable.add((frame, nid))
            node = circuit.nodes[nid]
            if node.is_sequential:
                # The captured value came from the previous frame's data
                # input; frame 0 state is the activation instant itself.
                if frame >= 1:
                    stack.append((frame - 1, node.fanins[0]))
                continue
            control = CONTROLLING_VALUE.get(node.gate_type)
            for pin, src in enumerate(node.fanins):
                if control is not None and any(
                        self.value_at(frame, other) == control
                        for i, other in enumerate(node.fanins) if i != pin):
                    continue
                stack.append((frame, src))
        self._observable = observable
        return observable

    def propagation_blocked(self, origin: int) -> bool:
        """No effect born at the activation instant ever reaches a PO."""
        if not self.closed:
            return False
        observable = self.observable_from()
        # Effect born at frame 0 at the origin; it can linger in FFs, but
        # lingering is exactly what forward frames model.  If (f, origin)
        # is unobservable for every frame the effect could first surface
        # (it surfaces at frame 0), the fault is blocked.
        return (0, origin) not in observable


def fires_untestable(circuit: Circuit,
                     faults: Sequence[Fault],
                     *, max_frames: int = 20,
                     coupling: Optional[Coupling] = None) -> FiresReport:
    """Identify untestable faults by conflicting stem requirements."""
    start = time.perf_counter()
    simulator = FrameSimulator(circuit, coupling)
    stems = [s for s in circuit.fanout_stems()
             if s not in simulator._constants]
    cases: List[Tuple[_StemCase, _StemCase]] = []
    for stem in stems:
        case0 = _StemCase(circuit, simulator.inject_single(
            stem, ZERO, max_frames=max_frames))
        case1 = _StemCase(circuit, simulator.inject_single(
            stem, ONE, max_frames=max_frames))
        cases.append((case0, case1))
    untestable: List[Fault] = []
    for fault in faults:
        src = fault_site_source(circuit, fault)
        origin = fault.node  # effect surfaces at the faulted gate/node
        for case0, case1 in cases:
            if _blocked(case0, fault, src, origin) and \
                    _blocked(case1, fault, src, origin):
                untestable.append(fault)
                break
    return FiresReport(untestable=untestable, stems_analysed=len(stems),
                       cpu_s=time.perf_counter() - start)


def _blocked(case: _StemCase, fault: Fault, src: int, origin: int) -> bool:
    return (case.excitation_blocked(fault, src)
            or case.propagation_blocked(origin))
