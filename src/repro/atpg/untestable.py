"""Untestable-fault identification from learned tie gates (Table 4).

The learning engine proves tie gates as a by-product (section 3.2); every
stuck-at-v fault on a node tied to v is untestable.  This module packages
that count next to the FIRES-style baseline for the Table 4 comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit.netlist import Circuit
from ..core.engine import LearnConfig, LearnResult, learn
from ..core.ties import untestable_faults_from_ties
from .faults import Fault, collapse_faults, collapse_with_classes
from .fires import FiresReport, fires_untestable


@dataclass
class UntestableComparison:
    """One row of the paper's Table 4."""

    circuit: str
    total_faults: int
    tie_gate_untestable: int
    fires_untestable: int
    tie_cpu_s: float
    fires_cpu_s: float

    def row(self) -> dict:
        return {
            "circuit": self.circuit,
            "total": self.total_faults,
            "tie_gates": self.tie_gate_untestable,
            "fires": self.fires_untestable,
        }


def compare_untestable(circuit: Circuit, *,
                       learned: Optional[LearnResult] = None,
                       faults: Optional[Sequence[Fault]] = None,
                       max_frames: int = 20) -> UntestableComparison:
    """Count untestable faults found via tie gates vs the FIRES baseline."""
    classes = None
    if faults is None:
        faults, classes = collapse_with_classes(circuit)
    t0 = time.perf_counter()
    if learned is None:
        learned = learn(circuit, LearnConfig(max_frames=max_frames))
    tie_faults = untestable_faults_from_ties(circuit, learned.ties,
                                             faults, classes)
    tie_cpu = time.perf_counter() - t0
    report: FiresReport = fires_untestable(circuit, faults,
                                           max_frames=max_frames)
    return UntestableComparison(
        circuit=circuit.name,
        total_faults=len(faults),
        tie_gate_untestable=len(tie_faults),
        fires_untestable=len(report.untestable),
        tie_cpu_s=tie_cpu,
        fires_cpu_s=report.cpu_s)
