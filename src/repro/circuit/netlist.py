"""Gate-level sequential netlist.

A :class:`Circuit` is a directed graph of :class:`Node` objects.  Sequential
elements (D flip-flops and latches) break combinational cycles: their output
is a pseudo primary input of each time frame and their data input (fanin 0)
is sampled at the end of the frame to produce the next-frame value.

Real-circuit features from the paper's section 3.3 are first-class node
attributes:

* ``clock`` / ``phase`` -- clock domain classification key,
* ``set_kind`` / ``reset_kind`` -- ``none`` / ``constrained`` /
  ``unconstrained`` asynchronous set/reset lines,
* ``num_ports`` -- multi-port latches (no learning propagation across them).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .gates import (
    COMBINATIONAL_TYPES,
    SEQUENTIAL_TYPES,
    GateType,
)

#: Allowed values for the ``set_kind`` / ``reset_kind`` node attributes.
SET_RESET_KINDS = ("none", "constrained", "unconstrained")


class CircuitError(Exception):
    """Raised for malformed circuit construction or queries."""


@dataclass
class Node:
    """One primary input, gate or sequential element."""

    nid: int
    name: str
    gate_type: GateType
    fanins: List[int] = field(default_factory=list)
    fanouts: List[int] = field(default_factory=list)
    is_output: bool = False
    # Sequential-element attributes (meaningful for DFF/LATCH only).
    clock: str = "clk"
    phase: int = 0
    set_kind: str = "none"
    reset_kind: str = "none"
    num_ports: int = 1

    @property
    def is_sequential(self) -> bool:
        return self.gate_type in SEQUENTIAL_TYPES

    @property
    def is_input(self) -> bool:
        return self.gate_type is GateType.INPUT

    @property
    def is_combinational(self) -> bool:
        return self.gate_type in COMBINATIONAL_TYPES

    def domain_key(self) -> Tuple[str, int, str]:
        """Clock-domain classification key per paper section 3.3.2.

        Latches and flip-flops land in different classes even on the same
        clock and phase, because their capture times differ.
        """
        return (self.clock, self.phase, self.gate_type.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.nid}, {self.name!r}, {self.gate_type.value})"


class Circuit:
    """A sequential gate-level circuit.

    Build with :class:`repro.circuit.builder.CircuitBuilder` or the
    ``add_*`` methods below, then call :meth:`freeze` before handing the
    circuit to a simulator.  ``freeze`` computes fanouts, levelization and
    the combinational topological order, and validates structure.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.nodes: List[Node] = []
        self._by_name: Dict[str, int] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self.ffs: List[int] = []
        self.topo_order: List[int] = []
        self.level: List[int] = []
        self._frozen = False
        self._tfo_cache: Dict[int, Tuple[int, ...]] = {}
        self._fingerprint_cache: Optional[str] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self, name: str, gate_type: GateType) -> Node:
        if self._frozen:
            raise CircuitError("circuit is frozen; no further construction")
        if name in self._by_name:
            raise CircuitError(f"duplicate node name {name!r}")
        node = Node(nid=len(self.nodes), name=name, gate_type=gate_type)
        self.nodes.append(node)
        self._by_name[name] = node.nid
        return node

    def add_input(self, name: str) -> int:
        """Add a primary input and return its node id."""
        node = self._new_node(name, GateType.INPUT)
        self.inputs.append(node.nid)
        return node.nid

    def add_gate(self, name: str, gate_type: GateType,
                 fanins: Iterable[int] = ()) -> int:
        """Add a combinational gate and return its node id."""
        if gate_type not in COMBINATIONAL_TYPES:
            raise CircuitError(
                f"{gate_type!r} is not a combinational gate type")
        node = self._new_node(name, gate_type)
        node.fanins = list(fanins)
        self._check_fanin_arity(node)
        return node.nid

    def add_ff(self, name: str, data: Optional[int] = None, *,
               gate_type: GateType = GateType.DFF, clock: str = "clk",
               phase: int = 0, set_kind: str = "none",
               reset_kind: str = "none", num_ports: int = 1) -> int:
        """Add a sequential element.  ``data`` is the D input node id."""
        if gate_type not in SEQUENTIAL_TYPES:
            raise CircuitError(f"{gate_type!r} is not a sequential type")
        if set_kind not in SET_RESET_KINDS or reset_kind not in SET_RESET_KINDS:
            raise CircuitError("set_kind/reset_kind must be one of "
                               f"{SET_RESET_KINDS}")
        if num_ports < 1:
            raise CircuitError("num_ports must be >= 1")
        node = self._new_node(name, gate_type)
        node.clock = clock
        node.phase = phase
        node.set_kind = set_kind
        node.reset_kind = reset_kind
        node.num_ports = num_ports
        if data is not None:
            node.fanins = [data]
        self.ffs.append(node.nid)
        return node.nid

    def set_data(self, ff: int, data: int) -> None:
        """Late-bind the D input of a flip-flop (for feedback loops)."""
        node = self.nodes[ff]
        if not node.is_sequential:
            raise CircuitError(f"{node.name} is not sequential")
        node.fanins = [data]
        self._fingerprint_cache = None

    def mark_output(self, nid: int) -> None:
        """Declare a node a primary output."""
        node = self.nodes[nid]
        if not node.is_output:
            node.is_output = True
            self.outputs.append(nid)
            self._fingerprint_cache = None

    def _check_fanin_arity(self, node: Node) -> None:
        n = len(node.fanins)
        t = node.gate_type
        if t in (GateType.NOT, GateType.BUF) and n != 1:
            raise CircuitError(f"{t.value} gate {node.name} needs 1 fanin")
        if t in (GateType.TIE0, GateType.TIE1) and n != 0:
            raise CircuitError(f"{t.value} gate {node.name} takes no fanin")
        if t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                 GateType.XOR, GateType.XNOR) and n < 1:
            raise CircuitError(f"{t.value} gate {node.name} needs fanins")

    # ------------------------------------------------------------------
    # freeze / derived structure
    # ------------------------------------------------------------------
    def freeze(self) -> "Circuit":
        """Validate, compute fanouts, levels and topological order."""
        for node in self.nodes:
            node.fanouts = []
        for node in self.nodes:
            if node.is_combinational:
                self._check_fanin_arity(node)
            if node.is_sequential and len(node.fanins) != 1:
                raise CircuitError(
                    f"sequential element {node.name} needs exactly one "
                    f"data fanin, has {len(node.fanins)}")
            for fi in node.fanins:
                if not 0 <= fi < len(self.nodes):
                    raise CircuitError(
                        f"node {node.name} references unknown fanin {fi}")
                self.nodes[fi].fanouts.append(node.nid)
        self._levelize()
        self._frozen = True
        self._tfo_cache.clear()
        self._fingerprint_cache = None
        return self

    def _levelize(self) -> None:
        """Topologically order the combinational logic.

        Primary inputs, constants and sequential-element *outputs* are level
        0 sources.  A combinational cycle is a structural error.
        """
        n = len(self.nodes)
        level = [0] * n
        indeg = [0] * n
        for node in self.nodes:
            if node.is_combinational and node.gate_type not in (
                    GateType.TIE0, GateType.TIE1):
                indeg[node.nid] = len(node.fanins)
        order: List[int] = []
        ready = [node.nid for node in self.nodes if indeg[node.nid] == 0]
        seen = 0
        while ready:
            nid = ready.pop()
            seen += 1
            node = self.nodes[nid]
            if node.is_combinational:
                order.append(nid)
            for fo in node.fanouts:
                fo_node = self.nodes[fo]
                if not fo_node.is_combinational:
                    continue
                if level[fo] < level[nid] + 1:
                    level[fo] = level[nid] + 1
                indeg[fo] -= 1
                if indeg[fo] == 0:
                    ready.append(fo)
        if seen != n:
            cyclic = [self.nodes[i].name for i in range(n)
                      if indeg[i] > 0]
            raise CircuitError(
                f"combinational cycle involving: {sorted(cyclic)[:10]}")
        self.level = level
        self.topo_order = order

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def nid(self, name: str) -> int:
        """Node id for a name (raises ``CircuitError`` if unknown)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise CircuitError(f"unknown node name {name!r}") from None

    def node(self, ref) -> Node:
        """Node object from an id or a name."""
        if isinstance(ref, str):
            ref = self.nid(ref)
        return self.nodes[ref]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def num_gates(self) -> int:
        """Number of combinational gates (paper's "Gates" column)."""
        return sum(1 for n in self.nodes if n.is_combinational)

    @property
    def num_ffs(self) -> int:
        return len(self.ffs)

    def fanout_stems(self) -> List[int]:
        """Nodes with structural fanout greater than one (paper section 3.1).

        Sequential elements blocked for learning propagation (multi-port
        latches, both-unconstrained set/reset) still qualify as stems -- the
        restriction applies to propagating *through* them, not to injecting
        on them.
        """
        return [n.nid for n in self.nodes if len(n.fanouts) > 1]

    def ff_mask(self) -> List[bool]:
        mask = [False] * len(self.nodes)
        for f in self.ffs:
            mask[f] = True
        return mask

    def transitive_fanout(self, nid: int) -> List[int]:
        """All nodes reachable forward from ``nid`` (through FFs too).

        Results are memoized after :meth:`freeze` (ATPG asks for the same
        fault cones over and over); the cache is invalidated whenever the
        circuit is (re-)frozen, since freezing rewires fanouts.
        """
        cached = self._tfo_cache.get(nid) if self._frozen else None
        if cached is not None:
            return list(cached)
        seen = {nid}
        stack = [nid]
        while stack:
            cur = stack.pop()
            for fo in self.nodes[cur].fanouts:
                if fo not in seen:
                    seen.add(fo)
                    stack.append(fo)
        seen.discard(nid)
        out = sorted(seen)
        if self._frozen:
            self._tfo_cache[nid] = tuple(out)
        return out

    def combinational_fanin_cone(self, nid: int) -> List[int]:
        """Support cone of a node, stopping at PIs and FF outputs."""
        seen = set()
        stack = [nid]
        while stack:
            cur = stack.pop()
            node = self.nodes[cur]
            if cur != nid and (node.is_input or node.is_sequential):
                seen.add(cur)
                continue
            for fi in node.fanins:
                if fi not in seen:
                    stack.append(fi)
            seen.add(cur)
        return sorted(seen)

    def cone_support(self, nid: int) -> List[int]:
        """PIs and FF outputs feeding the combinational cone of ``nid``."""
        return [i for i in self.combinational_fanin_cone(nid)
                if self.nodes[i].is_input or self.nodes[i].is_sequential]

    def fingerprint(self) -> str:
        """Stable structural hash of the netlist.

        Covers node names, gate types, fanin wiring, output markings and
        all sequential-element attributes -- everything learned knowledge
        depends on -- but *not* the circuit's display name, so a renamed
        copy of the same netlist still matches.  Serialized learning
        artifacts are keyed to this hash and rejected when it changes.

        Frozen circuits memoize the digest (it keys every per-circuit
        cache on the hot simulation paths, and hashing a mid-size
        netlist costs close to a millisecond); :meth:`freeze` and
        :meth:`mark_output` invalidate it, the same contract as the
        transitive-fanout cache.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is not None and self._frozen:
            return cached
        hasher = hashlib.sha256()
        for node in self.nodes:
            parts = [node.name, node.gate_type.value,
                     ",".join(str(fi) for fi in node.fanins),
                     "o" if node.is_output else "-"]
            if node.is_sequential:
                parts += [node.clock, str(node.phase), node.set_kind,
                          node.reset_kind, str(node.num_ports)]
            hasher.update("|".join(parts).encode())
            hasher.update(b"\n")
        digest = hasher.hexdigest()
        if self._frozen:
            self._fingerprint_cache = digest
        return digest

    def stats(self) -> Dict[str, int]:
        """Summary statistics used by reports and benches."""
        return {
            "nodes": len(self.nodes),
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "ffs": len(self.ffs),
            "gates": self.num_gates,
            "stems": len(self.fanout_stems()),
        }
