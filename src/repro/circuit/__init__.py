"""Gate-level sequential circuit substrate."""

from .gates import GateType, ZERO, ONE, X, inv, eval_gate
from .netlist import Circuit, CircuitError, Node
from .builder import CircuitBuilder
from .bench import parse_bench, load_bench, write_bench, bench_text
from .library import (
    BUILTIN,
    builtin_names,
    counter,
    equivalence_demo,
    figure1,
    figure2,
    get_builtin,
    one_hot_ring,
    s27,
)
from .generator import (
    PAPER_PROFILES,
    industrial_like,
    iscas_like,
    random_circuit,
)
from .retime import retimable_ffs, retime_backward, retime_circuit

__all__ = [
    "GateType", "ZERO", "ONE", "X", "inv", "eval_gate",
    "Circuit", "CircuitError", "Node", "CircuitBuilder",
    "parse_bench", "load_bench", "write_bench", "bench_text",
    "BUILTIN", "builtin_names", "counter", "equivalence_demo",
    "figure1", "figure2", "get_builtin", "one_hot_ring", "s27",
    "PAPER_PROFILES", "industrial_like", "iscas_like", "random_circuit",
    "retimable_ffs", "retime_backward", "retime_circuit",
]
