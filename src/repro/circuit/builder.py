"""Fluent, name-based construction API for circuits.

:class:`CircuitBuilder` lets callers wire gates by signal name in any order
(forward references are fine, which matters for sequential feedback loops)
and resolves everything when :meth:`build` is called.

Example
-------
>>> b = CircuitBuilder("toy")
>>> b.inputs("a", "b")
>>> b.gate("g1", "and", "a", "b")
>>> b.dff("f1", "g1")
>>> b.gate("g2", "or", "f1", "a")
>>> b.output("g2")
>>> circuit = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .gates import GateType
from .netlist import Circuit, CircuitError

_TYPE_ALIASES = {
    "and": GateType.AND,
    "nand": GateType.NAND,
    "or": GateType.OR,
    "nor": GateType.NOR,
    "not": GateType.NOT,
    "inv": GateType.NOT,
    "buf": GateType.BUF,
    "buff": GateType.BUF,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "tie0": GateType.TIE0,
    "tie1": GateType.TIE1,
}


def parse_gate_type(token) -> GateType:
    """Map a string alias (or GateType) to a :class:`GateType`."""
    if isinstance(token, GateType):
        return token
    try:
        return _TYPE_ALIASES[token.lower()]
    except KeyError:
        raise CircuitError(f"unknown gate type {token!r}") from None


class CircuitBuilder:
    """Accumulates named gates and resolves connectivity at build time."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._inputs: List[str] = []
        self._gates: List[Tuple[str, GateType, Tuple[str, ...]]] = []
        self._ffs: List[Tuple[str, str, dict]] = []
        self._outputs: List[str] = []
        self._names = set()

    def _claim(self, name: str) -> None:
        if name in self._names:
            raise CircuitError(f"duplicate signal name {name!r}")
        self._names.add(name)

    def inputs(self, *names: str) -> "CircuitBuilder":
        for name in names:
            self._claim(name)
            self._inputs.append(name)
        return self

    def gate(self, name: str, gate_type, *fanins: str) -> "CircuitBuilder":
        self._claim(name)
        self._gates.append((name, parse_gate_type(gate_type), fanins))
        return self

    def dff(self, name: str, data: str, **seq_attrs) -> "CircuitBuilder":
        """Add a D flip-flop; ``seq_attrs`` forwards clock/phase/set/reset."""
        self._claim(name)
        seq_attrs.setdefault("gate_type", GateType.DFF)
        self._ffs.append((name, data, seq_attrs))
        return self

    def latch(self, name: str, data: str, **seq_attrs) -> "CircuitBuilder":
        """Add a transparent latch (classified separately from DFFs)."""
        self._claim(name)
        seq_attrs.setdefault("gate_type", GateType.LATCH)
        self._ffs.append((name, data, seq_attrs))
        return self

    def output(self, *names: str) -> "CircuitBuilder":
        self._outputs.extend(names)
        return self

    def build(self) -> Circuit:
        """Resolve all names and return a frozen :class:`Circuit`."""
        circuit = Circuit(self.name)
        ids: Dict[str, int] = {}
        for name in self._inputs:
            ids[name] = circuit.add_input(name)
        # Declare FFs before gates so gates may reference FF outputs, then
        # declare gates, then late-bind FF data inputs (feedback loops).
        for name, _data, attrs in self._ffs:
            ids[name] = circuit.add_ff(name, None, **attrs)
        pending = list(self._gates)
        while pending:
            progressed = False
            remaining = []
            for name, gate_type, fanins in pending:
                if all(f in ids for f in fanins):
                    ids[name] = circuit.add_gate(
                        name, gate_type, [ids[f] for f in fanins])
                    progressed = True
                else:
                    remaining.append((name, gate_type, fanins))
            if not progressed:
                missing = sorted(
                    {f for _n, _t, fis in remaining for f in fis
                     if f not in ids and
                     f not in {n for n, _t2, _f2 in remaining}})
                if missing:
                    raise CircuitError(f"undefined signals: {missing}")
                # Only combinational forward references remain; declare them
                # in written order (freeze() will reject true cycles).
                for name, gate_type, fanins in remaining:
                    raise CircuitError(
                        f"combinational cycle through gate {name!r}")
            pending = remaining
        for name, data, _attrs in self._ffs:
            if data not in ids:
                raise CircuitError(f"FF {name!r} data {data!r} undefined")
            circuit.set_data(ids[name], ids[data])
        for name in self._outputs:
            if name not in ids:
                raise CircuitError(f"output {name!r} undefined")
            circuit.mark_output(ids[name])
        return circuit.freeze()
