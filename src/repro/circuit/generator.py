"""Synthetic sequential circuit generation.

The paper evaluates on ISCAS-89/93 netlists, retimed circuits and three
industrial designs; none are redistributable here, so this module builds
random circuits with matched structural statistics (FF count, gate count,
fanin/fanout distribution, sequential feedback, reconvergence).  The
learning and ATPG code paths depend only on structure, so these circuits
reproduce the *shape* of the paper's tables (see DESIGN.md section 4).

``iscas_like(name)`` returns a circuit with the same FF/gate counts as the
published benchmark of that name.  ``industrial_like`` adds the section 3.3
real-circuit features: several clock domains, partial set/reset and
multi-port latches.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .builder import CircuitBuilder
from .netlist import Circuit

#: (inputs, outputs, ffs, gates) of the paper's Table 3 circuits.
PAPER_PROFILES: Dict[str, Tuple[int, int, int, int]] = {
    "s382": (3, 6, 21, 158),
    "s386": (7, 7, 6, 159),
    "s400": (3, 6, 21, 164),
    "s444": (3, 6, 21, 181),
    "s641": (35, 24, 19, 377),
    "s713": (35, 23, 19, 393),
    "s953": (16, 23, 29, 424),
    "s967": (16, 23, 29, 395),
    "s1196": (14, 14, 18, 529),
    "s1238": (14, 14, 18, 508),
    "s1269": (18, 10, 37, 569),
    "s1423": (17, 5, 74, 657),
    "s3330": (40, 73, 132, 1789),
    "s3384": (43, 26, 183, 1685),
    "s4863": (49, 16, 104, 2342),
    "s5378": (35, 49, 179, 2779),
    "s6669": (83, 55, 239, 3080),
    "s9234": (36, 39, 228, 5597),
    "s13207": (62, 152, 638, 7951),
    "s15850": (77, 150, 597, 9772),
    "s38417": (28, 106, 1636, 22179),
    "s38584": (38, 304, 1452, 19253),
}

_GATE_TYPES = ("and", "nand", "or", "nor", "and", "or", "nand", "nor",
               "not", "buf", "xor", "xnor")


def random_circuit(name: str, *, n_inputs: int, n_outputs: int,
                   n_ffs: int, n_gates: int, seed: int = 0,
                   fanin_max: int = 3, depth: int = 8,
                   feedback_fraction: float = 0.6) -> Circuit:
    """Generate a random sequential circuit with realistic structure.

    Construction is levelized like synthesized netlists: level 0 holds
    PIs and FF outputs, each gate at level l draws most fanins from level
    l-1 (with occasional long edges for reconvergence), and the logic
    stays shallow (``depth`` levels).  FF data inputs come from the upper
    levels, a ``feedback_fraction`` of them from cones that contain their
    own FF class (sequential feedback); outputs are drawn from the top
    levels so most logic is observable.  Fanins are always distinct --
    duplicated fanins (XOR(x,x), AND(x,x)) degenerate into tied or
    transparent logic that floods learning statistics.
    """
    rng = random.Random(seed)
    b = CircuitBuilder(name)
    pi_names = [f"I{i}" for i in range(n_inputs)]
    b.inputs(*pi_names)
    ff_names = [f"F{i}" for i in range(n_ffs)]
    levels: List[List[str]] = [list(pi_names) + list(ff_names)]
    gate_names: List[str] = []
    per_level = max(1, n_gates // depth)
    gate_index = 0
    while gate_index < n_gates:
        level_gates: List[str] = []
        target = min(per_level, n_gates - gate_index)
        for _ in range(target):
            gtype = rng.choice(_GATE_TYPES)
            arity = 1 if gtype in ("not", "buf") else rng.randint(
                2, fanin_max)
            pool = list(levels[-1])
            # Long edges create the reconvergent fanout real designs have.
            extra_src = [s for lvl in levels[:-1] for s in lvl]
            fanins: List[str] = []
            while len(fanins) < arity and (pool or extra_src):
                if extra_src and (not pool or rng.random() < 0.25):
                    pick = extra_src.pop(rng.randrange(len(extra_src)))
                else:
                    pick = pool.pop(rng.randrange(len(pool)))
                if pick not in fanins:
                    fanins.append(pick)
            if len(fanins) < arity:
                gtype = "not" if not fanins else gtype
                if not fanins:
                    fanins = [rng.choice(levels[0])]
            gname = f"G{gate_index}"
            b.gate(gname, gtype, *fanins)
            gate_names.append(gname)
            level_gates.append(gname)
            gate_index += 1
        levels.append(level_gates)
    if not gate_names:
        raise ValueError("n_gates must be positive")
    upper = [g for lvl in levels[max(1, len(levels) - 3):] for g in lvl]
    for i, ff in enumerate(ff_names):
        if rng.random() < feedback_fraction or not gate_names:
            data = rng.choice(upper)
        else:
            data = rng.choice(gate_names)
        b.dff(ff, data)
    outputs: List[str] = []
    pool = list(upper)
    rng.shuffle(pool)
    for gname in pool:
        if len(outputs) >= n_outputs:
            break
        outputs.append(gname)
    for gname in gate_names:
        if len(outputs) >= n_outputs:
            break
        if gname not in outputs:
            outputs.append(gname)
    b.output(*outputs)
    return b.build()


def iscas_like(paper_name: str, *, seed: Optional[int] = None,
               scale: float = 1.0) -> Circuit:
    """A random circuit matching a published benchmark's FF/gate counts.

    ``scale`` < 1 shrinks the circuit proportionally (used by the ATPG
    benches so pure-Python runs stay tractable; the learning benches run
    at full published size).
    """
    if paper_name not in PAPER_PROFILES:
        raise KeyError(f"no profile for {paper_name!r}; "
                       f"known: {sorted(PAPER_PROFILES)}")
    n_in, n_out, n_ff, n_gate = PAPER_PROFILES[paper_name]
    if seed is None:
        seed = sum(ord(c) for c in paper_name)
    shrink = max(scale, 4.0 / max(n_gate, 4))
    return random_circuit(
        f"{paper_name}_like" + ("" if scale == 1.0 else f"@{scale:g}"),
        n_inputs=max(2, round(n_in * min(1.0, shrink * 2))),
        n_outputs=max(1, round(n_out * shrink)),
        n_ffs=max(2, round(n_ff * shrink)),
        n_gates=max(4, round(n_gate * shrink)),
        seed=seed)


def industrial_like(name: str = "indust", *, n_domains: int = 3,
                    n_ffs: int = 60, n_gates: int = 400,
                    seed: int = 7) -> Circuit:
    """Random circuit with the paper's section 3.3 real-circuit features.

    FFs are spread over ``n_domains`` clock domains (including a gated
    clock and an opposite-phase group), a slice gets partial set or reset
    lines, one FF gets both unconstrained set and reset, and a couple of
    multi-port latches are inserted.  Learning must classify and restrict
    propagation accordingly.
    """
    rng = random.Random(seed)
    base = random_circuit(name, n_inputs=max(4, n_ffs // 8),
                          n_outputs=max(2, n_ffs // 10), n_ffs=n_ffs,
                          n_gates=n_gates, seed=seed)
    clocks = [f"clk{d}" for d in range(n_domains)]
    clocks.append("clk0_gated")
    for i, fid in enumerate(base.ffs):
        node = base.nodes[fid]
        node.clock = clocks[i % len(clocks)]
        node.phase = 1 if (i % 7 == 0) else 0
        roll = rng.random()
        if roll < 0.10:
            node.set_kind = "unconstrained"
        elif roll < 0.20:
            node.reset_kind = "unconstrained"
        elif roll < 0.25:
            node.set_kind = "constrained"
        if i == 0:
            node.set_kind = "unconstrained"
            node.reset_kind = "unconstrained"
        if i in (1, 2):
            from .gates import GateType

            node.gate_type = GateType.LATCH
            if i == 1:
                node.num_ports = 2
    return base
