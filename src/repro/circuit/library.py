"""Built-in circuits.

``figure1()`` and ``figure2()`` are reconstructions of the paper's worked
examples.  The schematics are only available as prose plus Table 1, so the
netlists were reverse-engineered to reproduce every narrated behaviour (see
DESIGN.md section 3 for the constraint-by-constraint derivation and the
known additive deviations):

* ``figure1``: G3 combinationally tied to 0 via stem I1; stem I2=1 sustains
  F3=1 through the G11/F3 self-loop; single-node relations
  F6=1->{F1=1,F2=1,F3=1,F4=0}; multiple-node relations
  F3=0->{F1=0,F2=0,F4=1,F5=0,F6=0}; G15 proven sequentially tied to 0 by a
  conflict during multiple-node learning.
* ``figure2``: the relation G9=0 -> F2=0 which backward/forward learning
  cannot extract, plus the decision-node discussion (justifying G6=0 has the
  solutions F1=0 / F2=0, justifying G7=0 has F2=0 / F3=0).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .builder import CircuitBuilder
from .netlist import Circuit


def figure1() -> Circuit:
    """The paper's Figure 1 learning example (reconstructed)."""
    b = CircuitBuilder("figure1")
    b.inputs("I1", "I2", "I3", "I4", "I5")
    # Tied logic reachable from stem I1.
    b.gate("G3", "xor", "I1", "I1")          # combinationally tied to 0
    b.gate("G8", "and", "F2", "G3")          # tied to 0 once G3 is known
    # Reconvergent AND structure around F1/F2.
    b.gate("G4", "and", "F1", "F2")
    b.gate("G7", "and", "I2", "I3")
    b.gate("G1", "or", "G4", "G7")
    b.gate("G2", "and", "F1", "G1")          # F2=0 does not set G2 under 3V
    # Next-state logic.
    b.gate("G9", "or", "I2", "G2")           # D(F1)
    b.gate("G10", "or", "I2", "G8")          # D(F2)
    b.gate("G11", "or", "G10", "F3")         # D(F3): self-sustaining loop
    b.gate("G5", "or", "F3", "F5")
    b.gate("G6", "nor", "I2", "G5")          # D(F4)
    b.gate("G12", "and", "F6", "I4")         # D(F5)
    b.gate("G13", "and", "G7", "F4", "I5")   # D(F6)
    # Output logic proving the sequential tie on G15.
    b.gate("G14", "nor", "F1", "F2")
    b.gate("G15", "nor", "F3", "G14")        # sequentially tied to 0
    b.dff("F1", "G9")
    b.dff("F2", "G10")
    b.dff("F3", "G11")
    b.dff("F4", "G6")
    b.dff("F5", "G12")
    b.dff("F6", "G13")
    b.output("G15", "G2", "G6", "G12", "G13")
    return b.build()


def figure2() -> Circuit:
    """The paper's Figure 2 example (reconstructed).

    Both I2=0 and I3=0 at T=0 imply G9=1 at T=1, so G9=0 at T=1 implies
    I2=1 and I3=1 at T=0, which forces F2=0 at T=1: the same-frame relation
    G9=0 -> F2=0, unreachable by injecting values on G9 and implying
    backward/forward.
    """
    b = CircuitBuilder("figure2")
    b.inputs("I1", "I2", "I3", "I4", "I5", "I6")
    b.gate("G1", "not", "I2")                # D(F1)
    b.gate("G2", "nand", "I2", "I3")         # D(F2)
    b.gate("G3", "not", "I3")                # D(F3)
    b.gate("G6", "and", "F1", "F2")
    b.gate("G7", "and", "F2", "F3")
    b.gate("G9", "or", "G6", "G7")
    b.gate("G4", "and", "I1", "I4")
    b.gate("G5", "or", "G4", "F4")
    b.gate("G8", "and", "G5", "I5", "I6")    # D(F4)
    b.dff("F1", "G1")
    b.dff("F2", "G2")
    b.dff("F3", "G3")
    b.dff("F4", "G8")
    b.dff("F5", "G9")
    b.output("G9", "F5", "G8")
    return b.build()


def equivalence_demo() -> Circuit:
    """Combinationally equivalent gates invisible to 3-valued simulation.

    ``GEQ = OR(AND(F1,I1), AND(F1,NOT I1), F2)`` computes OR(F1, F2) --
    the same function as the plain ``GAND`` -- but injecting F1=1 leaves
    GEQ at X (both AND terms stay unknown through the reconvergent I1)
    while GAND goes to 1.  Gate-equivalence learning couples the two,
    which unlocks the invalid-state relation F4=0 -> F2=1: F4=0 means
    F1 was 1 a cycle ago, so GEQ was 1 and F2 captured it.
    """
    b = CircuitBuilder("equivalence_demo")
    b.inputs("I1", "I2")
    b.gate("GAND", "or", "F1", "F2")
    b.gate("NI1", "not", "I1")
    b.gate("A1", "and", "F1", "I1")
    b.gate("A2", "and", "F1", "NI1")
    b.gate("GEQ", "or", "A1", "A2", "F2")    # == GAND, hidden from 3V sim
    b.gate("NF", "not", "F1")
    b.gate("B1", "buf", "I2")
    b.dff("F1", "B1")
    b.dff("F2", "GEQ")
    b.dff("F4", "NF")
    b.output("GEQ", "GAND", "F4")
    return b.build()


def s27() -> Circuit:
    """ISCAS-89 s27 (the one genuine benchmark small enough to inline)."""
    b = CircuitBuilder("s27")
    b.inputs("G0", "G1", "G2", "G3")
    b.gate("G14", "not", "G0")
    b.gate("G17", "not", "G11")
    b.gate("G8", "and", "G14", "G6")
    b.gate("G15", "or", "G12", "G8")
    b.gate("G16", "or", "G3", "G8")
    b.gate("G9", "nand", "G16", "G15")
    b.gate("G10", "nor", "G14", "G11")
    b.gate("G11", "nor", "G5", "G9")
    b.gate("G12", "nor", "G1", "G7")
    b.gate("G13", "nor", "G2", "G12")
    b.dff("G5", "G10")
    b.dff("G6", "G11")
    b.dff("G7", "G13")
    b.output("G17")
    return b.build()


def counter(bits: int = 3) -> Circuit:
    """A ``bits``-wide binary counter with enable -- dense encoding.

    Every state is reachable, so learning finds no invalid-state
    relations; a useful negative control in tests.
    """
    b = CircuitBuilder(f"counter{bits}")
    b.inputs("EN")
    carry = "EN"
    for i in range(bits):
        q = f"Q{i}"
        b.gate(f"X{i}", "xor", q, carry)
        b.dff(q, f"X{i}")
        if i + 1 < bits:
            b.gate(f"C{i}", "and", q, carry)
            carry = f"C{i}"
    b.gate("OUT", "and", *[f"Q{i}" for i in range(bits)])
    b.output("OUT")
    return b.build()


def one_hot_ring(stages: int = 4) -> Circuit:
    """A ring of FFs shifting circularly.

    Shifting permutes the state space, so every state persists (density
    of encoding 1.0) -- but the guarded injection logic still gives the
    learning engine gate-FF relations to find.  figure1() and retimed
    circuits are the low-density workloads.
    """
    b = CircuitBuilder(f"ring{stages}")
    b.inputs("SEED")
    others = [f"R{j}" for j in range(1, stages)]
    b.gate("EMPTY", "nor", *others, "R0")
    b.gate("INJ", "and", "SEED", "EMPTY")
    b.gate("D0", "or", "INJ", f"R{stages - 1}")
    prev = "D0"
    b.dff("R0", "D0")
    for i in range(1, stages):
        b.gate(f"D{i}", "buf", f"R{i - 1}")
        b.dff(f"R{i}", f"D{i}")
        prev = f"D{i}"
    b.gate("OUT", "or", "R0", f"R{stages - 1}")
    b.output("OUT")
    return b.build()


#: Registry of built-in circuits by name.
BUILTIN: Dict[str, Callable[[], Circuit]] = {
    "figure1": figure1,
    "figure2": figure2,
    "equivalence_demo": equivalence_demo,
    "s27": s27,
    "counter3": lambda: counter(3),
    "ring4": lambda: one_hot_ring(4),
}


def builtin_names() -> List[str]:
    return sorted(BUILTIN)


def get_builtin(name: str) -> Circuit:
    """Instantiate a built-in circuit by name."""
    try:
        factory = BUILTIN[name]
    except KeyError:
        raise KeyError(
            f"unknown builtin circuit {name!r}; "
            f"choose from {builtin_names()}") from None
    return factory()
