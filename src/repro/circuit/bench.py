"""ISCAS-89 ``.bench`` reader and writer.

The classic format::

    # comment
    INPUT(I1)
    OUTPUT(G17)
    F1 = DFF(G10)
    G10 = NAND(I1, F1)

Extensions (all optional, written as structured comments so files stay
readable by other tools): sequential-element attributes for the paper's
real-circuit features::

    # @ff F1 clock=clkB phase=1 set=unconstrained reset=none ports=2
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, TextIO, Union

from .builder import CircuitBuilder
from .gates import GateType
from .netlist import Circuit, CircuitError

_LINE_RE = re.compile(
    r"^\s*(?P<out>[^=\s]+)\s*=\s*(?P<type>[A-Za-z0-9_]+)\s*"
    r"\(\s*(?P<args>[^)]*)\)\s*$")
_IO_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([^)\s]+)\s*\)\s*$",
                    re.IGNORECASE)
_FF_ATTR_RE = re.compile(r"^#\s*@ff\s+(?P<name>\S+)\s+(?P<attrs>.*)$")

_SEQ_TYPES = {"dff": GateType.DFF, "latch": GateType.LATCH}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a frozen :class:`Circuit`."""
    builder = CircuitBuilder(name)
    ff_attrs: Dict[str, dict] = {}
    outputs: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            m = _FF_ATTR_RE.match(line)
            if m:
                ff_attrs[m.group("name")] = _parse_ff_attrs(m.group("attrs"))
            continue
        m = _IO_RE.match(line)
        if m:
            kind, signal = m.group(1).upper(), m.group(2)
            if kind == "INPUT":
                builder.inputs(signal)
            else:
                outputs.append(signal)
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise CircuitError(f"unparsable bench line: {raw!r}")
        out = m.group("out")
        type_token = m.group("type").lower()
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        if type_token in _SEQ_TYPES:
            if len(args) != 1:
                raise CircuitError(
                    f"{type_token.upper()} {out} needs one data argument")
            attrs = dict(ff_attrs.get(out, {}))
            attrs["gate_type"] = _SEQ_TYPES[type_token]
            builder.dff(out, args[0], **attrs)
        else:
            builder.gate(out, type_token, *args)
    builder.output(*outputs)
    return builder.build()


def _parse_ff_attrs(text: str) -> dict:
    attrs: dict = {}
    for token in text.split():
        if "=" not in token:
            raise CircuitError(f"bad @ff attribute token {token!r}")
        key, value = token.split("=", 1)
        if key == "clock":
            attrs["clock"] = value
        elif key == "phase":
            attrs["phase"] = int(value)
        elif key == "set":
            attrs["set_kind"] = value
        elif key == "reset":
            attrs["reset_kind"] = value
        elif key == "ports":
            attrs["num_ports"] = int(value)
        else:
            raise CircuitError(f"unknown @ff attribute {key!r}")
    return attrs


def load_bench(path) -> Circuit:
    """Read a ``.bench`` file from disk."""
    with open(path) as handle:
        return parse_bench(handle.read(), name=str(path))


def write_bench(circuit: Circuit, stream_or_path: Union[str, TextIO]) -> None:
    """Serialize a circuit to ``.bench`` (with @ff attribute comments)."""
    if isinstance(stream_or_path, str):
        with open(stream_or_path, "w") as handle:
            write_bench(circuit, handle)
        return
    out = stream_or_path
    out.write(f"# {circuit.name}\n")
    for nid in circuit.inputs:
        out.write(f"INPUT({circuit.nodes[nid].name})\n")
    for nid in circuit.outputs:
        out.write(f"OUTPUT({circuit.nodes[nid].name})\n")
    for nid in circuit.ffs:
        node = circuit.nodes[nid]
        if (node.clock, node.phase, node.set_kind, node.reset_kind,
                node.num_ports) != ("clk", 0, "none", "none", 1):
            out.write(
                f"# @ff {node.name} clock={node.clock} phase={node.phase} "
                f"set={node.set_kind} reset={node.reset_kind} "
                f"ports={node.num_ports}\n")
        data = circuit.nodes[node.fanins[0]].name
        out.write(f"{node.name} = {node.gate_type.value.upper()}({data})\n")
    for nid in circuit.topo_order:
        node = circuit.nodes[nid]
        fanin_names = ", ".join(circuit.nodes[f].name for f in node.fanins)
        out.write(
            f"{node.name} = {node.gate_type.value.upper()}({fanin_names})\n")


def bench_text(circuit: Circuit) -> str:
    """Return the ``.bench`` serialization as a string."""
    import io

    buf = io.StringIO()
    write_bench(circuit, buf)
    return buf.getvalue()
