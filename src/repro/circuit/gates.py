"""Gate primitives and three-valued evaluation tables.

Logic values are encoded as small integers:

* ``ZERO`` (0), ``ONE`` (1) -- known Boolean values.
* ``X`` (2) -- the unknown value of three-valued simulation.

Gate types cover the ISCAS-89 cell library plus the sequential elements the
paper needs (D flip-flops, transparent latches, multi-port latches) and the
constant cells ``TIE0``/``TIE1``.
"""

from __future__ import annotations

import enum
from typing import Sequence

ZERO = 0
ONE = 1
X = 2

VALUE_NAMES = {ZERO: "0", ONE: "1", X: "X"}


def value_name(value: int) -> str:
    """Printable form of a three-valued logic value."""
    return VALUE_NAMES[value]


def inv(value: int) -> int:
    """Three-valued NOT."""
    if value == X:
        return X
    return 1 - value


class GateType(enum.Enum):
    """Every cell kind understood by the netlist."""

    INPUT = "input"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    NOT = "not"
    BUF = "buf"
    XOR = "xor"
    XNOR = "xnor"
    TIE0 = "tie0"
    TIE1 = "tie1"
    DFF = "dff"
    LATCH = "latch"


COMBINATIONAL_TYPES = frozenset(
    {
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.NOT,
        GateType.BUF,
        GateType.XOR,
        GateType.XNOR,
        GateType.TIE0,
        GateType.TIE1,
    }
)

SEQUENTIAL_TYPES = frozenset({GateType.DFF, GateType.LATCH})

#: Controlling input value per gate type (None when the gate has no
#: controlling value, e.g. XOR).
CONTROLLING_VALUE = {
    GateType.AND: ZERO,
    GateType.NAND: ZERO,
    GateType.OR: ONE,
    GateType.NOR: ONE,
}

#: Output produced when a controlling value is present on some input.
CONTROLLED_RESPONSE = {
    GateType.AND: ZERO,
    GateType.NAND: ONE,
    GateType.OR: ONE,
    GateType.NOR: ZERO,
}

#: True when the gate inverts the "natural" (AND/OR) response.
INVERTING = {
    GateType.AND: False,
    GateType.NAND: True,
    GateType.OR: False,
    GateType.NOR: True,
    GateType.NOT: True,
    GateType.BUF: False,
    GateType.XOR: False,
    GateType.XNOR: True,
}


def eval_gate(gate_type: GateType, values: Sequence[int]) -> int:
    """Evaluate a combinational gate under three-valued logic.

    ``values`` are the fanin values in fanin order.  Sequential gates must not
    be evaluated here; the simulator handles their frame semantics.
    """
    if gate_type is GateType.AND or gate_type is GateType.NAND:
        out = ONE
        for v in values:
            if v == ZERO:
                out = ZERO
                break
            if v == X:
                out = X
        return inv(out) if gate_type is GateType.NAND else out
    if gate_type is GateType.OR or gate_type is GateType.NOR:
        out = ZERO
        for v in values:
            if v == ONE:
                out = ONE
                break
            if v == X:
                out = X
        return inv(out) if gate_type is GateType.NOR else out
    if gate_type is GateType.NOT:
        return inv(values[0])
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.XOR or gate_type is GateType.XNOR:
        out = ZERO
        for v in values:
            if v == X:
                return X
            out ^= v
        return inv(out) if gate_type is GateType.XNOR else out
    if gate_type is GateType.TIE0:
        return ZERO
    if gate_type is GateType.TIE1:
        return ONE
    raise ValueError(f"cannot evaluate gate type {gate_type!r} combinationally")


def gate_function_table(gate_type: GateType, num_inputs: int):
    """Full truth table of a gate over {0,1} inputs.

    Returns a list indexed by the input minterm (fanin 0 is the least
    significant bit).  Used by the equivalence checker for exact
    verification.
    """
    size = 1 << num_inputs
    table = []
    for minterm in range(size):
        values = [(minterm >> i) & 1 for i in range(num_inputs)]
        table.append(eval_gate(gate_type, values))
    return table
