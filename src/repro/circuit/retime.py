"""Retiming transformation.

Backward retiming moves a register from a gate's output to its inputs:

    F = DFF(G),  G = g(a, b)   ==>   Fa = DFF(a), Fb = DFF(b), F' = g(Fa, Fb)

The transformed circuit is sequentially equivalent (one-cycle latency of G
is preserved) but the new registers jointly encode strictly more state
bits than the one they replace, so many of their combinations never occur:
retiming lowers the density of encoding.  Reference [9] of the paper shows
this is what makes sequential ATPG blow up on retimed circuits, and the
paper's Table 5 retimed rows (s510jcsrre etc.) are exactly such circuits.

``retime_circuit`` applies ``moves`` backward-retiming steps to the FFs
with the widest data cones, mirroring how aggressive min-period retiming
spreads registers into random logic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .builder import CircuitBuilder
from .gates import GateType
from .netlist import Circuit


def _clone_into_builder(circuit: Circuit, name: str) -> CircuitBuilder:
    b = CircuitBuilder(name)
    b.inputs(*[circuit.nodes[i].name for i in circuit.inputs])
    for fid in circuit.ffs:
        node = circuit.nodes[fid]
        b.dff(node.name, circuit.nodes[node.fanins[0]].name,
              gate_type=node.gate_type, clock=node.clock, phase=node.phase,
              set_kind=node.set_kind, reset_kind=node.reset_kind,
              num_ports=node.num_ports)
    for nid in circuit.topo_order:
        node = circuit.nodes[nid]
        b.gate(node.name, node.gate_type,
               *[circuit.nodes[f].name for f in node.fanins])
    b.output(*[circuit.nodes[o].name for o in circuit.outputs])
    return b


def retime_backward(circuit: Circuit, ff_name: str,
                    new_name: Optional[str] = None) -> Circuit:
    """Move one FF backward across its driving gate.

    The FF must be driven by a multi-input combinational gate whose fanins
    are not the FF itself (no self-loop).  Returns a new frozen circuit.
    """
    ff = circuit.node(ff_name)
    if not ff.is_sequential:
        raise ValueError(f"{ff_name} is not a sequential element")
    driver = circuit.nodes[ff.fanins[0]]
    if not driver.is_combinational or driver.gate_type in (
            GateType.TIE0, GateType.TIE1):
        raise ValueError(
            f"{ff_name} driver {driver.name} is not a movable gate")
    if ff.nid in driver.fanins:
        raise ValueError(f"{ff_name} has a combinational self-loop driver")
    out_name = new_name or (circuit.name + f"_rt_{ff_name}")
    b = CircuitBuilder(out_name)
    b.inputs(*[circuit.nodes[i].name for i in circuit.inputs])
    # New registers, one per driver fanin (shared fanins share a register).
    reg_of = {}
    for fi in dict.fromkeys(driver.fanins):
        reg_name = f"{ff.name}_r{len(reg_of)}"
        reg_of[fi] = reg_name
        b.dff(reg_name, circuit.nodes[fi].name,
              clock=ff.clock, phase=ff.phase)
    for fid in circuit.ffs:
        node = circuit.nodes[fid]
        if fid == ff.nid:
            continue
        b.dff(node.name, circuit.nodes[node.fanins[0]].name,
              gate_type=node.gate_type, clock=node.clock, phase=node.phase,
              set_kind=node.set_kind, reset_kind=node.reset_kind,
              num_ports=node.num_ports)
    for nid in circuit.topo_order:
        node = circuit.nodes[nid]
        b.gate(node.name, node.gate_type,
               *[circuit.nodes[f].name for f in node.fanins])
    # The retimed FF's output is re-created combinationally from the new
    # registers; every old reference to the FF keeps its name.
    b.gate(ff.name, driver.gate_type,
           *[reg_of[fi] for fi in driver.fanins])
    b.output(*[circuit.nodes[o].name for o in circuit.outputs])
    return b.build()


def retimable_ffs(circuit: Circuit) -> List[str]:
    """FF names eligible for :func:`retime_backward`, widest driver first."""
    out = []
    for fid in circuit.ffs:
        ff = circuit.nodes[fid]
        driver = circuit.nodes[ff.fanins[0]]
        if (driver.is_combinational
                and driver.gate_type not in (GateType.TIE0, GateType.TIE1)
                and ff.nid not in driver.fanins
                and len(driver.fanins) >= 2):
            out.append((len(driver.fanins), ff.name))
    return [name for _w, name in sorted(out, reverse=True)]


def retime_circuit(circuit: Circuit, moves: int = 3,
                   seed: Optional[int] = None,
                   name: Optional[str] = None) -> Circuit:
    """Apply several backward-retiming moves.

    Picks the widest-fanin retimable FFs (shuffled when ``seed`` is given)
    so each move maximally dilutes the state encoding.  Stops early if the
    circuit runs out of retimable FFs.
    """
    current = circuit
    rng = random.Random(seed) if seed is not None else None
    for step in range(moves):
        candidates = retimable_ffs(current)
        if not candidates:
            break
        if rng is not None:
            rng.shuffle(candidates)
        target = candidates[0]
        current = retime_backward(
            current, target,
            new_name=(name or circuit.name + "_retimed")
            if step == moves - 1 else None)
    if name is not None and current.name != name:
        current.name = name
    return current
