"""Multiple-node learning (paper section 3.1, second phase).

Single-node learning misses relations needing several simultaneous
assignments.  For every (node, value) the first phase recorded *all* its
justifications -- each (stem, stem-value, offset) that produced it.  By
the contrapositive law the complementary node value implies the
complement of every justifying stem value at the corresponding earlier
frame.  Injecting that whole assignment set and simulating forward
yields new same-frame relations between the target and everything set at
the final frame, and a simulation conflict proves the target node *tied*
(the paper's G15 walkthrough).

This phase runs with the :class:`~repro.sim.eventsim.Coupling` carrying
phase-one ties and gate equivalences, which is what lets it find
relations like F3=0 -> F1=0 in Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuit.gates import inv
from ..circuit.netlist import Circuit
from ..sim.eventsim import FrameSimulator
from .relations import RelationDB
from .single_node import SingleNodeData
from .ties import TieSet


@dataclass
class MultiNodeStats:
    """Bookkeeping for reports and tests."""

    targets_run: int = 0
    targets_skipped: int = 0
    relations_added: int = 0
    ties_found: int = 0
    conflicts: List[Tuple[int, int]] = field(default_factory=list)


def build_injections(justifications: List[Tuple[int, int, int]],
                     target: Tuple[int, int],
                     max_frames: int
                     ) -> Optional[Tuple[Dict[int, List[Tuple[int, int]]], int]]:
    """Contrapositive assignment set for one target.

    Returns ``(injections, t_max)`` where ``injections[frame]`` lists
    (node, value) pairs, including the target itself at ``t_max``; or
    ``None`` when the justification offsets exceed the frame budget.
    Returns ``t_max = -1`` sentinel (with empty injections) when two
    justifications contradict each other -- the target is then tied
    outright (both stem values produce it, the single-node tie criterion
    seen from the other side).
    """
    nid, value = target
    offsets = [t for _s, _v, t in justifications]
    t_max = max(offsets)
    if t_max >= max_frames:
        justifications = [j for j in justifications if j[2] < max_frames]
        if not justifications:
            return None
        t_max = max(t for _s, _v, t in justifications)
    by_frame: Dict[int, Dict[int, int]] = {}
    for stem, stem_value, offset in justifications:
        frame = t_max - offset
        frame_map = by_frame.setdefault(frame, {})
        want = inv(stem_value)
        if frame_map.setdefault(stem, want) != want:
            return {}, -1  # contradictory requirements: target is tied
    target_map = by_frame.setdefault(t_max, {})
    if target_map.setdefault(nid, inv(value)) != inv(value):
        return {}, -1
    injections = {frame: sorted(mapping.items())
                  for frame, mapping in by_frame.items()}
    return injections, t_max


def run_multi_node(simulator: FrameSimulator, data: SingleNodeData,
                   db: RelationDB, ties: TieSet, *,
                   max_frames: int = 50,
                   min_justifications: int = 1,
                   max_targets: Optional[int] = None,
                   store_gate_gate: bool = False) -> MultiNodeStats:
    """Run multiple-node learning over every justified (node, value)."""
    circuit = simulator.circuit
    stats = MultiNodeStats()
    constants = simulator._constants
    is_ff = circuit.ff_mask()
    targets = [(key, justs) for key, justs in data.justifications.items()
               if len(justs) >= min_justifications
               and key[0] not in constants and key[0] not in ties]
    # Richest justification sets first: they reach furthest.
    targets.sort(key=lambda item: -len(item[1]))
    if max_targets is not None:
        stats.targets_skipped += max(0, len(targets) - max_targets)
        targets = targets[:max_targets]
    for (nid, value), justifications in targets:
        built = build_injections(justifications, (nid, value), max_frames)
        if built is None:
            stats.targets_skipped += 1
            continue
        injections, t_max = built
        if t_max < 0:
            if ties.add(nid, value, sequential=True, phase="multi",
                        warmup=max(t for _s, _v, t in justifications)):
                stats.ties_found += 1
            continue
        stats.targets_run += 1
        result = simulator.run(injections, max_frames=t_max + 1,
                               stop_on_repeat=False)
        if result.conflict is not None:
            # The premise nid=inv(value) is contradictory: tied to value.
            if ties.add(nid, value, sequential=t_max >= 1, phase="multi",
                        warmup=t_max):
                stats.ties_found += 1
                stats.conflicts.append((nid, value))
            continue
        if t_max >= len(result.frames):
            continue
        target_is_ff = is_ff[nid]
        final = result.frames[t_max]
        for m, u in final.items():
            if m == nid or m in constants:
                continue
            if (t_max, m) in result.injected:
                continue
            if not store_gate_gate and not (target_is_ff or is_ff[m]):
                continue
            if db.add(nid, inv(value), m, u, source="multi",
                      sequential=t_max >= 1, warmup=t_max):
                stats.relations_added += 1
    return stats
