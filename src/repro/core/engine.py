"""The sequential learning engine -- the paper's main contribution.

:class:`SequentialLearner` orchestrates the phases:

1. classify sequential elements into clock-domain classes (section 3.3.2);
2. per class: **single-node learning** -- inject 0/1 on every fanout stem,
   forward-simulate up to ``max_frames`` (paper: 50) frames, extract
   same-frame relations by the contrapositive law (section 3.1);
3. **tie extraction** from phase 2 plus constant propagation
   (section 3.2);
4. **gate-equivalence identification** via parallel patterns with exact
   verification (section 3.1);
5. per class: **multiple-node learning** with ties and equivalences
   coupled into the simulator, finding further relations and proving
   more tie gates through conflicts.

The result carries the relation database (invalid-state FF-FF relations
plus gate-FF relations), the tie set, timing, and a Monte-Carlo
:meth:`LearnResult.validate` oracle used heavily by the test suite.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..circuit.gates import ONE, X, ZERO, inv
from ..circuit.netlist import Circuit
from ..sim.eventsim import Coupling, FrameSimulator, simulate_sequence
from .clock_domains import learning_passes
from .equivalence import coupling_from, find_equivalences
from .multi_node import MultiNodeStats, run_multi_node
from .relations import RelationDB
from .single_node import (
    SingleNodeData,
    extract_same_frame_relations,
    run_single_node,
)
from .ties import TieSet, propagate_tie_constants, ties_from_single_node


@dataclass
class LearnConfig:
    """Knobs of the learning engine (defaults follow the paper)."""

    #: Maximum forward-simulation depth (the paper uses 50).
    max_frames: int = 50
    #: Run the multiple-node phase.
    use_multi_node: bool = True
    #: Identify and couple combinationally equivalent gates.
    use_equivalence: bool = True
    #: Store gate-gate relations too (the paper does not).
    store_gate_gate: bool = False
    #: Patterns for equivalence candidate signatures.
    equivalence_width: int = 256
    #: Exact-verification support limit for equivalences.
    equivalence_max_support: int = 14
    #: Cap multiple-node targets (None = all); biggest justification
    #: sets first.  Used to bound runtime on very large circuits.
    multi_node_max_targets: Optional[int] = None
    #: Random seed for equivalence patterns.
    seed: int = 20260611
    #: Width of the random-pattern signatures behind equivalence
    #: candidate identification.  ``None`` keeps
    #: :attr:`equivalence_width` (the historical 256); e.g. 4096 runs
    #: learning signatures at array word widths.  Part of the learned
    #: config digest: a different width can bucket different candidate
    #: pairs (results across *backends* are bit-identical at any fixed
    #: width).
    signature_width: Optional[int] = None
    #: Machine-batch width of the batched single-node learning runs
    #: (``None`` = the sim backend's default).  A pure packing knob:
    #: machines are independent bit columns, so learned data never
    #: depends on it.
    single_node_batch_width: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LearnConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown LearnConfig keys: {sorted(unknown)}")
        return cls(**data)


@dataclass
class LearnResult:
    """Everything the learning engine extracted."""

    circuit: Circuit
    config: LearnConfig
    relations: RelationDB
    ties: TieSet
    equivalences: Dict[int, Tuple[int, int]]
    single_node_data: Dict[Tuple, SingleNodeData]
    multi_stats: MultiNodeStats
    elapsed: float = 0.0
    phase_times: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def counts(self, sequential_only: bool = True) -> Dict[str, int]:
        """Table-3 style relation counts."""
        return self.relations.counts(sequential_only=sequential_only)

    def summary(self) -> Dict[str, object]:
        counts = self.counts(sequential_only=True)
        return {
            "circuit": self.circuit.name,
            "ffs": self.circuit.num_ffs,
            "gates": self.circuit.num_gates,
            "ff_ff_relations": counts["ff_ff"],
            "gate_ff_relations": counts["gate_ff"],
            "ties": len(self.ties),
            "equiv_gates": len(self.equivalences),
            "cpu_s": round(self.elapsed, 4),
        }

    # ------------------------------------------------------------------
    def validate(self, n_sequences: int = 50, seq_len: int = 12,
                 rng: Optional[random.Random] = None) -> List[str]:
        """Monte-Carlo soundness oracle.

        Simulates random fully-specified input sequences from random
        initial states and checks every learned relation (at frames past
        its warm-up) and every tie.  Returns a list of violation
        descriptions -- empty means no counterexample found.  This is the
        property the whole technique stands on: learned information must
        *never* contradict real circuit behaviour.
        """
        rng = rng or random.Random(0xC0FFEE)
        circuit = self.circuit
        violations: List[str] = []
        input_names = [circuit.nodes[i].name for i in circuit.inputs]
        ff_names = [circuit.nodes[f].name for f in circuit.ffs]
        relations = list(self.relations)
        tie_items = self.ties.all()
        max_warmup = max(
            [r.warmup for r in relations] + [t.warmup for t in tie_items]
            + [0])
        for _ in range(n_sequences):
            sequence = [{name: rng.randint(0, 1) for name in input_names}
                        for _ in range(seq_len + max_warmup)]
            init = {name: rng.randint(0, 1) for name in ff_names}
            frames = simulate_sequence(circuit, sequence, init_state=init)
            for t, values in enumerate(frames):
                for relation in relations:
                    if t < relation.warmup:
                        continue
                    a = circuit.nodes[relation.a].name
                    b = circuit.nodes[relation.b].name
                    va, vb = values[a], values[b]
                    if va == relation.va and vb not in (relation.vb, X):
                        violations.append(
                            f"frame {t}: {a}={va} but {b}={vb}, "
                            f"violates {a}={relation.va}->{b}={relation.vb}")
                for tie in tie_items:
                    if t < tie.warmup:
                        continue
                    name = circuit.nodes[tie.nid].name
                    have = values[name]
                    if have not in (tie.value, X):
                        violations.append(
                            f"frame {t}: tie {name}={tie.value} violated "
                            f"(saw {have})")
            if violations:
                break
        return violations


class SequentialLearner:
    """Run the full learning flow on one circuit.

    ``sim_backend`` selects the pattern simulator behind equivalence
    signatures and the plane evaluator behind batched single-node runs
    ('reference', 'compiled' or 'array', see :mod:`repro.sim.compiled`);
    learned knowledge is bit-identical for every backend at a fixed
    signature width.
    """

    def __init__(self, circuit: Circuit,
                 config: Optional[LearnConfig] = None,
                 sim_backend: str = "compiled"):
        self.circuit = circuit
        self.config = config or LearnConfig()
        self.sim_backend = sim_backend

    # ------------------------------------------------------------------
    def learn(self) -> LearnResult:
        cfg = self.config
        circuit = self.circuit
        start = time.perf_counter()
        phase_times: Dict[str, float] = {}
        db = RelationDB(circuit)
        ties = TieSet(circuit)
        passes = learning_passes(circuit)
        single_data: Dict[Tuple, SingleNodeData] = {}

        # Phase 1: single-node learning, one pass per clock-domain class.
        t0 = time.perf_counter()
        for key, active in passes:
            simulator = FrameSimulator(circuit, active_ffs=active)
            data = run_single_node(
                simulator, max_frames=cfg.max_frames,
                backend=self.sim_backend,
                batch_width=cfg.single_node_batch_width)
            single_data[key] = data
            extract_same_frame_relations(
                data, db, store_gate_gate=cfg.store_gate_gate)
        if not passes:  # purely combinational circuit
            simulator = FrameSimulator(circuit)
            data = run_single_node(simulator, max_frames=1,
                                   backend=self.sim_backend,
                                   batch_width=cfg.single_node_batch_width)
            single_data[("comb", 0, "none")] = data
            extract_same_frame_relations(
                data, db, store_gate_gate=cfg.store_gate_gate)
        phase_times["single_node"] = time.perf_counter() - t0

        # Phase 2: ties from phase 1 + constant propagation.
        t0 = time.perf_counter()
        for data in single_data.values():
            ties_from_single_node(data, circuit, ties)
        propagate_tie_constants(circuit, ties, max_frames=cfg.max_frames)
        phase_times["ties"] = time.perf_counter() - t0

        # Phase 3: gate equivalences.
        t0 = time.perf_counter()
        equivalences: Dict[int, Tuple[int, int]] = {}
        if cfg.use_equivalence:
            equivalences = find_equivalences(
                circuit, ties,
                width=cfg.signature_width or cfg.equivalence_width,
                max_support=cfg.equivalence_max_support,
                rng=random.Random(cfg.seed),
                backend=self.sim_backend)
        phase_times["equivalence"] = time.perf_counter() - t0

        # Phase 4: multiple-node learning with coupled knowledge.
        t0 = time.perf_counter()
        multi_stats = MultiNodeStats()
        if cfg.use_multi_node:
            coupling = coupling_from(ties, equivalences)
            for key, active in passes or [(("comb", 0, "none"), set())]:
                simulator = FrameSimulator(circuit, coupling,
                                           active_ffs=active or None)
                data = single_data[key]
                stats = run_multi_node(
                    simulator, data, db, ties,
                    max_frames=cfg.max_frames,
                    max_targets=cfg.multi_node_max_targets,
                    store_gate_gate=cfg.store_gate_gate)
                multi_stats.targets_run += stats.targets_run
                multi_stats.targets_skipped += stats.targets_skipped
                multi_stats.relations_added += stats.relations_added
                multi_stats.ties_found += stats.ties_found
                multi_stats.conflicts.extend(stats.conflicts)
        phase_times["multi_node"] = time.perf_counter() - t0

        result = LearnResult(
            circuit=circuit, config=cfg, relations=db, ties=ties,
            equivalences=equivalences, single_node_data=single_data,
            multi_stats=multi_stats,
            elapsed=time.perf_counter() - start,
            phase_times=phase_times)
        return result


def learn(circuit: Circuit, config: Optional[LearnConfig] = None,
          sim_backend: str = "compiled") -> LearnResult:
    """Convenience one-shot: ``learn(circuit).relations`` etc."""
    return SequentialLearner(circuit, config, sim_backend).learn()
