"""Single-node learning (paper section 3.1, first phase).

For every fanout stem, both a 0 and a 1 are injected at frame 0 and
simulated forward across time frames.  Same-frame relations follow from
the contrapositive law: if ``s=0 -> a=x`` at frame t and ``s=1 -> b=y`` at
frame t, then ``a=inv(x) -> s=1 -> b=y``, i.e. the relation
``a=inv(x) -> b=y``.

The phase also records, for every (node, value) produced, the set of
(stem, stem-value, frame-offset) *justifications* -- the input to the
multiple-node phase.

Two execution paths produce identical :class:`SingleNodeData`:

* the **reference path** drives :class:`~repro.sim.eventsim.
  FrameSimulator` once per (stem, value) -- 2x injections per stem;
* the **batched path** (the default whenever no coupled knowledge is in
  play, i.e. the phase-one runs of every clock-domain class) packs up to
  ``batch_width`` injections into one bit per machine of a two-plane
  run, amortizing gate evaluation across the whole batch.  Per-machine
  stop rules (state repeat / dead state) mirror the event simulator
  exactly; the rare stem whose opposite value is already derivable from
  tie constants -- the only way an injection can conflict -- falls back
  to the reference path so conflict results stay byte-identical.

The batched path itself has two interchangeable plane evaluators: the
compiled straight-line bigint kernels
(:func:`repro.sim.compiled.compile_circuit`, the default) and -- for
``backend='array'`` on the numpy substrate -- the grouped array kernels
of :mod:`repro.sim.array_backend` via :class:`_ArrayPlaneEval`, which
pack the same machines into 64-bit word matrices and evaluate whole
opcode groups per call.  Both compute every node of every machine, so
the frame dicts they produce are bit-identical; the shared extraction /
stop-rule / FF-boundary loop never knows which one ran.

To keep downstream iteration order independent of the path taken, every
per-frame value dict is normalized to ascending node id before it is
stored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuit.gates import ONE, ZERO, inv
from ..circuit.netlist import Circuit
from ..sim.compiled import SIM_BACKENDS, compile_circuit
from ..sim.eventsim import FrameSimulator, InjectionResult
from .relations import RelationDB

#: Machine count per compiled-kernel batch when ``batch_width=None``.
DEFAULT_COMPILED_BATCH = 128

#: (stem, stem value, frame offset) -- one way a node value is produced.
Justification = Tuple[int, int, int]


@dataclass
class SingleNodeData:
    """Everything the single-node phase produced."""

    #: (stem, injected value) -> simulation result.
    runs: Dict[Tuple[int, int], InjectionResult] = field(default_factory=dict)
    #: (node, value) -> all justifications observed.
    justifications: Dict[Tuple[int, int], List[Justification]] = field(
        default_factory=dict)
    #: Stems skipped because they are constants/ties.
    skipped_stems: List[int] = field(default_factory=list)

    def implied_at(self, stem: int, value: int, frame: int
                   ) -> Dict[int, int]:
        """Derived values at ``frame`` for one stem run ({} off the end)."""
        result = self.runs.get((stem, value))
        if result is None or frame >= len(result.frames):
            return {}
        return result.implied(frame)


def _normalized(result: InjectionResult) -> InjectionResult:
    """Reorder every frame dict to ascending node id, in place.

    Both execution paths store frames this way so justification and
    relation-extraction iteration order cannot depend on which produced
    the run.
    """
    result.frames = [dict(sorted(frame.items()))
                     for frame in result.frames]
    return result


def run_single_node(simulator: FrameSimulator,
                    stems: Optional[List[int]] = None,
                    max_frames: int = 50, *,
                    batched: Optional[bool] = None,
                    batch_width: Optional[int] = None,
                    backend: str = "compiled") -> SingleNodeData:
    """Inject 0 and 1 on every stem and record forward implications.

    ``batched=None`` (the default) packs injections into batched
    two-plane runs whenever the simulator carries no coupled knowledge
    (ties/equivalences from earlier phases couple values in ways the
    packed evaluator does not model); ``True``/``False`` force the
    choice -- forcing ``True`` still routes coupled simulators through
    the reference path.  ``backend`` picks the batched plane evaluator:
    'compiled' (straight-line bigint kernels) or 'array' (grouped
    numpy word-matrix kernels; falls back to compiled kernels on the
    pure-bigint substrate); 'reference' disables batching entirely.
    ``batch_width`` is the machine count per batch (``None`` = backend
    default: 128 compiled, 4096 array/numpy).  A pure packing /
    evaluation-strategy knob: results are identical for every
    combination.
    """
    if backend not in SIM_BACKENDS:
        raise ValueError(f"unknown sim backend {backend!r}; "
                         f"expected one of {SIM_BACKENDS}")
    circuit = simulator.circuit
    if stems is None:
        stems = circuit.fanout_stems()
    data = SingleNodeData()
    constants = simulator._constants
    use_batched = batched if batched is not None else True
    if backend == "reference":
        use_batched = False
    if simulator.coupling.ties or simulator.coupling.equiv:
        use_batched = False
    runs: Dict[Tuple[int, int], InjectionResult] = {}
    if use_batched:
        live = [s for s in stems if s not in constants]
        if live:
            runs = _batched_runs(simulator, live, max_frames,
                                 batch_width, backend=backend)
    for stem in stems:
        if stem in constants:
            data.skipped_stems.append(stem)
            continue
        for value in (ZERO, ONE):
            result = runs.get((stem, value))
            if result is None:
                result = _normalized(simulator.inject_single(
                    stem, value, max_frames=max_frames))
            data.runs[(stem, value)] = result
            for frame in range(len(result.frames)):
                for nid, val in result.implied(frame).items():
                    if nid in constants:
                        continue
                    data.justifications.setdefault((nid, val), []).append(
                        (stem, value, frame))
    return data


# ----------------------------------------------------------------------
# batched injections over the compiled two-plane evaluator
# ----------------------------------------------------------------------
def _batched_runs(simulator: FrameSimulator, stems: List[int],
                  max_frames: int, width: Optional[int] = None,
                  backend: str = "compiled"
                  ) -> Dict[Tuple[int, int], InjectionResult]:
    """Simulate both injections of many stems bit-parallel.

    One machine (bit column) per (stem, value) pair; machines are
    independent because two-plane evaluation is bitwise.  Stems whose
    frame-0 value is already derived from tie constants are *skipped*
    for the opposite injection -- that injection conflicts mid-
    propagation in the event simulator, and the caller's reference
    fallback reproduces the partial conflict run exactly.

    ``backend='array'`` swaps the per-frame plane evaluator for the
    grouped numpy kernels (when the substrate is available) and widens
    the default batch to the array word width; everything around the
    evaluation -- packing, extraction, stop rules -- is shared verbatim.
    """
    circuit = simulator.circuit
    cc = compile_circuit(circuit)
    plane_eval = None
    if backend == "array":
        from ..sim.array_backend import DEFAULT_NUMPY_WIDTH, HAVE_NUMPY
        if HAVE_NUMPY:
            plane_eval = _ArrayPlaneEval(circuit)
            if width is None:
                width = DEFAULT_NUMPY_WIDTH
    if width is None:
        width = DEFAULT_COMPILED_BATCH
    # Frame-0 values derivable with no injection at all (tie cones):
    # the only values an injection can collide with.
    baseline = simulator.run({}, max_frames=1).frames[0]
    pairs: List[Tuple[int, int]] = []
    for stem in stems:
        derived = baseline.get(stem)
        for value in (ZERO, ONE):
            if derived is None or derived == value:
                pairs.append((stem, value))
    # Per-FF transfer permissions, split by captured value; the rule
    # table (clock-domain class, multi-port, set/reset kinds) lives in
    # one place only: the event simulator's ``_transfer_ok``.
    ff_allow: List[Tuple[bool, bool]] = []
    for fid in cc.ffs:
        node = circuit.nodes[fid]
        ff_allow.append((simulator._transfer_ok(node, ZERO),
                         simulator._transfer_ok(node, ONE)))
    out: Dict[Tuple[int, int], InjectionResult] = {}
    for start in range(0, len(pairs), width):
        out.update(_run_batch(cc, pairs[start:start + width],
                              max_frames, ff_allow, plane_eval))
    return out


class _ArrayPlaneEval:
    """Grouped array-kernel frame evaluator for :func:`_run_batch`.

    Callable drop-in for ``cc.eval_planes(..., trace=True)``: reads the
    source rows out of the caller's bigint plane lists, evaluates every
    level through :func:`repro.sim.array_backend._eval_group_np` on
    word matrices, and writes all scheduled gate rows back -- exactly
    the set of nodes the traced compiled kernels store.  Frame-0 gate
    injections arrive as ``gate_zero``/``gate_one`` column masks and
    are spliced onto the injected gate's row right after its level
    evaluates (consumers always sit at strictly higher levels, so this
    matches the compiled ``fix`` patch point bit for bit).

    Owned by one ``_batched_runs`` call on one thread; fresh matrices
    per frame keep it trivially stale-free.
    """

    def __init__(self, circuit: Circuit):
        from ..sim import array_backend as _ab
        self._ab = _ab
        self.cc = compile_circuit(circuit)
        self.ac = _ab.array_form(circuit)
        np = _ab._np
        self.gate_rows = np.asarray(self.cc.gate_nids, dtype=np.intp)

    def __call__(self, m0: List[int], m1: List[int], full: int,
                 gate_zero: Optional[Dict[int, int]] = None,
                 gate_one: Optional[Dict[int, int]] = None) -> None:
        ab = self._ab
        np = ab._np
        cc, ac = self.cc, self.ac
        words = (full.bit_length() + 63) >> 6
        fullw = ab._int_to_words(full, words)
        M0 = np.zeros((ac.rows, words), dtype=np.uint64)
        M1 = np.zeros((ac.rows, words), dtype=np.uint64)
        M0[ac.zero_row] = fullw
        M1[ac.one_row] = fullw
        for nid in ac.tie0:
            M0[nid] = fullw
        for nid in ac.tie1:
            M1[nid] = fullw
        for nid in cc.inputs:
            if m0[nid]:
                M0[nid] = ab._int_to_words(m0[nid], words)
            if m1[nid]:
                M1[nid] = ab._int_to_words(m1[nid], words)
        for nid in cc.ffs:
            if m0[nid]:
                M0[nid] = ab._int_to_words(m0[nid], words)
            if m1[nid]:
                M1[nid] = ab._int_to_words(m1[nid], words)
        splices: Dict[int, List] = {}
        if gate_zero or gate_one:
            for nid in set(gate_zero or ()) | set(gate_one or ()):
                z = (gate_zero or {}).get(nid, 0)
                o = (gate_one or {}).get(nid, 0)
                K = ab._int_to_words(full & ~(z | o), words)
                Z = ab._int_to_words(z, words)
                O = ab._int_to_words(o, words)
                if nid in ac.gate_pos:
                    li = ac.gate_pos[nid][0]
                    splices.setdefault(li, []).append((nid, K, Z, O))
                else:  # tie gate: splice before anything reads it
                    M0[nid] = (M0[nid] & K) | Z
                    M1[nid] = (M1[nid] & K) | O
        for li, groups in enumerate(ac.levels):
            for g in groups:
                ab._eval_group_np(g, M0, M1)
            for nid, K, Z, O in splices.get(li, ()):
                M0[nid] = (M0[nid] & K) | Z
                M1[nid] = (M1[nid] & K) | O
        wb = words * 8
        raw0 = memoryview(
            M0[self.gate_rows].astype("<u8", copy=False).tobytes())
        raw1 = memoryview(
            M1[self.gate_rows].astype("<u8", copy=False).tobytes())
        for k, nid in enumerate(cc.gate_nids):
            m0[nid] = int.from_bytes(raw0[k * wb:(k + 1) * wb], "little")
            m1[nid] = int.from_bytes(raw1[k * wb:(k + 1) * wb], "little")


def _run_batch(cc, batch: List[Tuple[int, int]], max_frames: int,
               ff_allow: List[Tuple[bool, bool]],
               plane_eval: Optional[_ArrayPlaneEval] = None
               ) -> Dict[Tuple[int, int], InjectionResult]:
    n = cc.n
    k = len(batch)
    full = (1 << k) - 1
    source_set = set(cc.inputs) | set(cc.ffs)
    src_zero: Dict[int, int] = {}
    src_one: Dict[int, int] = {}
    gate_zero: Dict[int, int] = {}
    gate_one: Dict[int, int] = {}
    for i, (stem, value) in enumerate(batch):
        if stem in source_set:
            target = src_zero if value == ZERO else src_one
        else:
            target = gate_zero if value == ZERO else gate_one
        target[stem] = target.get(stem, 0) | (1 << i)
    hot = frozenset(gate_zero) | frozenset(gate_one)

    def fix(nid: int, c0: int, c1: int, *_fp: int) -> Tuple[int, int]:
        z = gate_zero.get(nid, 0)
        o = gate_one.get(nid, 0)
        keep = ~(z | o)
        return (c0 & keep) | z, (c1 & keep) | o

    m0 = [0] * n
    m1 = [0] * n
    n_ffs = len(cc.ffs)
    s0 = [0] * n_ffs
    s1 = [0] * n_ffs
    frames_acc: List[List[Dict[int, int]]] = [[] for _ in range(k)]
    state_acc: List[Dict[int, int]] = [{} for _ in range(k)]
    repeated = [False] * k
    active = full
    frame = 0
    while frame < max_frames and active:
        for nid in cc.inputs:
            m0[nid] = m1[nid] = 0
        for j, fid in enumerate(cc.ffs):
            m0[fid] = s0[j]
            m1[fid] = s1[j]
        if frame == 0:
            for nid, bits in src_zero.items():
                m0[nid] |= bits
            for nid, bits in src_one.items():
                m1[nid] |= bits
            if plane_eval is not None:
                plane_eval(m0, m1, full, gate_zero, gate_one)
            else:
                cc.eval_planes(m0, m1, full, hot, fix, trace=True)
        elif plane_eval is not None:
            plane_eval(m0, m1, full)
        else:
            cc.eval_planes(m0, m1, full, trace=True)
        # Extract this frame's known values per still-active machine
        # (ascending nid: the canonical frame-dict order).
        current: Dict[int, Dict[int, int]] = {}
        bits = active
        while bits:
            low = bits & -bits
            i = low.bit_length() - 1
            bits ^= low
            values: Dict[int, int] = {}
            current[i] = values
            frames_acc[i].append(values)
        for nid in range(n):
            known = (m0[nid] | m1[nid]) & active
            if not known:
                continue
            zplane = m0[nid]
            while known:
                low = known & -known
                known ^= low
                current[low.bit_length() - 1][nid] = \
                    ZERO if zplane & low else ONE
        # Frame boundary: per-machine implied FF state + stop rules
        # (mirrors FrameSimulator.run step 5 exactly).
        done = 0
        bits = active
        while bits:
            low = bits & -bits
            i = low.bit_length() - 1
            bits ^= low
            next_state: Dict[int, int] = {}
            for j, fid in enumerate(cc.ffs):
                data = cc.ff_data[j]
                if m0[data] & low:
                    if ff_allow[j][0]:
                        next_state[fid] = ZERO
                elif m1[data] & low:
                    if ff_allow[j][1]:
                        next_state[fid] = ONE
            if next_state == state_acc[i] or not next_state:
                repeated[i] = True
                done |= low
            else:
                state_acc[i] = next_state
        active &= ~done
        for j in range(n_ffs):
            data = cc.ff_data[j]
            allow0, allow1 = ff_allow[j]
            s0[j] = m0[data] if allow0 else 0
            s1[j] = m1[data] if allow1 else 0
        frame += 1
    return {
        pair: InjectionResult(frames=frames_acc[i],
                              injected={(0, pair[0])},
                              conflict=None, repeated=repeated[i])
        for i, pair in enumerate(batch)}


def extract_same_frame_relations(data: SingleNodeData, db: RelationDB,
                                 *, store_gate_gate: bool = False) -> int:
    """Pair the 0-run and 1-run of every stem frame-by-frame.

    Only pairs with at least one sequential-element endpoint are stored
    unless ``store_gate_gate`` (the paper: gate-gate relations follow from
    gate-FF ones and are not extracted).  Returns the number of relations
    added.
    """
    circuit = db.circuit
    added = 0
    is_ff = circuit.ff_mask()
    stems = {s for s, _v in data.runs}
    for stem in stems:
        run0 = data.runs.get((stem, ZERO))
        run1 = data.runs.get((stem, ONE))
        if run0 is None or run1 is None:
            continue
        depth = min(len(run0.frames), len(run1.frames))
        for frame in range(depth):
            implied0 = data.implied_at(stem, ZERO, frame)
            implied1 = data.implied_at(stem, ONE, frame)
            if not implied0 or not implied1:
                continue
            sequential = frame >= 1
            for a, x in implied0.items():
                a_ff = is_ff[a]
                for b, y in implied1.items():
                    if a == b:
                        continue
                    if not store_gate_gate and not (a_ff or is_ff[b]):
                        continue
                    if db.add(a, inv(x), b, y, source="single",
                              sequential=sequential, warmup=frame):
                        added += 1
    return added


def extract_cross_frame_relations(data: SingleNodeData, circuit: Circuit
                                  ) -> List[Tuple[int, int, int, int, int]]:
    """Stem-to-node cross-frame implications.

    Returns tuples ``(stem, stem_value, node, value, offset)`` meaning
    ``stem=stem_value at T=i  ->  node=value at T=i+offset``.  The paper
    notes these have limited ATPG use (the window must cover the offset)
    but the API exposes them for completeness; the Figure-1 example
    relation ``G1=0 at T=i+1 -> I2=0 at T=i`` is the contrapositive of one
    of these.
    """
    out = []
    for (stem, value), result in data.runs.items():
        for frame in range(len(result.frames)):
            for nid, val in result.implied(frame).items():
                out.append((stem, value, nid, val, frame))
    return out
