"""Single-node learning (paper section 3.1, first phase).

For every fanout stem, both a 0 and a 1 are injected at frame 0 and
simulated forward across time frames.  Same-frame relations follow from
the contrapositive law: if ``s=0 -> a=x`` at frame t and ``s=1 -> b=y`` at
frame t, then ``a=inv(x) -> s=1 -> b=y``, i.e. the relation
``a=inv(x) -> b=y``.

The phase also records, for every (node, value) produced, the set of
(stem, stem-value, frame-offset) *justifications* -- the input to the
multiple-node phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..circuit.gates import ONE, ZERO, inv
from ..circuit.netlist import Circuit
from ..sim.eventsim import FrameSimulator, InjectionResult
from .relations import RelationDB

#: (stem, stem value, frame offset) -- one way a node value is produced.
Justification = Tuple[int, int, int]


@dataclass
class SingleNodeData:
    """Everything the single-node phase produced."""

    #: (stem, injected value) -> simulation result.
    runs: Dict[Tuple[int, int], InjectionResult] = field(default_factory=dict)
    #: (node, value) -> all justifications observed.
    justifications: Dict[Tuple[int, int], List[Justification]] = field(
        default_factory=dict)
    #: Stems skipped because they are constants/ties.
    skipped_stems: List[int] = field(default_factory=list)

    def implied_at(self, stem: int, value: int, frame: int
                   ) -> Dict[int, int]:
        """Derived values at ``frame`` for one stem run ({} off the end)."""
        result = self.runs.get((stem, value))
        if result is None or frame >= len(result.frames):
            return {}
        return result.implied(frame)


def run_single_node(simulator: FrameSimulator,
                    stems: Optional[List[int]] = None,
                    max_frames: int = 50) -> SingleNodeData:
    """Inject 0 and 1 on every stem and record forward implications."""
    circuit = simulator.circuit
    if stems is None:
        stems = circuit.fanout_stems()
    data = SingleNodeData()
    constants = simulator._constants
    for stem in stems:
        if stem in constants:
            data.skipped_stems.append(stem)
            continue
        for value in (ZERO, ONE):
            result = simulator.inject_single(stem, value,
                                             max_frames=max_frames)
            data.runs[(stem, value)] = result
            for frame in range(len(result.frames)):
                for nid, val in result.implied(frame).items():
                    if nid in constants:
                        continue
                    data.justifications.setdefault((nid, val), []).append(
                        (stem, value, frame))
    return data


def extract_same_frame_relations(data: SingleNodeData, db: RelationDB,
                                 *, store_gate_gate: bool = False) -> int:
    """Pair the 0-run and 1-run of every stem frame-by-frame.

    Only pairs with at least one sequential-element endpoint are stored
    unless ``store_gate_gate`` (the paper: gate-gate relations follow from
    gate-FF ones and are not extracted).  Returns the number of relations
    added.
    """
    circuit = db.circuit
    added = 0
    is_ff = circuit.ff_mask()
    stems = {s for s, _v in data.runs}
    for stem in stems:
        run0 = data.runs.get((stem, ZERO))
        run1 = data.runs.get((stem, ONE))
        if run0 is None or run1 is None:
            continue
        depth = min(len(run0.frames), len(run1.frames))
        for frame in range(depth):
            implied0 = data.implied_at(stem, ZERO, frame)
            implied1 = data.implied_at(stem, ONE, frame)
            if not implied0 or not implied1:
                continue
            sequential = frame >= 1
            for a, x in implied0.items():
                a_ff = is_ff[a]
                for b, y in implied1.items():
                    if a == b:
                        continue
                    if not store_gate_gate and not (a_ff or is_ff[b]):
                        continue
                    if db.add(a, inv(x), b, y, source="single",
                              sequential=sequential, warmup=frame):
                        added += 1
    return added


def extract_cross_frame_relations(data: SingleNodeData, circuit: Circuit
                                  ) -> List[Tuple[int, int, int, int, int]]:
    """Stem-to-node cross-frame implications.

    Returns tuples ``(stem, stem_value, node, value, offset)`` meaning
    ``stem=stem_value at T=i  ->  node=value at T=i+offset``.  The paper
    notes these have limited ATPG use (the window must cover the offset)
    but the API exposes them for completeness; the Figure-1 example
    relation ``G1=0 at T=i+1 -> I2=0 at T=i`` is the contrapositive of one
    of these.
    """
    out = []
    for (stem, value), result in data.runs.items():
        for frame in range(len(result.frames)):
            for nid, val in result.implied(frame).items():
                out.append((stem, value, nid, val, frame))
    return out
